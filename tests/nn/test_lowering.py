"""Lowering invariants: packing, level budgets, bootstrap placement.

These pin the contract between :func:`repro.nn.lower.lower`'s analytic
depth plan and the program it emits:

* no emitted op ever sits above ``max_level`` or below level 1;
* the number of ``bootstrap`` ops in the program equals the plan's
  analytic ``bootstrap_count`` (the dry-run trace is exact);
* models that cannot fit raise the typed errors instead of emitting
  broken programs.
"""

import numpy as np
import pytest

from repro.core.ir.bootstrap_graph import BOOTSTRAP_13
from repro.fhe import SlotCapacityError, make_params
from repro.fhe.params import ArchParams
from repro.nn import (
    DepthBudgetError,
    Linear,
    Model,
    PackingSpec,
    build_bert_encoder,
    build_helr,
    lower,
    relu,
    select_packing,
)


@pytest.fixture(scope="module")
def helr():
    return build_helr()


@pytest.fixture(scope="module")
def bert():
    return build_bert_encoder()


class TestPackingSelection:
    def test_block_covers_widest_layer(self, helr):
        spec = select_packing(helr, slot_count=256)
        assert spec.block >= max(helr.widths())
        assert spec.block & (spec.block - 1) == 0
        assert spec.lanes == helr.lanes
        assert spec.layout == "batched"
        assert spec.frame == spec.lanes * spec.block

    def test_single_lane_is_tiled(self, rng):
        m = Model("t", [Linear(rng.normal(size=(4, 4))), relu(4)], lanes=1)
        assert select_packing(m, 64).layout == "tiled"

    def test_overflow_raises_typed_error(self, helr):
        with pytest.raises(SlotCapacityError):
            select_packing(helr, slot_count=32)

    def test_lane_starts(self):
        spec = PackingSpec(lanes=4, block=8)
        assert spec.lane_starts() == [0, 8, 16, 24]


class TestBootstrapFreeLowering:
    def test_helr_fits_small_chain(self, helr):
        params = make_params(ring_degree=256, levels=8)
        low = lower(helr, params)
        assert low.plan.bootstrap_count == 0
        assert low.program.count("bootstrap") == 0
        assert low.plan.input_level <= params.max_level
        levels = [op.level for op in low.program.ops]
        assert max(levels) <= params.max_level
        assert min(levels) >= 1

    def test_depth_budget_error_when_too_shallow(self, bert):
        params = make_params(ring_degree=256, levels=8)
        with pytest.raises(DepthBudgetError, match="bootstrap_plan"):
            lower(bert, params)

    def test_deterministic(self, helr):
        params = make_params(ring_degree=256, levels=8)
        a = lower(helr, params)
        b = lower(helr, params)
        assert len(a.program.ops) == len(b.program.ops)
        assert a.rotations == b.rotations
        assert a.plan.total_depth == b.plan.total_depth
        for name, base in a.plaintext_values.items():
            assert np.array_equal(base, b.plaintext_values[name])


class TestPlannedBootstraps:
    def test_bert_under_bootstrap_13(self, bert):
        low = lower(bert, ArchParams(), bootstrap_plan=BOOTSTRAP_13)
        assert low.plan.bootstrap_count > 0
        assert low.program.count("bootstrap") == low.plan.bootstrap_count
        assert low.plan.input_level == BOOTSTRAP_13.output_level
        levels = [op.level for op in low.program.ops]
        assert max(levels) <= ArchParams().max_level
        assert min(levels) >= 1

    def test_bootstraps_were_necessary(self, bert):
        # The model's total depth exceeds the steady-state budget, so the
        # refreshes the plan schedules are not gratuitous; and the
        # program honours the floor everywhere despite them.
        low = lower(bert, ArchParams(), bootstrap_plan=BOOTSTRAP_13)
        assert low.plan.total_depth > BOOTSTRAP_13.output_level - 1
        assert min(op.level for op in low.program.ops) >= 1

    def test_plan_too_tall_for_chain(self, bert):
        params = make_params(ring_degree=256, levels=8)
        with pytest.raises(DepthBudgetError, match="raises to level"):
            lower(bert, params, bootstrap_plan=BOOTSTRAP_13)


class TestLoweredModel:
    def test_bind_plaintexts_tiles_frames(self, helr):
        params = make_params(ring_degree=256, levels=8)
        low = lower(helr, params)
        bound = low.bind_plaintexts(params.slot_count)
        frame = low.spec.frame
        for name, values in bound.items():
            assert len(values) == params.slot_count
            base = low.plaintext_values[name]
            assert np.array_equal(values[:frame], base)
            assert np.array_equal(values, np.tile(base,
                                                  params.slot_count // frame))

    def test_bind_rejects_non_multiple(self, helr):
        params = make_params(ring_degree=256, levels=8)
        low = lower(helr, params)
        with pytest.raises(ValueError, match="divide"):
            low.bind_plaintexts(low.spec.frame * 3 // 2)
