"""Plaintext reference semantics of the :mod:`repro.nn` layers.

The references are the ground truth the encrypted parity suite compares
against, so they get their own direct tests: linear algebra against raw
numpy, the im2col convolution against a hand-rolled spatial loop, and
the polynomial approximations against the functions they approximate.
"""

import math

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    Model,
    Residual,
    SelfAttention,
    Sequential,
    Softmax,
    cheb_reference,
    conv2d_matrix,
    gelu,
    relu,
    sigmoid,
)


class TestLinear:
    def test_matches_numpy(self, rng):
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=3)
        x = rng.normal(size=(4, 5))
        assert np.allclose(Linear(w, b).reference(x), x @ w.T + b)
        assert np.allclose(Linear(w).reference(x), x @ w.T)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Linear(np.ones(4))
        with pytest.raises(ValueError):
            Linear(np.ones((3, 5)), bias=np.ones(5))


def direct_conv2d(weight, image, stride=1):
    """Spatial-loop 'same' convolution oracle, channel-major layout."""
    out_ch, in_ch, k, _ = weight.shape
    h, w = image.shape[1:]
    pad = k // 2
    oh = (h + 2 * pad - k) // stride + 1
    ow = (w + 2 * pad - k) // stride + 1
    out = np.zeros((out_ch, oh, ow))
    for co in range(out_ch):
        for oy in range(oh):
            for ox in range(ow):
                acc = 0.0
                for ci in range(in_ch):
                    for dy in range(k):
                        for dx in range(k):
                            iy = oy * stride + dy - pad
                            ix = ox * stride + dx - pad
                            if 0 <= iy < h and 0 <= ix < w:
                                acc += weight[co, ci, dy, dx] * \
                                    image[ci, iy, ix]
                out[co, oy, ox] = acc
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_spatial_loop(self, rng, stride):
        weight = rng.normal(size=(3, 2, 3, 3))
        image = rng.normal(size=(2, 4, 4))
        conv = Conv2d(weight, 4, 4, stride=stride)
        got = conv.reference(image.reshape(1, -1))[0]
        want = direct_conv2d(weight, image, stride).reshape(-1)
        assert np.allclose(got, want)

    def test_widths(self, rng):
        conv = Conv2d(rng.normal(size=(4, 2, 3, 3)), 8, 8, stride=2)
        assert conv.in_width == 2 * 64
        assert conv.out_width == 4 * 16

    def test_matrix_shape(self, rng):
        m = conv2d_matrix(rng.normal(size=(3, 2, 3, 3)), 4, 4)
        assert m.shape == (3 * 16, 2 * 16)


class TestGlobalAvgPool:
    def test_matches_channel_mean(self, rng):
        pool = GlobalAvgPool(channels=3, spatial=4)
        x = rng.normal(size=(2, 12))
        want = x.reshape(2, 3, 4).mean(axis=-1)
        assert np.allclose(pool.reference(x), want)

    def test_non_pow2_spatial_rejected(self):
        with pytest.raises(ValueError):
            GlobalAvgPool(channels=2, spatial=3)


class TestPolyActivations:
    def test_reference_is_the_chebyshev_polynomial(self, rng):
        act = relu(8, degree=4, bound=4.0)
        x = rng.uniform(-4, 4, size=(2, 8))
        assert np.allclose(act.reference(x),
                           cheb_reference(x, act.coeffs, act.interval))

    def test_relu_approximates_relu(self, rng):
        act = relu(8, degree=8, bound=4.0)
        x = rng.uniform(-4, 4, size=200)
        assert np.max(np.abs(act.reference(x) - np.maximum(x, 0))) < 0.4

    def test_sigmoid_approximates_sigmoid(self, rng):
        act = sigmoid(8)
        x = rng.uniform(-8, 8, size=200)
        true = 1.0 / (1.0 + np.exp(-x))
        assert np.max(np.abs(act.reference(x) - true)) < 0.05

    def test_gelu_approximates_gelu(self, rng):
        act = gelu(8)
        x = rng.uniform(-3, 3, size=200)
        true = 0.5 * x * (1 + np.tanh(
            math.sqrt(2 / math.pi) * (x + 0.044715 * x ** 3)))
        assert np.max(np.abs(act.reference(x) - true)) < 0.25


class TestLayerNorm:
    def test_approximates_exact_layernorm(self, rng):
        ln = LayerNorm(16, iterations=2)
        x = rng.normal(size=(4, 16))
        mu = x.mean(-1, keepdims=True)
        sd = np.sqrt(np.square(x - mu).mean(-1, keepdims=True) + ln.eps)
        assert np.max(np.abs(ln.reference(x) - (x - mu) / sd)) < 0.05

    def test_gamma_beta(self, rng):
        g = rng.normal(size=8)
        b = rng.normal(size=8)
        x = rng.normal(size=(2, 8))
        plain = LayerNorm(8, iterations=2).reference(x)
        scaled = LayerNorm(8, gamma=g, beta=b, iterations=2).reference(x)
        assert np.allclose(scaled, plain * g + b, atol=1e-6)

    def test_non_pow2_width_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(12)


class TestSoftmax:
    def test_approximates_softmax(self, rng):
        # Inputs chosen so the denominator z = sum(exp) stays inside the
        # calibrated sum_interval (0.2, 8).
        sm = Softmax(4, iterations=3, sum_interval=(0.5, 6.0))
        x = rng.uniform(-1.5, 0.5, size=(4, 4))
        e = np.exp(x)
        want = e / e.sum(-1, keepdims=True)
        got = sm.reference(x)
        assert np.max(np.abs(got - want)) < 0.06
        # Elementwise exp error accumulates across the row sum.
        assert np.max(np.abs(got.sum(-1) - 1.0)) < 0.06 * sm.in_width


class TestSelfAttention:
    @staticmethod
    def make(rng, d_model=8, seq=4, heads=2):
        def proj():
            return rng.normal(size=(d_model, d_model)) / math.sqrt(d_model)
        return SelfAttention(d_model, heads, seq, wq=proj(), wk=proj(),
                             wv=proj(), wo=proj(), iterations=2)

    def test_approximates_exact_attention(self, rng):
        attn = self.make(rng)
        x = rng.uniform(-0.5, 0.5, size=(4, 8))
        got = attn.reference(x)
        # Exact softmax attention with the same (pre-scaled) projections.
        q, k, v = x @ attn.wq.T, x @ attn.wk.T, x @ attn.wv.T
        ctx = np.zeros_like(v)
        for head in range(attn.num_heads):
            sl = slice(head * attn.d_head, (head + 1) * attn.d_head)
            s = q[:, sl] @ k[:, sl].T
            e = np.exp(s - s.max(-1, keepdims=True))
            ctx[:, sl] = (e / e.sum(-1, keepdims=True)) @ v[:, sl]
        want = ctx @ attn.wo.T
        assert np.max(np.abs(got - want)) < 0.15

    def test_shape_validation(self, rng):
        attn = self.make(rng)
        with pytest.raises(ValueError, match="tokens"):
            attn.reference(np.zeros((3, 8)))
        with pytest.raises(ValueError):
            SelfAttention(9, 3, 4, *(np.eye(9),) * 4)


class TestComposition:
    def test_sequential_width_mismatch(self, rng):
        with pytest.raises(ValueError, match="width mismatch"):
            Sequential([Linear(rng.normal(size=(3, 5))),
                        Linear(rng.normal(size=(5, 4)))])

    def test_residual_adds_skip(self, rng):
        w = rng.normal(size=(6, 6))
        block = Residual(Linear(w))
        x = rng.normal(size=(2, 6))
        assert np.allclose(block.reference(x), x + x @ w.T)

    def test_residual_requires_square_body(self, rng):
        with pytest.raises(ValueError):
            Residual(Linear(rng.normal(size=(3, 6))))

    def test_model_collects_widths(self, rng):
        m = Model("m", [Linear(rng.normal(size=(8, 4))), relu(8)], lanes=2)
        assert m.in_width == 4
        assert m.out_width == 8
        assert max(m.widths()) == 8
        assert m.lanes == 2
