"""Encrypted-vs-plaintext parity through the full stack.

Every test here runs the whole pipeline — model -> lowering -> compiler
-> ISA emulator on real RNS-CKKS limbs -> decrypt — and compares against
the model's numpy reference.  The references mirror the lowered
polynomials exactly, so the measured error is pure CKKS noise; the
acceptance bound is max abs error < 1e-2.
"""

import numpy as np
import pytest

from repro.fhe.backend import available_backends, use_backend
from repro.nn import (
    build_bert_encoder,
    build_helr,
    build_resnet20,
    encrypted_forward,
    lower,
    nn_params,
    sample_input,
)

TOLERANCE = 1e-2


def run_parity(model, levels):
    low = lower(model, nn_params(levels))
    x = sample_input(model)
    return np.abs(encrypted_forward(low, x) - model.reference(x)).max()


class TestHelrParity:
    def test_helr(self):
        assert run_parity(build_helr(), levels=8) < TOLERANCE

    @pytest.mark.parametrize("backend", available_backends())
    def test_helr_across_backends(self, backend):
        model = build_helr()
        low = lower(model, nn_params(8))
        x = sample_input(model)
        ref = model.reference(x)
        with use_backend(backend):
            err = np.abs(encrypted_forward(low, x) - ref).max()
        assert err < TOLERANCE


class TestReducedModels:
    def test_mini_resnet(self):
        # Same layer kinds and depth profile as the full build, shrunk to
        # one block per stage on a 4x4 image.
        model = build_resnet20(image=4, channels=(2, 4, 4),
                               blocks_per_stage=1)
        assert run_parity(model, levels=50) < TOLERANCE

    def test_mini_bert_encoder(self):
        model = build_bert_encoder(d_model=8, seq=2, num_heads=2, d_ff=16)
        assert run_parity(model, levels=50) < TOLERANCE


@pytest.mark.slow
class TestPaperModels:
    def test_bert_encoder(self):
        assert run_parity(build_bert_encoder(), levels=48) < TOLERANCE

    def test_resnet20(self):
        assert run_parity(build_resnet20(), levels=100) < TOLERANCE
