"""The lowered models as serving and tuning workloads.

The three ``nn-*`` classes ride the same MixEntry plumbing as the
kernel mix, so the contracts here are about *consistency*: the lowered
programs must fit the chains their entries advertise, and the
paper-scale deep models must schedule their refreshes against exactly
the bootstrap plan the server's default compile options will expand
(``default_plan``), or steady-state levels would disagree at compile
time.
"""

import pytest

from repro.core.ir.bootstrap_graph import BOOTSTRAP_13, default_plan
from repro.fhe.params import ArchParams
from repro.serve import CinnamonServer
from repro.serve.loadgen import main as loadgen_main
from repro.serve.request import InferenceRequest
from repro.tune.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.serving import NN_SMALL_LEVELS, nn_mix, serving_mix

NN_CLASSES = {"nn-helr", "nn-resnet20", "nn-bert-encoder"}


class TestNnMix:
    def test_small_entries_fit_their_chains(self):
        mix = nn_mix("small")
        assert set(mix) == NN_CLASSES
        for name, entry in mix.items():
            assert entry.params.max_level == NN_SMALL_LEVELS[name]
            program = entry.build()
            levels = [op.level for op in program.ops]
            assert max(levels) <= entry.params.max_level
            assert min(levels) >= 1
            # The small scale stays bootstrap-free by construction.
            assert program.count("bootstrap") == 0

    def test_paper_deep_models_target_default_plan(self):
        # The server compiles mix programs with default options, which
        # expand bootstraps via default_plan(params); the lowering must
        # have budgeted against the same plan.
        assert default_plan(ArchParams()).name == BOOTSTRAP_13.name
        mix = nn_mix("paper")
        bert = mix["nn-bert-encoder"].build()
        assert bert.count("bootstrap") > 0
        assert bert.input_level == BOOTSTRAP_13.output_level

    def test_include_nn_merges_into_kernel_mix(self):
        merged = serving_mix("small", include_nn=True)
        assert NN_CLASSES < set(merged)
        assert {"bootstrap", "resnet-block"} < set(merged)
        # Default mix is unchanged: nn traffic is opt-in.
        assert not NN_CLASSES & set(serving_mix("small"))

    def test_weights_reweight_and_drop_nn_classes(self):
        mix = nn_mix("small", weights={"nn-resnet20": 0, "nn-helr": 2.5})
        assert "nn-resnet20" not in mix
        assert mix["nn-helr"].weight == 2.5
        with pytest.raises(ValueError, match="unknown mix classes"):
            serving_mix("small", weights={"nn-helr": 1})


class TestNnServing:
    def test_helr_serves_end_to_end(self):
        entry = nn_mix("small")["nn-helr"]
        with CinnamonServer(num_workers=1) as server:
            result = server.submit(InferenceRequest(
                program=entry.build(), params=entry.params,
                machine=2, name="nn-helr")).result(timeout=120)
        assert result.ok

    def test_loadgen_nn_only_flag(self, capsys):
        # Pure-nn traffic, narrowed to the cheapest class so the CLI
        # path stays fast.
        code = loadgen_main([
            "--requests", "4", "--workers", "1", "--mode", "closed",
            "--concurrency", "2", "--nn", "only",
            "--mix", "nn-resnet20=0,nn-bert-encoder=0",
            "--fail-on-errors"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nn-helr=4" in out


class TestNnTuning:
    def test_registered_at_both_scales(self):
        assert NN_CLASSES < set(WORKLOAD_NAMES)

    def test_small_materializes_without_plan(self):
        program, params, options = get_workload(
            "nn-bert-encoder", "small").materialize()
        assert program.count("bootstrap") == 0
        assert options.bootstrap_plan is None
        assert max(op.level for op in program.ops) <= params.max_level

    def test_paper_materializes_with_bootstrap_13(self):
        program, params, options = get_workload(
            "nn-resnet20", "paper").materialize()
        assert options.bootstrap_plan is BOOTSTRAP_13
        assert program.count("bootstrap") > 0
        assert program.input_level == BOOTSTRAP_13.output_level
