"""Checkpoints: framing, corruption detection, store retention, resume."""

import numpy as np
import pytest

from repro.fhe.serialize import (
    CorruptPayloadError,
    dump_ciphertext,
    load_ciphertext,
    unframe_payload,
)
from repro.resilience import (
    Checkpoint,
    CheckpointStore,
    CorruptCheckpointError,
    FaultSchedule,
)
from repro.sim import CINNAMON_4, SimulatorEngine


def make_checkpoint(seq=0, cycle=0, payload=None, snapshot=None):
    return Checkpoint(run_id="run-1", seq=seq, cycle=cycle,
                      machine="Cinnamon-4", fingerprint="abc123",
                      frontier={0: 10, 1: 12},
                      payload=payload or {}, snapshot=snapshot)


class TestCheckpointBlob:
    def test_round_trip(self):
        ckpt = make_checkpoint(seq=3, cycle=777,
                               payload={"x": b"framed-bytes"})
        back = Checkpoint.from_bytes(ckpt.to_bytes())
        assert back.run_id == "run-1"
        assert back.seq == 3
        assert back.cycle == 777
        assert back.frontier == {0: 10, 1: 12}
        assert back.payload == {"x": b"framed-bytes"}

    def test_bit_flip_detected(self):
        blob = bytearray(make_checkpoint().to_bytes())
        blob[-1] ^= 0x40
        with pytest.raises(CorruptCheckpointError, match="CRC32"):
            Checkpoint.from_bytes(bytes(blob))

    def test_truncation_detected(self):
        blob = make_checkpoint().to_bytes()
        with pytest.raises(CorruptCheckpointError, match="truncated"):
            Checkpoint.from_bytes(blob[:-7])

    def test_wrong_magic_detected(self):
        with pytest.raises(CorruptCheckpointError):
            Checkpoint.from_bytes(b"JUNK" + make_checkpoint().to_bytes())

    def test_future_version_refused(self):
        ckpt = make_checkpoint()
        ckpt.version = 999
        with pytest.raises(CorruptCheckpointError, match="newer"):
            Checkpoint.from_bytes(ckpt.to_bytes())


class TestCiphertextFraming:
    def test_round_trip_and_corruption(self, small_params, small_context):
        ct = small_context.encrypt_values([0.5, -0.25, 0.125])
        blob = dump_ciphertext(ct, small_params)
        back = load_ciphertext(blob, small_params)
        assert np.allclose(small_context.decrypt_values(back, 3),
                           small_context.decrypt_values(ct, 3))
        flipped = bytearray(blob)
        flipped[len(flipped) // 2] ^= 0x01
        with pytest.raises(CorruptPayloadError):
            load_ciphertext(bytes(flipped), small_params)

    def test_legacy_headerless_blob_still_loads(self, small_params,
                                                small_context):
        ct = small_context.encrypt_values([1.0, 2.0])
        legacy = unframe_payload(dump_ciphertext(ct, small_params))
        assert legacy[:2] == b"PK"          # bare .npz archive
        back = load_ciphertext(legacy, small_params)
        assert np.allclose(small_context.decrypt_values(back, 2),
                           [1.0, 2.0], atol=1e-4)

    def test_live_values_round_trip(self, small_params, small_context):
        values = {"a": small_context.encrypt_values([1.0]),
                  "b": small_context.encrypt_values([2.0])}
        payload = Checkpoint.serialize_values(values, small_params)
        ckpt = make_checkpoint(payload=payload)
        restored = Checkpoint.from_bytes(
            ckpt.to_bytes()).restore_values(small_params)
        assert set(restored) == {"a", "b"}
        assert np.allclose(small_context.decrypt_values(restored["a"], 1),
                           [1.0], atol=1e-4)


class TestCheckpointStore:
    def test_memory_store_keeps_newest(self):
        store = CheckpointStore(keep=2)
        for seq in range(4):
            store.save(make_checkpoint(seq=seq, cycle=seq * 100))
        chain = store.list("run-1")
        assert [c.seq for c in chain] == [2, 3]
        assert store.latest("run-1").seq == 3
        assert store.latest("run-1", max_cycle=250).seq == 2

    def test_directory_store_prunes_and_survives(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        paths = [store.save(make_checkpoint(seq=seq, cycle=seq * 100))
                 for seq in range(3)]
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()
        fresh = CheckpointStore(tmp_path, keep=2)
        assert [c.seq for c in fresh.list("run-1")] == [1, 2]

    def test_corrupt_file_skipped_by_list_loud_on_load(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save(make_checkpoint(seq=0, cycle=100))
        path = store.save(make_checkpoint(seq=1, cycle=200))
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert [c.seq for c in store.list("run-1")] == [0]
        assert store.latest("run-1").cycle == 100
        with pytest.raises(CorruptCheckpointError):
            store.load(path)

    def test_tampered_checkpoint_quarantined_recovery_continues(
            self, tmp_path):
        """Flipping bytes in a signed checkpoint must not poison
        recovery: load() quarantines the evidence and raises, list()
        falls back to the surviving older snapshot, and the on_tamper
        hook reports the attack."""
        from repro.trust.errors import TamperDetectedError

        seen = []
        store = CheckpointStore(tmp_path, keep=3, on_tamper=seen.append)
        store.save(make_checkpoint(seq=0, cycle=100))
        path = store.save(make_checkpoint(seq=1, cycle=200))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptCheckpointError):
            store.load(path)
        assert seen and isinstance(seen[0], TamperDetectedError)
        # Evidence moved aside, not deleted; recovery uses seq 0.
        assert not path.exists()
        assert list((tmp_path / "run-1" / "quarantine")
                    .glob(f"{path.name}.*"))
        assert store.latest("run-1").seq == 0

    def test_pre_trust_checkpoint_still_loads(self, tmp_path):
        """A checkpoint dir written before the manifest existed (no rows)
        falls back to CRC-only validation instead of rejecting history."""
        store = CheckpointStore(tmp_path, keep=3)
        path = store.save(make_checkpoint(seq=0, cycle=100))
        (tmp_path / "run-1" / "MANIFEST.json").unlink()
        fresh = CheckpointStore(tmp_path, keep=3)
        assert fresh.load(path).cycle == 100
        assert [c.seq for c in fresh.list("run-1")] == [0]

    def test_missing_run_is_empty(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.list("no-such-run") == []
        assert store.latest("no-such-run") is None

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointStore(keep=0)


class TestSnapshotResume:
    def test_resume_matches_clean_run(self, compiled_4):
        engine = SimulatorEngine(CINNAMON_4)
        clean = engine.run(compiled_4.isa)
        snapshots = []
        engine.run(compiled_4.isa, checkpoint_interval=clean.cycles // 4,
                   checkpoint_hook=snapshots.append)
        assert len(snapshots) >= 2
        mid = snapshots[len(snapshots) // 2]
        resumed = engine.run(compiled_4.isa, resume_from=mid)
        assert resumed.cycles == clean.cycles
        assert resumed.instructions == clean.instructions

    def test_snapshot_survives_checkpoint_blob(self, compiled_4):
        engine = SimulatorEngine(CINNAMON_4)
        snapshots = []
        engine.run(compiled_4.isa, checkpoint_interval=10_000,
                   checkpoint_hook=snapshots.append)
        ckpt = make_checkpoint(cycle=snapshots[0].cycle,
                               snapshot=snapshots[0])
        back = Checkpoint.from_bytes(ckpt.to_bytes())
        clean = engine.run(compiled_4.isa)
        resumed = engine.run(compiled_4.isa, resume_from=back.snapshot)
        assert resumed.cycles == clean.cycles

    def test_checkpoints_do_not_change_timing(self, compiled_4):
        engine = SimulatorEngine(CINNAMON_4)
        clean = engine.run(compiled_4.isa)
        observed = engine.run(compiled_4.isa, checkpoint_interval=5_000,
                              checkpoint_hook=lambda snap: None)
        assert observed.cycles == clean.cycles

    def test_resume_with_later_fault_still_faults(self, compiled_4):
        """Resuming does not dodge the schedule: a fault past the resume
        point still fires, and the recovery loop relies on the surviving
        schedule being filtered via ``for_survivors`` instead."""
        engine = SimulatorEngine(CINNAMON_4)
        clean = engine.run(compiled_4.isa)
        snapshots = []
        engine.run(compiled_4.isa, checkpoint_interval=clean.cycles // 3,
                   checkpoint_hook=snapshots.append)
        early = snapshots[0]
        sched = FaultSchedule().chip_crash(2, early.cycle + 1000)
        from repro.resilience import ChipFailure
        with pytest.raises(ChipFailure) as info:
            engine.run(compiled_4.isa, resume_from=early,
                       fault_schedule=sched)
        assert info.value.cycle == early.cycle + 1000
        resumed = engine.run(compiled_4.isa, resume_from=early,
                             fault_schedule=sched.for_survivors([2]))
        assert resumed.cycles == clean.cycles
