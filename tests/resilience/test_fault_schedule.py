"""Fault schedules: determinism, non-fatal degradation, yield sampling."""

import pytest

from repro.resilience import (
    CHIP_CRASH,
    ChipFailure,
    FaultSchedule,
    LinkFailure,
    MachineFault,
    NO_MACHINE_FAULTS,
)
from repro.sim import CINNAMON_4, DEGRADE_LADDER, SimulatorEngine, degraded_machine
from repro.sim.config import config_for


class TestSchedule:
    def test_fluent_builders(self):
        sched = FaultSchedule().chip_crash(3, 1000) \
                               .link_degrade(1, 500, factor=0.25) \
                               .cluster_slow(0, 200, factor=2.0)
        assert len(sched) == 3
        assert bool(sched)
        assert not NO_MACHINE_FAULTS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MachineFault("meteor_strike", 0, 100)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            MachineFault(CHIP_CRASH, 0, -1)

    def test_signature_is_stable_and_order_free(self):
        a = FaultSchedule().chip_crash(1, 100).link_degrade(0, 50)
        b = FaultSchedule().link_degrade(0, 50).chip_crash(1, 100)
        assert a.signature() == b.signature()
        assert NO_MACHINE_FAULTS.signature() == "clean"

    def test_for_survivors_drops_dead_and_out_of_range(self):
        sched = FaultSchedule().chip_crash(9, 100).chip_crash(3, 200) \
                               .cluster_slow(5, 50)
        surv = sched.for_survivors([9], num_chips=8)
        kinds = {(f.kind, f.chip) for f in surv.faults}
        assert ("chip_crash", 9) not in kinds
        assert ("chip_crash", 3) in kinds
        assert ("cluster_slow", 5) in kinds

    def test_yield_model_deterministic_per_seed(self):
        a = FaultSchedule.from_yield_model("cinnamon_12", 10**6, seed=5,
                                           defect_scale=3.0)
        b = FaultSchedule.from_yield_model("cinnamon_12", 10**6, seed=5,
                                           defect_scale=3.0)
        assert a.signature() == b.signature()

    def test_yield_model_scales_with_defects(self):
        none = FaultSchedule.from_yield_model("cinnamon_12", 10**6, seed=1,
                                              defect_scale=0.0)
        forced = FaultSchedule.from_yield_model("cinnamon_12", 10**6,
                                                seed=1, defect_scale=1e6)
        assert len(none) == 0
        assert len(forced) == 12


class TestInjection:
    def test_chip_crash_raises_at_scheduled_cycle(self, compiled_4):
        clean = SimulatorEngine(CINNAMON_4).run(compiled_4.isa)
        sched = FaultSchedule().chip_crash(2, clean.cycles // 2)
        with pytest.raises(ChipFailure) as info:
            SimulatorEngine(CINNAMON_4).run(compiled_4.isa,
                                            fault_schedule=sched)
        assert info.value.chip == 2
        assert info.value.cycle == clean.cycles // 2
        assert info.value.machine == "Cinnamon-4"
        assert set(info.value.progress) == {0, 1, 2, 3}
        assert info.value.completed_instructions > 0

    def test_replay_is_deterministic(self, compiled_4):
        sched = FaultSchedule().chip_crash(1, 5000)
        seen = []
        for _ in range(2):
            with pytest.raises(ChipFailure) as info:
                SimulatorEngine(CINNAMON_4).run(compiled_4.isa,
                                                fault_schedule=sched)
            seen.append((info.value.cycle, info.value.chip,
                         info.value.completed_instructions))
        assert seen[0] == seen[1]

    def test_link_sever_raises_link_failure(self, compiled_4):
        sched = FaultSchedule().link_sever(0, 1000)
        with pytest.raises(LinkFailure):
            SimulatorEngine(CINNAMON_4).run(compiled_4.isa,
                                            fault_schedule=sched)

    def test_link_degrade_slows_but_completes(self, compiled_4):
        clean = SimulatorEngine(CINNAMON_4).run(compiled_4.isa)
        sched = FaultSchedule().link_degrade(0, 0, factor=0.05)
        slow = SimulatorEngine(CINNAMON_4).run(compiled_4.isa,
                                               fault_schedule=sched)
        assert slow.cycles > clean.cycles
        assert slow.instructions == clean.instructions
        assert slow.events == [{"kind": "link_degrade", "chip": 0,
                                "cycle": 0, "factor": 0.05}]

    def test_cluster_slow_slows_but_completes(self, compiled_4):
        clean = SimulatorEngine(CINNAMON_4).run(compiled_4.isa)
        sched = FaultSchedule().cluster_slow(1, 0, factor=4.0)
        slow = SimulatorEngine(CINNAMON_4).run(compiled_4.isa,
                                               fault_schedule=sched)
        assert slow.cycles > clean.cycles
        assert slow.instructions == clean.instructions

    def test_empty_schedule_identical_to_clean(self, compiled_4):
        clean = SimulatorEngine(CINNAMON_4).run(compiled_4.isa)
        noop = SimulatorEngine(CINNAMON_4).run(
            compiled_4.isa, fault_schedule=NO_MACHINE_FAULTS)
        assert noop.cycles == clean.cycles
        assert noop.instructions == clean.instructions


class TestDegradeLadder:
    def test_ladder_descends_paper_configs(self):
        assert degraded_machine("cinnamon_12").num_chips == 8
        assert degraded_machine("cinnamon_8").num_chips == 4
        assert degraded_machine(4).num_chips == 2
        assert degraded_machine(2).num_chips == 1

    def test_single_chip_has_no_spares(self):
        with pytest.raises(ValueError):
            degraded_machine(1)

    def test_multi_chip_loss_skips_rungs(self):
        assert degraded_machine("cinnamon_12", dead_chips=5).num_chips == 4

    def test_ladder_matches_paper_configs(self):
        assert DEGRADE_LADDER == (12, 8, 4, 2, 1)
        for rung in DEGRADE_LADDER:
            assert config_for(rung).num_chips == rung
