"""Shared fixtures: a small symbolic program compiled for several
machine sizes (compilation dominates these tests' runtime)."""

import pytest

from repro.core import CinnamonProgram
from repro.fhe import ArchParams
from repro.runtime import CinnamonSession

PARAMS = ArchParams(max_level=12)


def build_program(name="resilience-prog"):
    prog = CinnamonProgram(name, level=12)
    a, b = prog.input("a"), prog.input("b")
    c = a * b
    prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(3))
    return prog


@pytest.fixture(scope="module")
def session():
    return CinnamonSession()


@pytest.fixture(scope="module")
def compiled_4(session):
    return session.compile(build_program(), PARAMS, machine="cinnamon_4")


@pytest.fixture(scope="module")
def compiled_12(session):
    return session.compile(build_program(), PARAMS, machine="cinnamon_12")
