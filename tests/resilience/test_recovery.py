"""Recovery orchestration: degrade, recompile, replay, trace entries."""

import numpy as np
import pytest

from repro.fhe import ArchParams, CKKSContext, make_params
from repro.resilience import (
    CheckpointStore,
    FaultSchedule,
    RecoveryExhausted,
    RecoveryOrchestrator,
    run_with_recovery,
)
from repro.runtime import CinnamonSession
from repro.runtime.trace import TRACE_SCHEMA_VERSION

from .conftest import PARAMS, build_program

TOL = 1e-3


class TestDegradedRecovery:
    def test_12_to_8_recovery(self, session):
        orch = RecoveryOrchestrator(session, checkpoint_interval=5_000)
        sched = FaultSchedule().chip_crash(9, 20_000)
        result = orch.run(build_program(), PARAMS, machine="cinnamon_12",
                          fault_schedule=sched, run_id="deg-12-8")
        assert result.recovered and result.degraded
        assert result.machine == "Cinnamon-8"
        event = result.recoveries[0]
        assert event.fault == "chip_crash"
        assert event.chip == 9
        assert event.cycle == 20_000
        assert event.machine_from == "Cinnamon-12"
        assert event.machine_to == "Cinnamon-8"
        assert 0 < event.checkpoint_cycle <= 20_000
        assert event.lost_cycles == 20_000 - event.checkpoint_cycle
        assert event.replay_s is not None and event.replay_s > 0
        assert result.checkpoints_taken > 1
        assert result.result.instructions > 0

    def test_recovery_is_deterministic(self):
        cycles = []
        for _ in range(2):
            result = run_with_recovery(
                build_program(), PARAMS, machine="cinnamon_12",
                fault_schedule=FaultSchedule().chip_crash(9, 20_000))
            cycles.append((result.recoveries[0].checkpoint_cycle,
                           result.result.cycles))
        assert cycles[0] == cycles[1]

    def test_double_fault_walks_the_ladder(self, session):
        orch = RecoveryOrchestrator(session, checkpoint_interval=5_000)
        sched = FaultSchedule().chip_crash(5, 15_000).chip_crash(3, 30_000)
        result = orch.run(build_program(), PARAMS, machine="cinnamon_12",
                          fault_schedule=sched)
        assert [e.machine_to for e in result.recoveries] == \
            ["Cinnamon-8", "Cinnamon-4"]
        assert result.machine == "Cinnamon-4"

    def test_clean_run_records_nothing(self, session):
        orch = RecoveryOrchestrator(session)
        result = orch.run(build_program(), PARAMS, machine="cinnamon_4")
        assert not result.recovered and not result.degraded
        assert result.machine == "Cinnamon-4"

    def test_budget_exhaustion_raises(self, session):
        orch = RecoveryOrchestrator(session, max_recoveries=0)
        with pytest.raises(RecoveryExhausted) as info:
            orch.run(build_program(), PARAMS, machine="cinnamon_12",
                     fault_schedule=FaultSchedule().chip_crash(9, 20_000))
        assert info.value.last_error.chip == 9

    def test_trace_records_recovery_and_schema(self, tmp_path):
        session = CinnamonSession()
        orch = RecoveryOrchestrator(session, checkpoint_interval=5_000)
        orch.run(build_program(), PARAMS, machine="cinnamon_12",
                 fault_schedule=FaultSchedule().chip_crash(9, 20_000),
                 job="traced-recovery")
        trace = session.trace()
        assert trace["schema"] == TRACE_SCHEMA_VERSION
        recoveries = [e for e in trace["jobs"]
                      if e.get("kind") == "recovery"]
        assert len(recoveries) == 1
        entry = recoveries[0]
        assert entry["job"] == "traced-recovery"
        assert entry["machine_from"] == "Cinnamon-12"
        assert entry["machine_to"] == "Cinnamon-8"
        assert entry["replay_s"] is not None
        failed = [e for e in trace["jobs"]
                  if e.get("kind") == "simulate" and e.get("error")]
        assert any("ChipFailure" in e["error"] for e in failed)

    def test_checkpoints_persist_in_store(self, tmp_path, session):
        store = CheckpointStore(tmp_path, keep=3)
        orch = RecoveryOrchestrator(session, store,
                                    checkpoint_interval=5_000)
        orch.run(build_program(), PARAMS, machine="cinnamon_4",
                 run_id="persisted")
        chain = store.list("persisted")
        assert chain, "expected retained checkpoints on disk"
        assert all(c.run_id == "persisted" for c in chain)
        assert chain[-1].snapshot is not None


class TestFunctionalEquality:
    """The paper-level claim: a degraded run decrypts to the same values."""

    @pytest.fixture(scope="class")
    def env(self):
        params = make_params(ring_degree=128, levels=6, prime_bits=28,
                             num_digits=2)
        return params, CKKSContext(params, seed=77)

    def build(self):
        from repro.core import CinnamonProgram

        prog = CinnamonProgram("recover-fn", level=6)
        a, b = prog.input("a"), prog.input("b")
        c = a * b
        prog.output("y", c.rotate(1) + c)
        return prog

    def test_4_to_2_outputs_match_fault_free(self, env):
        params, ctx = env
        rng = np.random.default_rng(11)
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)
        inputs = {"a": ctx.encrypt_values(za), "b": ctx.encrypt_values(zb)}

        session = CinnamonSession()
        clean = session.compile(self.build(), params, machine="cinnamon_2")
        want = {name: ctx.decrypt_values(ct) for name, ct in
                clean.emulate(dict(inputs), context=ctx).items()}

        orch = RecoveryOrchestrator(session, checkpoint_interval=2_000)
        result = orch.run(
            self.build(), params, machine="cinnamon_4",
            fault_schedule=FaultSchedule().chip_crash(3, 4_000),
            inputs=inputs, context=ctx, emulate_outputs=True)
        assert result.degraded
        assert result.machine == "Cinnamon-2"
        assert result.outputs is not None
        got = {name: ctx.decrypt_values(ct)
               for name, ct in result.outputs.items()}
        assert set(got) == set(want) == {"y"}
        expect = np.roll(za * zb, -1) + za * zb
        assert np.max(np.abs(got["y"].real - expect)) < TOL
        assert np.max(np.abs(got["y"] - want["y"])) < TOL

    def test_emulate_outputs_requires_context(self, env):
        params, _ = env
        orch = RecoveryOrchestrator()
        with pytest.raises(ValueError, match="inputs and context"):
            orch.run(self.build(), params, machine="cinnamon_2",
                     emulate_outputs=True)
