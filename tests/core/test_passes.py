"""Tests for the keyswitch pass, alignment, and scale inference."""

import pytest

from repro.core import CinnamonProgram
from repro.core.dsl import program as ct
from repro.core.ir.ctpasses import infer_scales, insert_alignment
from repro.core.ir.passes import (
    KS_CIFHER,
    KS_INPUT_BROADCAST,
    KS_OUTPUT_AGGREGATION,
    ROTATE_SUM,
    KeyswitchPass,
)


def _rotation_fanout_program():
    prog = CinnamonProgram("fanout", level=6)
    a, b = prog.input("a"), prog.input("b")
    r = [a.rotate(i) for i in (1, 2, 3)]
    prog.output("y", (r[0] * b + r[1] * b) + r[2] * b)
    return prog


def _rotate_sum_program():
    prog = CinnamonProgram("rotsum", level=6)
    a, b = prog.input("a"), prog.input("b")
    c = a * b
    prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(4))
    return prog


class TestPattern1:
    def test_rotations_of_one_source_batched(self):
        prog = KeyswitchPass("cinnamon").run(_rotation_fanout_program())
        rotates = [op for op in prog.ops if op.opcode == ct.ROTATE]
        batches = {op.attrs.get("ks_batch") for op in rotates}
        assert len(batches) == 1 and None not in batches
        assert all(op.attrs["ks_algorithm"] == KS_INPUT_BROADCAST
                   for op in rotates)

    def test_batching_disabled(self):
        ks = KeyswitchPass("cinnamon", enable_batching=False)
        prog = ks.run(_rotation_fanout_program())
        rotates = [op for op in prog.ops if op.opcode == ct.ROTATE]
        assert all("ks_batch" not in op.attrs for op in rotates)

    def test_single_rotation_not_batched(self):
        prog = CinnamonProgram("one", level=6)
        a = prog.input("a")
        prog.output("y", a.rotate(1))
        ks = KeyswitchPass("cinnamon")
        out = ks.run(prog)
        rotate = next(op for op in out.ops if op.opcode == ct.ROTATE)
        assert "ks_batch" not in rotate.attrs
        assert ks.stats.pattern1_batches == 0


class TestPattern2:
    def test_rotate_sum_fused(self):
        ks = KeyswitchPass("cinnamon")
        prog = ks.run(_rotate_sum_program())
        fused = [op for op in prog.ops if op.opcode == ROTATE_SUM]
        assert len(fused) == 1
        assert fused[0].attrs["ks_algorithm"] == KS_OUTPUT_AGGREGATION
        assert sorted(fused[0].attrs["rotations"]) == [1, 2, 4]
        # The interior adds and rotate leaves are gone.
        assert prog.count(ct.ROTATE) == 0
        assert ks.stats.pattern2_batches == 1

    def test_non_fusible_tree_untouched(self):
        """Trees whose leaves are not single-use rotations stay intact."""
        prog = KeyswitchPass("cinnamon").run(_rotation_fanout_program())
        assert all(op.opcode != ROTATE_SUM for op in prog.ops)
        assert prog.count(ct.ADD) == 2

    def test_shared_rotation_not_consumed(self):
        prog = CinnamonProgram("shared", level=6)
        a = prog.input("a")
        r1 = a.rotate(1)
        r2 = a.rotate(2)
        tree = r1 + r2
        prog.output("y", tree)
        prog.output("z", r1)  # r1 used outside the tree
        out = KeyswitchPass("cinnamon").run(prog)
        fused = [op for op in out.ops if op.opcode == ROTATE_SUM]
        # Only one single-use rotation -> below fusion threshold.
        assert not fused

    def test_outputs_remap_after_fusion(self):
        out = KeyswitchPass("cinnamon").run(_rotate_sum_program())
        producer = out.ops[out.outputs["y"]]
        assert producer.opcode == ROTATE_SUM


class TestPolicies:
    @pytest.mark.parametrize("policy,algorithm", [
        ("cifher", KS_CIFHER),
        ("input_broadcast", KS_INPUT_BROADCAST),
    ])
    def test_policy_applied_to_all(self, policy, algorithm):
        prog = KeyswitchPass(policy).run(_rotate_sum_program())
        tagged = [op for op in prog.ops
                  if op.opcode in (ct.MUL, ct.ROTATE)]
        assert all(op.attrs["ks_algorithm"] == algorithm for op in tagged)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            KeyswitchPass("quantum")

    def test_unknown_policy_error_lists_choices(self):
        with pytest.raises(ValueError, match="'cinnamon'.*'cifher'"):
            KeyswitchPass("quantum")

    @pytest.mark.parametrize("spelling", [
        "KS_CIFHER", "CiFHER", "cifher", "ks_cifher", "CIFHER",
    ])
    def test_constant_style_spellings_normalize(self, spelling):
        assert KeyswitchPass(spelling).policy == "cifher"

    def test_dashes_normalize_to_underscores(self):
        assert KeyswitchPass("input-broadcast").policy == "input_broadcast"

    def test_policy_names_exported_from_core(self):
        from repro import core

        assert core.KS_CINNAMON == "cinnamon"
        assert set(core.KEYSWITCH_POLICIES) == {
            "cinnamon", "input_broadcast", "cifher", "sequential"}
        assert core.normalize_keyswitch_policy("KS-SEQUENTIAL") == \
            core.KS_SEQUENTIAL

    def test_event_reduction_reported(self):
        ks = KeyswitchPass("cinnamon")
        ks.run(_rotation_fanout_program())
        assert ks.stats.events_unbatched > ks.stats.events_batched
        assert ks.stats.reduction > 1.0

    def test_cifher_batched_still_linear(self):
        """CiFHER with batching pays O(r) mod-down broadcasts (Sec 7.4)."""
        ks = KeyswitchPass("cifher", enable_batching=True)
        ks.run(_rotation_fanout_program())
        # 3 rotations + 3 muls; rotations share 1 broadcast but keep 2 each.
        assert ks.stats.events_batched >= 2 * 3


class TestAlignment:
    def test_alignment_inserted_for_mixed_levels(self):
        prog = CinnamonProgram("mix", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", (a * b) + a)  # a at 6, product at 5
        aligned = insert_alignment(prog)
        aligners = [op for op in aligned.ops
                    if op.opcode == ct.MUL_PLAIN and op.attrs.get("align")]
        assert len(aligners) == 1
        add = next(op for op in aligned.ops if op.opcode == ct.ADD)
        levels = [aligned.ops[i].level for i in add.inputs]
        assert levels[0] == levels[1]

    def test_no_alignment_when_levels_match(self):
        prog = CinnamonProgram("even", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", a + b)
        aligned = insert_alignment(prog)
        assert not any(op.attrs.get("align") for op in aligned.ops)

    def test_multi_level_gap(self):
        prog = CinnamonProgram("gap", level=6)
        a, b = prog.input("a"), prog.input("b")
        deep = ((a * b) * b) * b  # level 3
        prog.output("y", deep + a)
        aligned = insert_alignment(prog)
        # Both mul operands and the final add get aligned; the add needs a
        # full 3-level chain for `a`, and every op ends with equal levels.
        aligners = [op for op in aligned.ops if op.attrs.get("align")]
        assert len(aligners) >= 3
        for op in aligned.ops:
            if op.opcode in (ct.ADD, ct.MUL) and len(op.inputs) == 2:
                levels = {aligned.ops[i].level for i in op.inputs}
                assert len(levels) == 1


class TestScaleInference:
    def test_invariant_scales(self, small_params):
        prog = CinnamonProgram("s", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", (a * b) + (a * b))
        prog = insert_alignment(prog)
        infer_scales(prog, small_params)
        for op in prog.ops:
            assert "scale" in op.attrs
        mul = next(op for op in prog.ops if op.opcode == ct.MUL)
        expected = small_params.scale_at_level(6) ** 2 \
            / small_params.moduli[5]
        assert abs(mul.attrs["scale"] - expected) < 1e-3 * expected

    def test_plain_mul_lands_on_invariant(self, small_params):
        prog = CinnamonProgram("s", level=6)
        a = prog.input("a")
        prog.output("y", a * 0.5)
        infer_scales(insert_alignment(prog), small_params)
