"""Tests for ciphertext-level DCE and CSE."""

import numpy as np
import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.dsl import program as ct
from repro.core.ir.optimize import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize,
)
from repro.core.isa.emulator import emulate
from repro.fhe import CKKSContext, make_params


class TestDce:
    def test_dead_ops_removed(self):
        prog = CinnamonProgram("d", level=6)
        a, b = prog.input("a"), prog.input("b")
        _dead = a * b           # never used
        _deader = _dead.rotate(3)
        prog.output("y", a + b)
        out = eliminate_dead_code(prog)
        assert out.count(ct.MUL) == 0
        assert out.count(ct.ROTATE) == 0
        assert out.count(ct.ADD) == 1

    def test_live_chain_kept(self):
        prog = CinnamonProgram("l", level=6)
        a = prog.input("a")
        prog.output("y", (a * a).rotate(1))
        out = eliminate_dead_code(prog)
        assert len(out.ops) == len(prog.ops)

    def test_dead_inputs_kept_in_mapping(self):
        # An unused input disappears from the op list but harmlessly.
        prog = CinnamonProgram("i", level=6)
        a = prog.input("a")
        prog.input("unused")
        prog.output("y", a)
        out = eliminate_dead_code(prog)
        assert "unused" not in out.inputs


class TestCse:
    def test_duplicate_rotations_merged(self):
        prog = CinnamonProgram("c", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", a.rotate(2) * b + a.rotate(2) * b)
        out = eliminate_common_subexpressions(prog)
        assert out.count(ct.ROTATE) == 1
        assert out.count(ct.MUL) == 1  # the whole product deduplicated

    def test_commutative_canonicalization(self):
        prog = CinnamonProgram("c2", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", (a * b) + (b * a))
        out = eliminate_common_subexpressions(prog)
        assert out.count(ct.MUL) == 1

    def test_different_rotations_not_merged(self):
        prog = CinnamonProgram("c3", level=6)
        a = prog.input("a")
        prog.output("y", a.rotate(1) + a.rotate(2))
        out = eliminate_common_subexpressions(prog)
        assert out.count(ct.ROTATE) == 2

    def test_subtraction_not_canonicalized(self):
        prog = CinnamonProgram("c4", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", (a - b) + (b - a))
        out = eliminate_common_subexpressions(prog)
        assert out.count(ct.SUB) == 2


class TestEndToEnd:
    def test_optimized_program_emulates_correctly(self):
        params = make_params(ring_degree=64, levels=6, prime_bits=28,
                             num_digits=2)
        ctx = CKKSContext(params, seed=31)
        rng = np.random.default_rng(2)
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)

        prog = CinnamonProgram("e2e", level=6)
        a, b = prog.input("a"), prog.input("b")
        _dead = a.rotate(5)
        y = a.rotate(2) * b + a.rotate(2) * b  # CSE target
        prog.output("y", y)

        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=2)).compile(prog)
        # Dedup happened before lowering: a single rotation keyswitch
        # (plus one relinearization for the multiply).
        assert compiled.poly_program.keyswitch_count == 2
        outs = emulate(compiled, ctx,
                       {"a": ctx.encrypt_values(za),
                        "b": ctx.encrypt_values(zb)})
        expect = 2 * (np.roll(za, -2) * zb)
        got = ctx.decrypt_values(outs["y"]).real
        assert np.max(np.abs(got - expect)) < 1e-3

    def test_optimizations_can_be_disabled(self):
        params = make_params(ring_degree=64, levels=6, prime_bits=28,
                             num_digits=2)
        prog = CinnamonProgram("off", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", a.rotate(2) * b + a.rotate(2) * b)
        on = CinnamonCompiler(params, CompilerOptions(
            num_chips=1)).compile(prog, emit_isa=False)

        prog2 = CinnamonProgram("off2", level=6)
        a, b = prog2.input("a"), prog2.input("b")
        prog2.output("y", a.rotate(2) * b + a.rotate(2) * b)
        off = CinnamonCompiler(params, CompilerOptions(
            num_chips=1, enable_optimizations=False)).compile(
                prog2, emit_isa=False)
        assert off.poly_program.keyswitch_count > \
            on.poly_program.keyswitch_count

    def test_optimize_composes(self):
        prog = CinnamonProgram("comp", level=6)
        a = prog.input("a")
        _dead = a.rotate(1) + a.rotate(1)  # dead AND duplicated
        prog.output("y", a * a)
        out = optimize(prog)
        assert out.count(ct.ROTATE) == 0
        assert out.count(ct.ADD) == 0


class TestStreamPreservation:
    def test_cse_never_merges_across_streams(self):
        from repro.core.dsl import StreamPool

        prog = CinnamonProgram("st", level=6)
        shared = prog.input("shared")

        def fn(sid):
            prog.output(f"y{sid}", shared.rotate(3))

        StreamPool(prog, 2, fn)
        out = eliminate_common_subexpressions(prog)
        rotates = [op for op in out.ops if op.opcode == ct.ROTATE]
        assert len(rotates) == 2
        assert {op.stream for op in rotates} == {0, 1}
