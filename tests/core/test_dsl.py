"""Tests for the Cinnamon DSL: program capture, handles, streams."""

import pytest

from repro.core import CinnamonProgram, StreamPool
from repro.core.dsl import program as ct
from repro.core.dsl.streams import stream_scope


class TestCapture:
    def test_input_output(self):
        prog = CinnamonProgram("p", level=5)
        x = prog.input("x")
        prog.output("y", x)
        assert prog.count(ct.INPUT) == 1
        assert prog.count(ct.OUTPUT) == 1
        assert prog.inputs["x"] == 0
        assert prog.outputs["y"] == 0

    def test_duplicate_input_rejected(self):
        prog = CinnamonProgram("p", level=5)
        prog.input("x")
        with pytest.raises(ValueError):
            prog.input("x")

    def test_duplicate_output_rejected(self):
        prog = CinnamonProgram("p", level=5)
        x = prog.input("x")
        prog.output("y", x)
        with pytest.raises(ValueError):
            prog.output("y", x)

    def test_operator_sugar(self):
        prog = CinnamonProgram("p", level=5)
        a, b = prog.input("a"), prog.input("b")
        _ = a + b
        _ = a - b
        _ = -a
        _ = a * b
        _ = a + 1.0
        _ = a * 2.0
        _ = 3.0 * a
        _ = a.rotate(4)
        _ = a.conjugate()
        assert prog.count(ct.ADD) == 1
        assert prog.count(ct.SUB) == 1
        assert prog.count(ct.NEGATE) == 1
        assert prog.count(ct.MUL) == 1
        assert prog.count(ct.ADD_PLAIN) == 1
        assert prog.count(ct.MUL_PLAIN) == 2
        assert prog.count(ct.ROTATE) == 1
        assert prog.count(ct.CONJUGATE) == 1

    def test_cross_program_handles_rejected(self):
        p1 = CinnamonProgram("p1", level=5)
        p2 = CinnamonProgram("p2", level=5)
        a = p1.input("a")
        b = p2.input("b")
        with pytest.raises(ValueError):
            _ = a + b


class TestLevelTracking:
    def test_mul_consumes_level(self):
        prog = CinnamonProgram("p", level=5)
        a, b = prog.input("a"), prog.input("b")
        c = a * b
        assert c.level == 4

    def test_plain_mul_consumes_level(self):
        prog = CinnamonProgram("p", level=5)
        a = prog.input("a")
        assert (a * 2.0).level == 4

    def test_rotate_preserves_level(self):
        prog = CinnamonProgram("p", level=5)
        a = prog.input("a")
        assert a.rotate(1).level == 5

    def test_add_takes_min_level(self):
        prog = CinnamonProgram("p", level=5)
        a, b = prog.input("a"), prog.input("b")
        c = (a * b) + a
        assert c.level == 4

    def test_budget_exhaustion_raises(self):
        prog = CinnamonProgram("p", level=2)
        a = prog.input("a")
        b = a * a
        with pytest.raises(ValueError, match="budget"):
            _ = b * b

    def test_bootstrap_restores_level(self):
        prog = CinnamonProgram("p", level=3, bootstrap_output_level=8)
        a = prog.input("a")
        c = (a * a) * a
        assert c.level == 1
        assert c.bootstrap().level == 8

    def test_keyswitch_count(self):
        prog = CinnamonProgram("p", level=5)
        a, b = prog.input("a"), prog.input("b")
        _ = (a * b).rotate(1).conjugate()
        assert prog.keyswitch_count == 3


class TestStreams:
    def test_stream_pool_tags_ops(self):
        prog = CinnamonProgram("p", level=5)

        def fn(sid):
            x = prog.input(f"x{sid}")
            prog.output(f"y{sid}", x * x)

        StreamPool(prog, 3, fn)
        assert prog.num_streams == 3
        streams = {op.stream for op in prog.ops}
        assert streams == {0, 1, 2}

    def test_stream_scope_restores(self):
        prog = CinnamonProgram("p", level=5)
        with stream_scope(prog, 2):
            prog.input("a")
        prog.input("b")
        assert prog.ops[0].stream == 2
        assert prog.ops[1].stream == 0

    def test_negative_stream_rejected(self):
        prog = CinnamonProgram("p", level=5)
        with pytest.raises(ValueError):
            with stream_scope(prog, -1):
                pass

    def test_empty_pool_rejected(self):
        prog = CinnamonProgram("p", level=5)
        with pytest.raises(ValueError):
            StreamPool(prog, 0, lambda sid: None)

    def test_users_table(self):
        prog = CinnamonProgram("p", level=5)
        a = prog.input("a")
        b = a * a
        prog.output("y", b)
        users = prog.users()
        assert users[a.op_id] == [b.op_id, b.op_id]  # used twice by the square
        assert len(users[b.op_id]) == 1

    def test_dump_readable(self):
        prog = CinnamonProgram("p", level=5)
        a = prog.input("a")
        prog.output("y", a.rotate(2))
        text = prog.dump()
        assert "rotate" in text and "input" in text
