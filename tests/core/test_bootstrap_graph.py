"""Tests for the bootstrap op-graph expansion."""

import pytest

from repro.core import CinnamonProgram
from repro.core.ir.bootstrap_graph import (
    BOOTSTRAP_13,
    BOOTSTRAP_21,
    BootstrapPlan,
    default_plan,
    expand_bootstraps,
)
from repro.fhe import ArchParams


def _program():
    prog = CinnamonProgram("b", level=2, bootstrap_output_level=14)
    x = prog.input("x")
    prog.output("y", x.bootstrap())
    return prog


class TestPlans:
    def test_bootstrap13_matches_paper(self):
        # "takes a ciphertext at level 2, raises to 51, consumes 36,
        # leaving 13 effective levels."
        assert BOOTSTRAP_13.top_level == 51
        assert BOOTSTRAP_13.output_level == 14
        assert BOOTSTRAP_13.consumed_levels == 37

    def test_bootstrap21_deeper(self):
        assert BOOTSTRAP_21.consumed_levels == BOOTSTRAP_21.top_level - 22

    def test_default_plan_selection(self):
        assert default_plan(ArchParams(max_level=51)) is BOOTSTRAP_13
        mini = default_plan(ArchParams(max_level=20))
        assert mini.top_level == 20
        with pytest.raises(ValueError):
            default_plan(ArchParams(max_level=6))


class TestExpansion:
    @pytest.fixture(scope="class")
    def expanded(self):
        return expand_bootstraps(_program(), ArchParams(max_level=51),
                                 plan=BOOTSTRAP_13)

    def test_bootstrap_op_removed(self, expanded):
        assert expanded.count("bootstrap") == 0
        assert expanded.count("mod_raise") == 1

    def test_output_level_matches_plan(self, expanded):
        producer = expanded.ops[expanded.outputs["y"]]
        assert producer.level == BOOTSTRAP_13.output_level

    def test_raise_reaches_top_level(self, expanded):
        raise_op = next(op for op in expanded.ops
                        if op.opcode == "mod_raise")
        assert raise_op.level == BOOTSTRAP_13.top_level

    def test_contains_rotation_batches(self, expanded):
        """The expansion exposes the patterns the keyswitch pass targets:
        hoistable rotation fans and rotate-aggregate trees."""
        rotations = [op for op in expanded.ops if op.opcode == "rotate"]
        assert len(rotations) > 30
        by_source = {}
        for op in rotations:
            by_source.setdefault(op.inputs[0], []).append(op)
        assert any(len(g) >= 3 for g in by_source.values())

    def test_metadata_shared_across_instances(self):
        prog = CinnamonProgram("b2", level=2, bootstrap_output_level=14)
        x1, x2 = prog.input("x1"), prog.input("x2")
        prog.output("y1", x1.bootstrap())
        prog.output("y2", x2.bootstrap())
        expanded = expand_bootstraps(prog, ArchParams(max_level=51),
                                     plan=BOOTSTRAP_13)
        # Both instances reference the same plaintext names (Figure 6's
        # shared-metadata observation).
        names = set(expanded.plaintexts)
        per_instance = [n for n in names if n.startswith("bs_cts0")]
        assert per_instance  # shared, not bs0_/bs1_-prefixed
        assert not any(n.startswith("bs0_") or n.startswith("bs1_")
                       for n in names)

    def test_plan_too_deep_rejected(self):
        with pytest.raises(ValueError, match="levels"):
            expand_bootstraps(_program(), ArchParams(max_level=20),
                              plan=BOOTSTRAP_13)

    def test_inconsistent_plan_rejected(self):
        bad = BootstrapPlan("bad", top_level=12, output_level=11,
                            cts_stages=1, cts_radix=2,
                            eval_mod_degree=3, eval_mod_doublings=0)
        with pytest.raises(ValueError, match="exceeds"):
            expand_bootstraps(_program(), ArchParams(max_level=12), plan=bad)

    def test_bootstrap21_has_more_ops(self):
        small = expand_bootstraps(_program(), ArchParams(max_level=51),
                                  plan=BOOTSTRAP_13)
        big = expand_bootstraps(_program(), ArchParams(max_level=59),
                                plan=BOOTSTRAP_21)
        assert len(big.ops) > 1.3 * len(small.ops)


class TestAutoBootstrap:
    def test_depth_oblivious_program(self):
        prog = CinnamonProgram("auto", level=4, bootstrap_output_level=10,
                               auto_bootstrap=True)
        x = prog.input("x")
        acc = x
        for _ in range(12):
            acc = acc * acc
        prog.output("y", acc)
        assert prog.count("bootstrap") >= 1
        # Every multiplication stayed within budget.
        for op in prog.ops:
            assert op.level >= 1

    def test_disabled_by_default(self):
        prog = CinnamonProgram("strict", level=3)
        x = prog.input("x")
        y = (x * x) * x
        with pytest.raises(ValueError, match="budget"):
            _ = y * y
