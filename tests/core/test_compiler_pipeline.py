"""Integration tests: DSL -> poly IR -> limb IR -> ISA."""

import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.dsl import StreamPool
from repro.core.ir import poly_ir
from repro.core.ir.limb_ir import (
    L_AUTO, L_BCONV, L_COMM, L_LOAD, L_NTT, L_PRNG, L_STORE,
)
from repro.fhe import ArchParams


@pytest.fixture(scope="module")
def compiled_simple(small_params):
    prog = CinnamonProgram("pipe", level=6)
    a, b = prog.input("a"), prog.input("b")
    c = a * b
    prog.output("y", c + c.rotate(1))
    return CinnamonCompiler(
        small_params, CompilerOptions(num_chips=2)).compile(prog)


class TestPolyLowering:
    def test_ciphertext_expands_to_two_polys(self, compiled_simple):
        poly = compiled_simple.poly_program
        assert poly.count(poly_ir.P_INPUT) == 4  # 2 inputs x 2 components

    def test_mul_produces_tensor_and_keyswitch(self, compiled_simple):
        poly = compiled_simple.poly_program
        assert poly.count(poly_ir.P_KS) >= 2  # relin + rotation, 2 comps each
        assert poly.count(poly_ir.P_MUL) >= 4

    def test_keyswitch_groups_share_id(self, compiled_simple):
        poly = compiled_simple.poly_program
        ks_ops = [op for op in poly.ops if op.opcode == poly_ir.P_KS]
        by_id = {}
        for op in ks_ops:
            by_id.setdefault(op.attrs["ks_id"], []).append(op)
        for members in by_id.values():
            assert sorted(m.attrs["component"] for m in members) == [0, 1]

    def test_keyswitch_count(self, compiled_simple):
        assert compiled_simple.poly_program.keyswitch_count == 2

    def test_bootstrap_requires_expansion(self, deep_params):
        prog = CinnamonProgram("b", level=3, bootstrap_output_level=2)
        x = prog.input("x")
        prog.output("y", x.bootstrap())
        # Compilation must route through the expansion, not crash lowering.
        compiled = CinnamonCompiler(
            deep_params, CompilerOptions(num_chips=1)).compile(
                prog, emit_isa=False)
        assert compiled.ct_program.count("bootstrap") == 0
        assert compiled.ct_program.count("mod_raise") == 1


class TestLimbLowering:
    def test_limbs_partitioned_modularly(self, small_params):
        prog = CinnamonProgram("part", level=6)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", a + b)
        compiled = CinnamonCompiler(
            small_params, CompilerOptions(num_chips=3)).compile(prog)
        loads = [op for op in compiled.limb_program.ops
                 if op.opcode == L_LOAD and op.attrs["symbol"].startswith("input")]
        for op in loads:
            limb_index = int(op.attrs["symbol"].rsplit(":", 1)[1])
            assert op.chip == limb_index % 3

    def test_single_chip_has_no_comm(self, small_params):
        prog = CinnamonProgram("solo", level=6)
        a = prog.input("a")
        prog.output("y", (a * a).rotate(3))
        compiled = CinnamonCompiler(
            small_params, CompilerOptions(num_chips=1)).compile(prog)
        assert compiled.limb_program.comm_events() == 0

    def test_keyswitch_emits_bconv_and_ntt(self, compiled_simple):
        lp = compiled_simple.limb_program
        assert lp.count(L_BCONV) > 0
        assert lp.count(L_NTT) > 0

    def test_evalkey_component1_uses_prng(self, compiled_simple):
        lp = compiled_simple.limb_program
        prngs = [op for op in lp.ops if op.opcode == L_PRNG]
        assert prngs
        assert all(":1:" in op.attrs["symbol"] for op in prngs)

    def test_outputs_stored(self, compiled_simple):
        lp = compiled_simple.limb_program
        stores = [op for op in lp.ops if op.opcode == L_STORE]
        assert len(stores) == 2 * 5  # 2 components x level-5 result

    def test_stream_placement(self, small_params):
        prog = CinnamonProgram("streams", level=6)

        def fn(sid):
            x = prog.input(f"x{sid}")
            prog.output(f"y{sid}", x * x)

        StreamPool(prog, 2, fn)
        compiled = CinnamonCompiler(
            small_params, CompilerOptions(num_chips=4)).compile(prog)
        lp = compiled.limb_program
        chips_by_input = {}
        for op in lp.ops:
            if op.opcode == L_LOAD and op.attrs["symbol"].startswith("input:x"):
                name = op.attrs["symbol"].split(":")[1]
                chips_by_input.setdefault(name, set()).add(op.chip)
        assert chips_by_input["x0"] <= {0, 1}
        assert chips_by_input["x1"] <= {2, 3}

    def test_symbolic_arch_params(self):
        """Compilation at N=64K scale works without concrete primes."""
        prog = CinnamonProgram("sym", level=10)
        a = prog.input("a")
        prog.output("y", (a * a).rotate(1))
        compiled = CinnamonCompiler(
            ArchParams(max_level=10), CompilerOptions(num_chips=4)).compile(prog)
        assert compiled.instruction_count > 0
        autos = [op for op in compiled.limb_program.ops if op.opcode == L_AUTO]
        assert autos and all(op.attrs["galois"] == pow(5, 1, 2 * 65536)
                             for op in autos)


class TestCommunicationByPolicy:
    def _compile(self, policy, small_params, chips=4, batching=True):
        prog = CinnamonProgram("comm", level=6)
        a, b = prog.input("a"), prog.input("b")
        c = a * b
        prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(3))
        return CinnamonCompiler(small_params, CompilerOptions(
            num_chips=chips, keyswitch_policy=policy,
            enable_batching=batching)).compile(prog)

    def test_cifher_moves_more_data(self, small_params):
        cif = self._compile("cifher", small_params)
        cin = self._compile("cinnamon", small_params)
        assert cif.limb_program.comm_limbs() > cin.limb_program.comm_limbs()

    def test_cinnamon_uses_aggregations(self, small_params):
        cin = self._compile("cinnamon", small_params)
        assert cin.limb_program.comm_events("aggregate") == 2

    def test_cifher_never_aggregates(self, small_params):
        cif = self._compile("cifher", small_params)
        assert cif.limb_program.comm_events("aggregate") == 0


class TestIsa:
    def test_register_budget_respected(self, small_params):
        prog = CinnamonProgram("regs", level=6)
        a, b = prog.input("a"), prog.input("b")
        acc = a
        for i in range(4):
            acc = acc * b if acc.level > 2 else acc
        prog.output("y", acc)
        compiled = CinnamonCompiler(small_params, CompilerOptions(
            num_chips=1, registers_per_chip=24)).compile(prog)
        for stream in compiled.isa.streams.values():
            for ins in stream:
                regs = list(ins.srcs) + ([ins.dest] if ins.dest is not None else [])
                assert all(r < 24 for r in regs)

    def test_small_register_file_spills_more(self, small_params):
        prog = CinnamonProgram("spill", level=8)
        a, b = prog.input("a"), prog.input("b")
        c = a * b
        prog.output("y", c.rotate(1) + c.rotate(2))
        tight = CinnamonCompiler(small_params, CompilerOptions(
            num_chips=1, registers_per_chip=24)).compile(prog)
        roomy = CinnamonCompiler(small_params, CompilerOptions(
            num_chips=1, registers_per_chip=224)).compile(prog)

        def traffic(c):
            return sum(s.spill_stores + s.reloads
                       for s in c.isa.alloc_stats.values())

        assert traffic(tight) > traffic(roomy)

    def test_instruction_count_positive(self, compiled_simple):
        assert compiled_simple.instruction_count > 100


class TestLayoutValidation:
    def test_oversized_stream_group_rejected(self, small_params):
        prog = CinnamonProgram("bad", level=4)
        prog.output("y", prog.input("a") * 1.0)
        with pytest.raises(ValueError, match="chips_per_stream"):
            CinnamonCompiler(small_params, CompilerOptions(
                num_chips=2, chips_per_stream=4)).compile(prog)

    def test_more_streams_than_groups_wraps(self, small_params):
        # 3 streams on a 2-group machine: stream 2 wraps onto group 0.
        prog = CinnamonProgram("wrap", level=4)

        def fn(sid):
            x = prog.input(f"x{sid}")
            prog.output(f"y{sid}", x * 1.0)

        StreamPool(prog, 3, fn)
        compiled = CinnamonCompiler(small_params, CompilerOptions(
            num_chips=4, chips_per_stream=2)).compile(prog)
        chips = {op.chip for op in compiled.limb_program.ops}
        assert chips <= {0, 1, 2, 3}
