"""Cross-layer consistency: DSL stats vs poly IR vs limb IR vs ISA.

These tests pin the bookkeeping that the experiments rely on: keyswitch
counts surviving lowering, communication volumes consistent between the
pass's event accounting and the limb IR's ledger, and instruction streams
covering every limb op.
"""

import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.ir import limb_ir as lir
from repro.core.ir.bootstrap_graph import BootstrapPlan
from repro.fhe import ArchParams

PLAN = BootstrapPlan("xlayer-mini", top_level=16, output_level=2,
                     cts_stages=1, cts_radix=4,
                     eval_mod_degree=7, eval_mod_doublings=0)


@pytest.fixture(scope="module")
def compiled():
    prog = CinnamonProgram("xl", level=2, bootstrap_output_level=2)
    x = prog.input("x")
    prog.output("y", x.bootstrap())
    return CinnamonCompiler(
        ArchParams(max_level=PLAN.top_level),
        CompilerOptions(num_chips=4, bootstrap_plan=PLAN),
    ).compile(prog)


class TestKeyswitchAccounting:
    def test_ct_and_poly_keyswitch_counts_agree(self, compiled):
        ct_count = compiled.ct_program.keyswitch_count
        rotate_sum_members = sum(
            len([r for r in op.attrs["rotations"] if r != 0])
            for op in compiled.ct_program.ops if op.opcode == "rotate_sum"
        )
        assert compiled.poly_program.keyswitch_count == \
            ct_count + rotate_sum_members

    def test_pass_counts_every_keyswitch(self, compiled):
        assert compiled.pass_stats.keyswitches == \
            compiled.poly_program.keyswitch_count

    def test_batching_reduced_events(self, compiled):
        assert compiled.pass_stats.events_batched < \
            compiled.pass_stats.events_unbatched


class TestCommunicationLedger:
    def test_every_broadcast_has_receivers(self, compiled):
        lp = compiled.limb_program
        comm_cids = {op.attrs["cid"] for op in lp.ops
                     if op.opcode == lir.L_COMM}
        recv_cids = {op.attrs["cid"] for op in lp.ops
                     if op.opcode == lir.L_RECV}
        assert comm_cids == recv_cids

    def test_comm_limbs_positive_on_multichip(self, compiled):
        assert compiled.limb_program.comm_limbs() > 0

    def test_aggregations_come_in_pairs(self, compiled):
        """Output aggregation always aggregates both (f0, f1) components."""
        assert compiled.limb_program.comm_events("aggregate") % 2 == 0


class TestIsaCoverage:
    def test_instruction_count_at_least_limb_ops(self, compiled):
        # Registers add loads/spills on top of the limb ops (collectives
        # fan out per chip), so the ISA is never smaller.
        assert compiled.instruction_count >= \
            len(compiled.limb_program.ops) * 0.9

    def test_every_chip_has_work(self, compiled):
        for chip, stream in compiled.isa.streams.items():
            assert stream, f"chip {chip} has no instructions"

    def test_outputs_stored_once_per_limb(self, compiled):
        stores = [ins for s in compiled.isa.streams.values() for ins in s
                  if ins.opcode == "st"
                  and ins.attrs["symbol"].startswith("output:")]
        assert len(stores) == 2 * PLAN.output_level
