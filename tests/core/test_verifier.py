"""Tests for the limb-IR verifier (and that real lowerings pass it)."""

import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.ir import limb_ir as lir
from repro.core.ir.verifier import VerificationError, verify_limb_program
from repro.fhe import ArchParams


def _compile(policy="cinnamon", chips=4, params=None):
    params = params or ArchParams(max_level=10)
    prog = CinnamonProgram("v", level=min(10, params.max_level))
    a, b = prog.input("a"), prog.input("b")
    c = a * b
    prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(3))
    return CinnamonCompiler(params, CompilerOptions(
        num_chips=chips, keyswitch_policy=policy)).compile(
            prog, emit_isa=False)


class TestRealLoweringsVerify:
    @pytest.mark.parametrize("policy", ["cinnamon", "input_broadcast",
                                        "cifher"])
    def test_policies_verify(self, policy):
        compiled = _compile(policy)
        count = verify_limb_program(compiled.limb_program)
        assert count == len(compiled.limb_program.ops)

    @pytest.mark.parametrize("chips", [1, 3, 4])
    def test_chip_counts_verify(self, chips):
        compiled = _compile(chips=chips)
        verify_limb_program(compiled.limb_program)

    def test_functional_params_verify(self, small_params):
        compiled = _compile(params=small_params)
        verify_limb_program(compiled.limb_program)

    def test_bootstrap_lowering_verifies(self):
        from repro.core.ir.bootstrap_graph import BootstrapPlan
        from repro.workloads.kernels import bootstrap_kernel

        plan = BootstrapPlan("verify-mini", top_level=14, output_level=2,
                             cts_stages=1, cts_radix=4,
                             eval_mod_degree=7, eval_mod_doublings=0)
        compiled = CinnamonCompiler(
            ArchParams(max_level=14),
            CompilerOptions(num_chips=4, bootstrap_plan=plan),
        ).compile(bootstrap_kernel(plan), emit_isa=False)
        verify_limb_program(compiled.limb_program)


class TestViolationsDetected:
    def test_forward_reference(self):
        program = lir.LimbProgram("bad", 1)
        op = lir.LimbOp(0, lir.L_ADD, 0, (5,), {"prime": 17})
        program.ops.append(op)
        with pytest.raises(VerificationError, match="not-yet-defined"):
            verify_limb_program(program)

    def test_cross_chip_read(self):
        program = lir.LimbProgram("bad", 2)
        program.emit(lir.L_LOAD, 0, domain=lir.EVAL, symbol="x", prime=17)
        program.emit(lir.L_NEG, 1, (0,), domain=lir.EVAL, prime=17)
        with pytest.raises(VerificationError, match="without a move"):
            verify_limb_program(program)

    def test_wrong_domain_for_ntt(self):
        program = lir.LimbProgram("bad", 1)
        program.emit(lir.L_LOAD, 0, domain=lir.EVAL, symbol="x", prime=17)
        program.emit(lir.L_NTT, 0, (0,), domain=lir.EVAL, prime=17)
        with pytest.raises(VerificationError, match="coeff-domain"):
            verify_limb_program(program)

    def test_unknown_collective(self):
        program = lir.LimbProgram("bad", 2)
        program.emit(lir.L_RECV, 0, (), domain=lir.EVAL, cid=9, tag="t",
                     prime=17)
        with pytest.raises(VerificationError, match="unknown collective"):
            verify_limb_program(program)

    def test_recv_outside_group(self):
        program = lir.LimbProgram("bad", 4)
        v = program.emit(lir.L_LOAD, 0, domain=lir.COEFF, symbol="x", prime=17)
        comm = program.emit(lir.L_COMM, 0, (v,), kind="broadcast", cid=1,
                            group=(0, 1), tags=("t",), limbs_moved=1)
        program.emit(lir.L_RECV, 3, (comm,), domain=lir.COEFF, cid=1,
                     tag="t", prime=17)
        with pytest.raises(VerificationError, match="outside"):
            verify_limb_program(program)

    def test_bcu_input_bound(self):
        program = lir.LimbProgram("bad", 1)
        sources = [program.emit(lir.L_LOAD, 0, domain=lir.COEFF,
                                symbol=f"s{i}", prime=17) for i in range(14)]
        program.emit(lir.L_BCONV, 0, tuple(sources), domain=lir.COEFF,
                     source_primes=(17,) * 14, target_prime=19, prime=19)
        with pytest.raises(VerificationError, match="at most 13"):
            verify_limb_program(program)
