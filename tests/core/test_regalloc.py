"""Unit tests for Belady's-MIN register allocation."""

import pytest

from repro.core.isa.instructions import LD, ST
from repro.core.isa.regalloc import AbstractInstruction, allocate_registers


def _op(defines=None, uses=(), opcode="vadd", **attrs):
    return AbstractInstruction(opcode, defines=defines, uses=tuple(uses),
                               attrs=attrs)


class TestBasicAllocation:
    def test_straight_line(self):
        entries = [
            _op(defines=0, opcode="ld", symbol="a"),
            _op(defines=1, opcode="ld", symbol="b"),
            _op(defines=2, uses=(0, 1)),
        ]
        out, stats = allocate_registers(entries, 16, {0: ("ld", "a"),
                                                      1: ("ld", "b")})
        assert len(out) == 3
        assert stats.spill_stores == 0
        assert stats.reloads == 0

    def test_registers_reused_after_death(self):
        entries = []
        symbols = {}
        for i in range(100):
            entries.append(_op(defines=i, opcode="ld", symbol=f"s{i}"))
            symbols[i] = ("ld", f"s{i}")
            if i > 0:
                entries.append(_op(defines=100 + i, uses=(i - 1, i)))
        out, stats = allocate_registers(entries, 16, symbols)
        regs = {ins.dest for ins in out if ins.dest is not None}
        assert max(regs) < 16
        assert stats.reloads == 0  # values die quickly; no pressure

    def test_too_few_registers_rejected(self):
        with pytest.raises(ValueError):
            allocate_registers([_op(defines=0, opcode="ld", symbol="x")],
                               4, {0: ("ld", "x")})


class TestSpilling:
    def _long_lived(self, count):
        """Many simultaneously-live loads, then uses in reverse order."""
        entries = []
        symbols = {}
        for i in range(count):
            entries.append(_op(defines=i, opcode="vntt", uses=()))
        # vntt without uses would be invalid; use computed chain instead.
        entries = []
        for i in range(count):
            entries.append(_op(defines=i, opcode="ld", symbol=f"v{i}"))
            symbols[i] = ("ld", f"v{i}")
        for i in range(count - 1, -1, -1):
            entries.append(_op(defines=count + i, uses=(i,)))
        return entries, symbols

    def test_rematerialization_for_loads(self):
        entries, symbols = self._long_lived(40)
        out, stats = allocate_registers(entries, 16, symbols)
        # Loaded values are rematerialized (re-loaded), never spill-stored.
        assert stats.reloads > 0
        assert stats.spill_stores == 0
        assert all(ins.opcode != ST for ins in out)

    def test_computed_values_spill(self):
        entries = [_op(defines=0, opcode="ld", symbol="x")]
        symbols = {0: ("ld", "x")}
        # Long chain of computed values, all used again at the end.
        n = 40
        for i in range(1, n):
            entries.append(_op(defines=i, uses=(i - 1,)))
        final_uses = tuple(range(n))
        for u in final_uses:
            entries.append(_op(defines=n + u, uses=(u,)))
        out, stats = allocate_registers(entries, 16, symbols)
        assert stats.spill_stores > 0
        assert any(ins.opcode == ST for ins in out)
        # Every spilled value gets reloaded before its later use.
        assert stats.reloads >= stats.spill_stores

    def test_belady_prefers_distant_values(self):
        """With pressure 1 over capacity, the evicted value must be the
        one used furthest in the future."""
        symbols = {i: ("ld", f"v{i}") for i in range(17)}
        entries = [_op(defines=i, opcode="ld", symbol=f"v{i}")
                   for i in range(17)]
        # v0 is used immediately; v16 is used last.
        entries.append(_op(defines=100, uses=(0, 1)))
        entries.append(_op(defines=101, uses=(16,)))
        out, stats = allocate_registers(entries, 16, symbols)
        reload_syms = [ins.attrs["symbol"] for ins in out
                       if ins.opcode == LD and
                       out.index(ins) > 16]
        # v0 must NOT be the reloaded one (it is needed right away).
        assert "v0" not in reload_syms

    def test_use_before_definition_rejected(self):
        with pytest.raises(RuntimeError):
            allocate_registers([_op(defines=1, uses=(0,))], 16, {})


class TestVprngRemat:
    def test_prng_values_rematerialize_as_vprng(self):
        symbols = {i: ("vprng", f"evk:{i}") for i in range(20)}
        entries = [_op(defines=i, opcode="vprng", symbol=f"evk:{i}")
                   for i in range(20)]
        for i in range(20):
            entries.append(_op(defines=50 + i, uses=(i,)))
        out, stats = allocate_registers(entries, 16, symbols)
        remats = [ins for ins in out[20:] if ins.opcode == "vprng"
                  and not ins.srcs]
        assert stats.reloads > 0
        assert any(ins.opcode == "vprng" for ins in out[20:])
        assert all(ins.opcode != LD for ins in out)  # regenerated, not loaded
