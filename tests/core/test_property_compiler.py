"""Differential testing: random DSL programs, emulator vs evaluator.

Hypothesis generates random (level-respecting) ciphertext programs; each is
(1) interpreted directly with the functional evaluator and (2) compiled to
the Cinnamon ISA and run on the emulator across 1-4 chips with random
keyswitch policies.  Decrypted outputs must agree — the strongest
end-to-end statement about compiler correctness this repository makes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.isa.emulator import emulate
from repro.fhe import CKKSContext, Evaluator, make_params

LEVELS = 6


@pytest.fixture(scope="module")
def env():
    params = make_params(ring_degree=64, levels=LEVELS, prime_bits=28,
                         num_digits=2)
    ctx = CKKSContext(params, seed=13)
    return params, ctx, Evaluator(ctx)


# One program "step" picks an operation and operand indices; operands are
# drawn modulo the current value-stack size at build time.
_STEP = st.tuples(
    st.sampled_from(["add", "sub", "mul", "rotate", "mulc", "addc", "neg"]),
    st.integers(0, 255),
    st.integers(0, 255),
    st.integers(-4, 8),
)


def _build(steps, num_inputs):
    """Build the DSL program and the parallel plaintext computation."""
    prog = CinnamonProgram("prop", level=LEVELS)
    handles = [prog.input(f"x{i}") for i in range(num_inputs)]

    def apply_step(op, i, j, k, values):
        a = values[i % len(values)]
        b = values[j % len(values)]
        if op == "add":
            return lambda h: h[i % len(h)] + h[j % len(h)], a + b
        if op == "sub":
            return lambda h: h[i % len(h)] - h[j % len(h)], a - b
        if op == "mul":
            return lambda h: h[i % len(h)] * h[j % len(h)], a * b
        if op == "rotate":
            r = k % 8
            return lambda h: h[i % len(h)].rotate(r), np.roll(a, -r)
        if op == "mulc":
            c = 0.25 * k
            return lambda h: h[i % len(h)] * c, a * c
        if op == "addc":
            c = 0.25 * k
            return lambda h: h[i % len(h)] + c, a + c
        if op == "neg":
            return lambda h: -h[i % len(h)], -a
        raise AssertionError(op)

    return prog, handles, apply_step


@given(
    steps=st.lists(_STEP, min_size=2, max_size=6),
    chips=st.integers(1, 4),
    policy=st.sampled_from(["cinnamon", "input_broadcast", "cifher"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=24, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_agree(env, steps, chips, policy, seed):
    params, ctx, _ = env
    rng = np.random.default_rng(seed)
    num_inputs = 2
    plain = [rng.uniform(-1, 1, params.slot_count) for _ in range(num_inputs)]

    prog, handles, apply_step = _build(steps, num_inputs)
    expected = list(plain)
    produced = 0
    for op, i, j, k in steps:
        builder, value = apply_step(op, i, j, k, expected)
        # Skip ops that would exhaust the budget.
        depth_cost = 1 if op in ("mul", "mulc") else 0
        operand_levels = [h.level for h in handles]
        if min(operand_levels[i % len(handles)],
               operand_levels[j % len(handles)]) - depth_cost < 2:
            continue
        handles.append(builder(handles))
        expected.append(value)
        produced += 1
    if produced == 0:
        handles.append(handles[0] + handles[1])
        expected.append(expected[0] + expected[1])
    prog.output("out", handles[-1])
    want = expected[-1]

    compiled = CinnamonCompiler(
        params, CompilerOptions(num_chips=chips, keyswitch_policy=policy)
    ).compile(prog)
    inputs = {f"x{i}": ctx.encrypt_values(v) for i, v in enumerate(plain)}
    outs = emulate(compiled, ctx, inputs)
    got = ctx.decrypt_values(outs["out"]).real
    # Values can grow through repeated adds; scale tolerance accordingly.
    tol = 1e-3 * max(1.0, np.max(np.abs(want)))
    assert np.max(np.abs(got - want)) < tol
