"""Tests for the IsaModule container and instruction representation."""

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.isa.instructions import COMPUTE, MEMORY, NETWORK, Instruction


class TestInstruction:
    def test_repr_with_symbol(self):
        ins = Instruction("ld", 3, (), {"symbol": "input:x:0:0"})
        text = repr(ins)
        assert "r3" in text and "input:x:0:0" in text

    def test_repr_compute(self):
        ins = Instruction("vadd", 2, (0, 1), {"prime": 17})
        assert repr(ins).startswith("vadd r2 <- r0,r1")

    def test_opcode_classes_disjoint(self):
        assert not set(COMPUTE) & set(MEMORY)
        assert not set(COMPUTE) & set(NETWORK)
        assert not set(MEMORY) & set(NETWORK)


class TestIsaModule:
    def test_counts(self, small_params):
        prog = CinnamonProgram("m", level=4)
        a = prog.input("a")
        prog.output("y", a + a)
        compiled = CinnamonCompiler(
            small_params, CompilerOptions(num_chips=2)).compile(prog)
        module = compiled.isa
        assert module.count("ld") > 0
        assert module.count("vadd") == 8  # one add per limb, x2 polys
        assert module.instruction_count == sum(
            len(module[c]) for c in module)

    def test_alloc_stats_per_chip(self, small_params):
        prog = CinnamonProgram("m2", level=4)
        a = prog.input("a")
        prog.output("y", a * a)
        compiled = CinnamonCompiler(
            small_params, CompilerOptions(num_chips=2)).compile(prog)
        assert set(compiled.isa.alloc_stats) == {0, 1}
        for stats in compiled.isa.alloc_stats.values():
            assert stats.peak_registers >= 0
