"""Emulator validation: compiled ISA reproduces evaluator semantics.

This is the paper's own correctness methodology (Section 6.2): run every
compiled program on a functional CPU emulator of the Cinnamon ISA and
check the decrypted outputs.
"""

import numpy as np
import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.dsl import StreamPool
from repro.core.isa.emulator import build_memory_image, emulate, IsaEmulator
from repro.fhe import CKKSContext, make_params

TOL = 1e-3


@pytest.fixture(scope="module")
def env():
    params = make_params(ring_degree=128, levels=6, prime_bits=28,
                         num_digits=2)
    return params, CKKSContext(params, seed=77)


def _run(env, build, inputs, plaintexts=None, chips=2, **opts):
    params, ctx = env
    prog = build()
    compiled = CinnamonCompiler(
        params, CompilerOptions(num_chips=chips, **opts)).compile(prog)
    bound = {name: ctx.encrypt_values(vec) for name, vec in inputs.items()}
    outs = emulate(compiled, ctx, bound, plaintexts)
    return {name: ctx.decrypt_values(ct) for name, ct in outs.items()}


class TestArithmetic:
    def test_add_mul_chain(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("chain", level=6)
            a, b = prog.input("a"), prog.input("b")
            prog.output("y", (a + b) * (a - b))
            return prog

        out = _run(env, build, {"a": za, "b": zb})
        assert np.max(np.abs(out["y"].real - (za + zb) * (za - zb))) < TOL

    def test_scalar_and_plain_ops(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)
        w = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("plain", level=6)
            a = prog.input("a")
            y = a * prog.plaintext("w") + 0.25
            prog.output("y", y * 2.0)
            return prog

        out = _run(env, build, {"a": za}, plaintexts={"w": w})
        assert np.max(np.abs(out["y"].real - 2 * (za * w + 0.25))) < TOL

    def test_negate(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("neg", level=6)
            prog.output("y", -prog.input("a"))
            return prog

        out = _run(env, build, {"a": za})
        assert np.max(np.abs(out["y"].real + za)) < TOL


class TestRotations:
    @pytest.mark.parametrize("policy", ["cinnamon", "input_broadcast", "cifher"])
    def test_rotation_policies(self, env, rng, policy):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("rot", level=6)
            a = prog.input("a")
            prog.output("y", a.rotate(3))
            return prog

        out = _run(env, build, {"a": za}, chips=4, keyswitch_policy=policy)
        assert np.max(np.abs(out["y"].real - np.roll(za, -3))) < TOL

    def test_hoisted_batch(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("hoist", level=6)
            a, b = prog.input("a"), prog.input("b")
            terms = [a.rotate(i) * b for i in (1, 2, 5)]
            prog.output("y", (terms[0] + terms[1]) + terms[2])
            return prog

        out = _run(env, build, {"a": za, "b": zb}, chips=4)
        expect = sum(np.roll(za, -i) * zb for i in (1, 2, 5))
        assert np.max(np.abs(out["y"].real - expect)) < TOL

    def test_rotate_sum_fusion(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("rs", level=6)
            a, b = prog.input("a"), prog.input("b")
            c = a * b
            prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(4))
            return prog

        out = _run(env, build, {"a": za, "b": zb}, chips=4)
        zc = za * zb
        expect = np.roll(zc, -1) + np.roll(zc, -2) + np.roll(zc, -4)
        assert np.max(np.abs(out["y"].real - expect)) < TOL

    def test_conjugate(self, env, rng):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count) \
            + 1j * rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("conj", level=6)
            prog.output("y", prog.input("a").conjugate())
            return prog

        out = _run(env, build, {"a": za})
        assert np.max(np.abs(out["y"] - np.conj(za))) < TOL


class TestParallelMachines:
    @pytest.mark.parametrize("chips", [1, 2, 3, 4])
    def test_chip_counts_agree(self, env, rng, chips):
        params, ctx = env
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)

        def build():
            prog = CinnamonProgram("n", level=6)
            a, b = prog.input("a"), prog.input("b")
            prog.output("y", (a * b).rotate(2) + a)
            return prog

        out = _run(env, build, {"a": za, "b": zb}, chips=chips)
        expect = np.roll(za * zb, -2) + za
        assert np.max(np.abs(out["y"].real - expect)) < TOL

    def test_streams_independent(self, env, rng):
        params, ctx = env
        vals = {f"x{s}": rng.uniform(-1, 1, params.slot_count)
                for s in range(2)}

        def build():
            prog = CinnamonProgram("st", level=6)

            def fn(sid):
                x = prog.input(f"x{sid}")
                prog.output(f"y{sid}", (x * x).rotate(1))

            StreamPool(prog, 2, fn)
            return prog

        out = _run(env, build, vals, chips=4)
        for s in range(2):
            v = vals[f"x{s}"]
            assert np.max(np.abs(out[f"y{s}"].real
                                 - np.roll(v * v, -1))) < TOL


class TestMemoryImage:
    def test_missing_input_raises(self, env):
        params, ctx = env
        prog = CinnamonProgram("m", level=6)
        prog.output("y", prog.input("a") * 1.0)
        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=1)).compile(prog)
        with pytest.raises(KeyError):
            build_memory_image(compiled, ctx, {})

    def test_missing_plaintext_raises(self, env):
        params, ctx = env
        prog = CinnamonProgram("m2", level=6)
        a = prog.input("a")
        prog.output("y", a * prog.plaintext("w"))
        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=1)).compile(prog)
        with pytest.raises(KeyError):
            build_memory_image(compiled, ctx,
                               {"a": ctx.encrypt_values([1.0])})

    def test_unknown_output_raises(self, env):
        params, ctx = env
        prog = CinnamonProgram("m3", level=6)
        prog.output("y", prog.input("a") * 1.0)
        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=1)).compile(prog)
        memory = build_memory_image(
            compiled, ctx, {"a": ctx.encrypt_values([1.0])})
        emulator = IsaEmulator(compiled, memory)
        emulator.run()
        with pytest.raises(KeyError):
            emulator.output_ciphertext("nope", params)
