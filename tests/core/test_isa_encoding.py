"""Tests for ISA assembly text round-tripping."""

import numpy as np
import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.isa.emulator import IsaEmulator, build_memory_image
from repro.core.isa.encoding import assemble, disassemble
from repro.fhe import CKKSContext, make_params


@pytest.fixture(scope="module")
def compiled_env():
    params = make_params(ring_degree=64, levels=5, prime_bits=28, num_digits=2)
    ctx = CKKSContext(params, seed=21)
    prog = CinnamonProgram("asm", level=5)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", (a * b).rotate(1))
    compiled = CinnamonCompiler(params, CompilerOptions(num_chips=2)).compile(prog)
    return params, ctx, compiled


class TestRoundTrip:
    def test_disassemble_structure(self, compiled_env):
        _, _, compiled = compiled_env
        text = disassemble(compiled.isa)
        assert ".chip 0" in text and ".chip 1" in text
        assert "vntt" in text and "vbcv" in text and "col" in text

    def test_reassembled_counts_match(self, compiled_env):
        _, _, compiled = compiled_env
        module = assemble(disassemble(compiled.isa))
        assert module.instruction_count == compiled.isa.instruction_count
        for chip in compiled.isa.streams:
            originals = compiled.isa.streams[chip]
            parsed = module.streams[chip]
            for orig, back in zip(originals, parsed):
                assert orig.opcode == back.opcode
                assert orig.dest == back.dest
                assert tuple(orig.srcs) == tuple(back.srcs)

    def test_reassembled_module_emulates_identically(self, compiled_env):
        params, ctx, compiled = compiled_env
        rng = np.random.default_rng(5)
        za = rng.uniform(-1, 1, params.slot_count)
        zb = rng.uniform(-1, 1, params.slot_count)
        inputs = {"a": ctx.encrypt_values(za), "b": ctx.encrypt_values(zb)}

        memory = build_memory_image(compiled, ctx, inputs)
        IsaEmulator(compiled, memory).run()
        direct = memory[f"output:y:0:0"].copy()

        compiled.isa = assemble(disassemble(compiled.isa))
        memory2 = build_memory_image(compiled, ctx, inputs)
        IsaEmulator(compiled, memory2).run()
        assert np.array_equal(direct, memory2["output:y:0:0"])

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            assemble("vadd r1 r2 r3\n")  # no .chip directive
