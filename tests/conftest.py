"""Shared fixtures: small CKKS contexts reused across the test suite.

Parameter generation and key generation dominate test time, so contexts are
session-scoped.  Tests must not mutate them.
"""

import numpy as np
import pytest

from repro.fhe import CKKSContext, Evaluator, make_params


@pytest.fixture(scope="session")
def small_params():
    """N=256, 8 levels: fast enough for per-test use."""
    return make_params(ring_degree=256, levels=8, prime_bits=28, num_digits=3)


@pytest.fixture(scope="session")
def small_context(small_params):
    return CKKSContext(small_params, seed=1234)


@pytest.fixture(scope="session")
def small_evaluator(small_context):
    return Evaluator(small_context)


@pytest.fixture(scope="session")
def deep_params():
    """N=256, 14 levels: for polynomial-evaluation depth tests."""
    return make_params(ring_degree=256, levels=14, prime_bits=28, num_digits=3)


@pytest.fixture(scope="session")
def deep_context(deep_params):
    return CKKSContext(deep_params, seed=99)


@pytest.fixture(scope="session")
def deep_evaluator(deep_context):
    return Evaluator(deep_context)


@pytest.fixture
def rng():
    return np.random.default_rng(2025)


def random_slots(rng, count, complex_values=False):
    real = rng.uniform(-1.0, 1.0, count)
    if not complex_values:
        return real
    return real + 1j * rng.uniform(-1.0, 1.0, count)
