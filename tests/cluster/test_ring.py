"""Consistent-hash ring: balance, minimal remapping, failover order."""

from repro.cluster.ring import DEFAULT_VNODES, HashRing, _hash64

WORKERS_8 = [f"w{i}" for i in range(8)]
KEYS = [f"fingerprint-{i:05d}" for i in range(20000)]


class TestBalance:
    def test_spread_within_20pct_across_8_workers(self):
        ring = HashRing(WORKERS_8)
        counts = ring.spread(KEYS)
        expected = len(KEYS) / len(WORKERS_8)
        assert set(counts) == set(WORKERS_8)
        for worker, count in counts.items():
            assert abs(count - expected) / expected <= 0.20, (
                f"{worker} owns {count} keys, expected {expected:.0f}"
                f" +/- 20%")

    def test_every_key_owned(self):
        ring = HashRing(WORKERS_8)
        assert sum(ring.spread(KEYS).values()) == len(KEYS)

    def test_more_vnodes_tighter_balance(self):
        def imbalance(vnodes):
            ring = HashRing(WORKERS_8, vnodes=vnodes)
            counts = ring.spread(KEYS)
            expected = len(KEYS) / len(WORKERS_8)
            return max(abs(c - expected) / expected
                       for c in counts.values())

        assert imbalance(192) < imbalance(8)


class TestRemap:
    def test_join_remaps_at_most_1_over_n(self):
        ring = HashRing(WORKERS_8)
        before = {key: ring.owner(key) for key in KEYS}
        ring.add("w8")
        moved = sum(1 for key in KEYS if ring.owner(key) != before[key])
        # Ideal is 1/9 of the key space; 1.2/9 allows vnode variance.
        assert moved / len(KEYS) <= 1.2 / 9
        # Every moved key moved TO the joiner, never between incumbents.
        for key in KEYS:
            owner = ring.owner(key)
            assert owner == before[key] or owner == "w8"

    def test_leave_remaps_at_most_1_over_n(self):
        ring = HashRing(WORKERS_8)
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("w3")
        moved = sum(1 for key in KEYS if ring.owner(key) != before[key])
        assert moved / len(KEYS) <= 1.2 / 8
        # Only w3's keys moved.
        for key in KEYS:
            if before[key] != "w3":
                assert ring.owner(key) == before[key]

    def test_remove_then_add_restores_mapping(self):
        ring = HashRing(WORKERS_8)
        before = {key: ring.owner(key) for key in KEYS[:500]}
        ring.remove("w5")
        ring.add("w5")
        assert {key: ring.owner(key) for key in KEYS[:500]} == before


class TestFailoverOrder:
    def test_preferred_starts_with_owner(self):
        ring = HashRing(WORKERS_8)
        for key in KEYS[:100]:
            order = ring.preferred(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == sorted(WORKERS_8)  # all, distinct

    def test_preferred_n_limits(self):
        ring = HashRing(WORKERS_8)
        assert len(ring.preferred("k", n=3)) == 3

    def test_preferred_is_stable_under_unrelated_leave(self):
        """Failover target for a key is the next worker in ring order,
        which does not change when a worker later in the order leaves."""
        ring = HashRing(WORKERS_8)
        key = KEYS[0]
        primary, secondary = ring.preferred(key, n=2)
        victim = next(w for w in WORKERS_8
                      if w not in (primary, secondary))
        ring.remove(victim)
        assert ring.preferred(key, n=2) == [primary, secondary]

    def test_failover_owner_is_old_secondary(self):
        ring = HashRing(WORKERS_8)
        key = KEYS[1]
        primary, secondary = ring.preferred(key, n=2)
        ring.remove(primary)
        assert ring.owner(key) == secondary


class TestBasics:
    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("k") is None
        assert ring.preferred("k") == []
        assert len(ring) == 0

    def test_contains_and_workers(self):
        ring = HashRing(["b", "a"])
        assert "a" in ring and "c" not in ring
        assert ring.workers == ["a", "b"]

    def test_add_idempotent(self):
        ring = HashRing(["a"])
        points = len(ring._points)
        ring.add("a")
        assert len(ring._points) == points

    def test_remove_unknown_is_noop(self):
        ring = HashRing(["a"])
        ring.remove("zz")
        assert "a" in ring

    def test_default_vnodes(self):
        ring = HashRing(["a"])
        assert len(ring._workers["a"]) == DEFAULT_VNODES

    def test_hash64_is_deterministic(self):
        assert _hash64("x") == _hash64("x")
        assert _hash64("x") != _hash64("y")
        assert 0 <= _hash64("x") < 2 ** 64
