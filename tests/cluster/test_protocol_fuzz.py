"""Fuzz the CNC1 wire framing with malformed frames.

Every corruption must surface as a *typed* error (:class:`ProtocolError`
/ :class:`ConnectionClosed` / :class:`FrameTimeout`) — never a hang,
never an unpickle of untrusted bytes, never a stray KeyError/struct.error
escaping the protocol layer."""

import json
import random
import socket
import struct
import threading
import zlib

import pytest

from repro.cluster.protocol import (MAGIC, MAX_BLOB_BYTES,
                                    MAX_HEADER_BYTES, ConnectionClosed,
                                    FrameTimeout, ProtocolError,
                                    frame_auth, recv_frame, send_frame)

#: Every fuzz read is bounded: a hang is a test failure, not a CI stall.
READ_TIMEOUT_S = 2.0

_U32 = struct.Struct(">I")


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    right.settimeout(READ_TIMEOUT_S)
    yield left, right
    left.close()
    right.close()


def raw_frame(header: dict, blob: bytes = b"") -> bytes:
    if blob:
        header = dict(header, crc32=zlib.crc32(blob) & 0xFFFFFFFF)
    header_bytes = json.dumps(header, separators=(",", ":"),
                              sort_keys=True).encode()
    return b"".join((MAGIC, _U32.pack(len(header_bytes)), header_bytes,
                     _U32.pack(len(blob)), blob))


def deliver(sock, data: bytes):
    sock.sendall(data)
    sock.shutdown(socket.SHUT_WR)


class TestMalformedFrames:
    def test_bad_magic(self, pair):
        left, right = pair
        deliver(left, b"EVIL" + b"\x00" * 64)
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(right)

    def test_header_length_bomb(self, pair):
        """A corrupt length prefix must not trigger a giant allocation."""
        left, right = pair
        deliver(left, MAGIC + _U32.pack(MAX_HEADER_BYTES + 1))
        with pytest.raises(ProtocolError, match="header length"):
            recv_frame(right)

    def test_blob_length_bomb(self, pair):
        left, right = pair
        header = json.dumps({"kind": "ping"}).encode()
        deliver(left, MAGIC + _U32.pack(len(header)) + header
                + _U32.pack(MAX_BLOB_BYTES + 1))
        with pytest.raises(ProtocolError, match="blob length"):
            recv_frame(right)

    def test_unparseable_header_json(self, pair):
        left, right = pair
        garbage = b"{not json!!"
        deliver(left, MAGIC + _U32.pack(len(garbage)) + garbage)
        with pytest.raises(ProtocolError, match="unparseable"):
            recv_frame(right)

    def test_header_without_kind(self, pair):
        left, right = pair
        deliver(left, raw_frame({"request_id": "r1"}))
        with pytest.raises(ProtocolError, match="kind"):
            recv_frame(right)

    def test_header_not_a_dict(self, pair):
        left, right = pair
        header = json.dumps(["submit"]).encode()
        deliver(left, MAGIC + _U32.pack(len(header)) + header
                + _U32.pack(0))
        with pytest.raises(ProtocolError, match="kind"):
            recv_frame(right)

    def test_blob_crc_mismatch(self, pair):
        left, right = pair
        frame = bytearray(raw_frame({"kind": "result"}, b"p" * 256))
        frame[-10] ^= 0xFF  # flip a blob byte after the CRC was computed
        deliver(left, bytes(frame))
        with pytest.raises(ProtocolError, match="crc"):
            recv_frame(right)

    def test_truncated_everywhere(self, pair):
        """Cutting the stream at any byte offset is a typed error."""
        frame = raw_frame({"kind": "submit", "request_id": "r1"},
                          b"payload-bytes")
        for cut in range(len(frame)):
            left, right = socket.socketpair()
            right.settimeout(READ_TIMEOUT_S)
            try:
                deliver(left, frame[:cut])
                with pytest.raises((ProtocolError, ConnectionClosed)):
                    recv_frame(right)
            finally:
                left.close()
                right.close()

    def test_random_bitflips_never_hang_or_leak(self, pair):
        """Seeded random single-bit corruption across whole frames.  A
        blob flip is a CRC mismatch; header flips are magic/length/JSON
        errors.  A flip that happens to keep the frame well-formed (e.g.
        inside an unchecked header value) may legally still parse —
        accept that too, but never a hang and never a raw
        struct/json/KeyError escaping the protocol layer."""
        rng = random.Random(20250808)
        base = raw_frame({"kind": "submit", "request_id": "q", "seq": 4},
                         b"x" * 128)
        for _ in range(200):
            corrupted = bytearray(base)
            corrupted[rng.randrange(len(base))] ^= 1 << rng.randrange(8)
            left, right = socket.socketpair()
            right.settimeout(READ_TIMEOUT_S)
            try:
                deliver(left, bytes(corrupted))
                try:
                    header, blob = recv_frame(right)
                except (ProtocolError, ConnectionClosed):
                    continue  # typed rejection: the contract held
                # Parsed despite the flip: framing invariants must hold.
                assert isinstance(header, dict) and "kind" in header
                assert len(blob) == 128
            finally:
                left.close()
                right.close()


class TestTimeouts:
    def test_timeout_between_frames_is_clean(self, pair):
        """No bytes on the wire -> FrameTimeout: the stream is still in
        sync and the caller may retry on the same socket."""
        left, right = pair
        right.settimeout(0.1)
        with pytest.raises(FrameTimeout):
            recv_frame(right)
        # The boundary really was clean: a full frame sent afterwards is
        # received intact on the same socket.
        send_frame(left, {"kind": "ping"})
        header, _ = recv_frame(right)
        assert header["kind"] == "ping"

    def test_timeout_mid_frame_is_desync(self, pair):
        left, right = pair
        right.settimeout(0.1)
        left.sendall(MAGIC + _U32.pack(64))  # promises 64 header bytes...
        with pytest.raises(ProtocolError, match="mid-frame") as info:
            recv_frame(right)
        assert not isinstance(info.value, FrameTimeout)


class TestFrameAuth:
    def test_authenticated_roundtrip(self, pair):
        left, right = pair
        send_frame(left, {"kind": "hello", "worker_id": "w0"},
                   b"blob", token="secret")
        header, blob = recv_frame(right, token="secret")
        assert header["kind"] == "hello" and blob == b"blob"

    def test_tampered_header_field_rejected(self, pair):
        left, right = pair
        header = {"kind": "submit", "tenant": "alice"}
        blob = b"payload"
        header["crc32"] = zlib.crc32(blob) & 0xFFFFFFFF
        header["auth"] = frame_auth(header, blob, "secret")
        header["tenant"] = "mallory"  # tamper after signing
        header_bytes = json.dumps(header, separators=(",", ":"),
                                  sort_keys=True).encode()
        deliver(left, MAGIC + _U32.pack(len(header_bytes)) + header_bytes
                + _U32.pack(len(blob)) + blob)
        with pytest.raises(ProtocolError, match="auth"):
            recv_frame(right, token="secret")

    def test_wrong_token_rejected(self, pair):
        left, right = pair
        send_frame(left, {"kind": "stats"}, token="token-a")
        with pytest.raises(ProtocolError, match="auth"):
            recv_frame(right, token="token-b")

    def test_unauthenticated_frame_still_passes(self, pair):
        """Back-compat: verify-when-present — a frame without ``auth``
        is accepted even when the receiver holds a token."""
        left, right = pair
        send_frame(left, {"kind": "pong"})
        header, _ = recv_frame(right, token="secret")
        assert header["kind"] == "pong"


class TestCleanClose:
    def test_eof_between_frames(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_flood_of_garbage_then_close(self, pair):
        """A peer spraying random bytes is rejected promptly; the reader
        thread exits instead of spinning or hanging."""
        left, right = pair
        rng = random.Random(7)
        outcome = []

        def reader():
            try:
                recv_frame(right)
                outcome.append("frame")
            except (ProtocolError, ConnectionClosed) as exc:
                outcome.append(type(exc).__name__)

        thread = threading.Thread(target=reader)
        thread.start()
        deliver(left, bytes(rng.randrange(256) for _ in range(4096)))
        thread.join(timeout=READ_TIMEOUT_S + 2)
        assert not thread.is_alive(), "reader hung on garbage stream"
        assert outcome and outcome[0] != "frame"
