"""Token buckets, tenant quotas, and fair-share admission."""

import threading

import pytest

from repro.cluster.quotas import (Empty, FairShareQueue,
                                  QueueClosedError, QueueSaturatedError,
                                  QuotaExceededError, TenantQuota,
                                  TokenBucket)
from repro.serve import InferenceRequest
from repro.serve.request import Priority


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def req(tenant="default", priority=Priority.NORMAL, name=None):
    return InferenceRequest(program=object(), params=object(),
                            tenant=tenant, priority=priority, name=name)


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        bucket.try_acquire(2)
        assert not bucket.try_acquire()
        clock.advance(0.5)        # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2, clock=clock)
        clock.advance(100)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after_s() == pytest.approx(0.5)
        assert TokenBucket(1, 1).retry_after_s() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)


class TestQuotaEnforcement:
    def test_tenant_over_quota_rejected_others_fine(self):
        clock = FakeClock()
        queue = FairShareQueue(
            quotas={"noisy": TenantQuota(rate_per_s=1, burst=2)},
            clock=clock)
        queue.put(req("noisy"))
        queue.put(req("noisy"))
        with pytest.raises(QuotaExceededError) as info:
            queue.put(req("noisy"))
        assert info.value.tenant == "noisy"
        assert info.value.retry_after_s > 0
        for _ in range(10):     # unquota'd tenant is unaffected
            queue.put(req("quiet"))
        assert queue.rejected_quota == 1

    def test_default_quota_applies_to_unknown_tenants(self):
        clock = FakeClock()
        queue = FairShareQueue(
            default_quota=TenantQuota(rate_per_s=1, burst=1), clock=clock)
        queue.put(req("anyone"))
        with pytest.raises(QuotaExceededError):
            queue.put(req("anyone"))
        clock.advance(1.0)
        queue.put(req("anyone"))

    def test_set_quota_at_runtime(self):
        clock = FakeClock()
        queue = FairShareQueue(clock=clock)
        queue.put(req("t"))      # unquota'd: unlimited
        queue.set_quota("t", TenantQuota(rate_per_s=1, burst=1))
        queue.put(req("t"))
        with pytest.raises(QuotaExceededError):
            queue.put(req("t"))

    def test_force_bypasses_quota_and_close(self):
        clock = FakeClock()
        queue = FairShareQueue(
            quotas={"t": TenantQuota(rate_per_s=1, burst=1)}, clock=clock)
        queue.put(req("t"))
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(req("t"))
        queue.put(req("t"), force=True)      # failover requeue path
        assert queue.depth() == 2


class TestFairShare:
    def test_round_robin_across_tenants(self):
        queue = FairShareQueue()
        for i in range(3):
            queue.put(req("a", name=f"a{i}"))
        queue.put(req("b", name="b0"))
        order = [queue.get(timeout=0).tenant for _ in range(4)]
        # b's single request is served before a's backlog drains.
        assert order.index("b") <= 1
        assert order.count("a") == 3

    def test_priority_within_tenant(self):
        queue = FairShareQueue()
        queue.put(req("a", Priority.LOW, name="low"))
        queue.put(req("a", Priority.HIGH, name="high"))
        assert queue.get(timeout=0).name == "high"

    def test_fifo_within_priority(self):
        queue = FairShareQueue()
        for i in range(3):
            queue.put(req("a", name=f"r{i}"))
        assert [queue.get(timeout=0).name for _ in range(3)] == [
            "r0", "r1", "r2"]

    def test_depth_by_tenant(self):
        queue = FairShareQueue()
        queue.put(req("a"))
        queue.put(req("a"))
        queue.put(req("b"))
        assert queue.depth_by_tenant() == {"a": 2, "b": 1}
        assert queue.depth() == len(queue) == 3


class TestQueueContract:
    """Same semantics as the serve-layer AdmissionQueue."""

    def test_saturation(self):
        queue = FairShareQueue(maxsize=2)
        queue.put(req())
        queue.put(req())
        with pytest.raises(QueueSaturatedError):
            queue.put(req())
        assert queue.rejected_saturated == 1
        queue.put(req(), force=True)         # requeue ignores the bound

    def test_get_timeout_raises_empty(self):
        with pytest.raises(Empty):
            FairShareQueue().get(timeout=0.01)

    def test_closed_queue_drains_then_empty(self):
        queue = FairShareQueue()
        queue.put(req(name="last"))
        queue.close()
        assert queue.closed
        assert queue.get(timeout=0).name == "last"
        with pytest.raises(Empty):
            queue.get(timeout=5)             # immediate, no wait

    def test_get_wakes_on_put(self):
        queue = FairShareQueue()
        got = []

        def consumer():
            got.append(queue.get(timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put(req(name="x"))
        thread.join(timeout=5)
        assert got and got[0].name == "x"
