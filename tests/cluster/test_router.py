"""ClusterRouter end-to-end: real worker processes over the socket
protocol.  One shared 2-worker cluster serves most tests (spawning
interpreters is the expensive part); the kill test restores the fleet
before handing the cluster back.
"""

import time

import pytest

from repro import obs
from repro.cluster import ClusterRouter, QuotaExceededError, TenantQuota
from repro.cluster.merge import merged_scalar
from repro.obs.analyze import check
from repro.serve.server import ServerClosedError

from .conftest import make_request

RESULT_TIMEOUT_S = 120.0


@pytest.fixture(scope="module")
def cluster():
    obs.enable()
    router = ClusterRouter(
        num_workers=2,
        quotas={"limited": TenantQuota(rate_per_s=0.001, burst=2)},
        heartbeat_s=0.2)
    router.start()
    assert router.wait_ready(timeout=60), "workers failed to connect"
    yield router
    router.shutdown(drain=False)
    obs.disable()


def submit_and_wait(cluster, requests):
    handles = [cluster.submit(r) for r in requests]
    return [h.result(timeout=RESULT_TIMEOUT_S) for h in handles]


class TestRoundTrip:
    def test_requests_resolve_ok_across_workers(self, cluster):
        results = submit_and_wait(cluster, [
            make_request(name=f"rt-{i}", rotation=i % 4)
            for i in range(12)
        ])
        assert all(r.ok for r in results), [r.error for r in results]
        assert all(r.cycles and r.cycles > 0 for r in results)
        assert {r.shard for r in results} == {0, 1}  # both workers served

    def test_fingerprint_affinity(self, cluster):
        """Repeats of one program always land on its ring owner."""
        results = submit_and_wait(cluster, [
            make_request(name=f"aff-{i}", rotation=7) for i in range(6)
        ])
        assert len({r.shard for r in results}) == 1
        assert {r.cache for r in results[1:]} <= {"memory", "disk"}

    def test_submit_many_preserves_order(self, cluster):
        requests = [make_request(name=f"many-{i}", rotation=i % 3)
                    for i in range(4)]
        handles = cluster.submit_many(requests)
        results = [h.result(timeout=RESULT_TIMEOUT_S) for h in handles]
        assert [r.request_id for r in results] == [
            r.request_id for r in requests]


class TestObservability:
    def test_merged_journal_is_end_to_end(self, cluster):
        submit_and_wait(cluster, [
            make_request(name=f"obs-{i}", rotation=10 + i)
            for i in range(3)
        ])
        document = cluster.trace()
        assert document["schema"] >= 6
        rows = document["jobs"]
        kinds = {row["kind"] for row in rows}
        assert {"serve", "compile", "simulate", "cluster"} <= kinds
        # Worker-side rows carry their origin; router-side serve rows
        # join them on the same trace ids — the obs invariants hold
        # across the process boundary.
        assert any(row.get("worker") for row in rows
                   if row["kind"] == "compile")
        assert check(document) == []

    def test_cluster_events_recorded(self, cluster):
        events = {row["event"] for row in cluster.trace()["jobs"]
                  if row["kind"] == "cluster"}
        assert "worker_spawned" in events

    def test_metrics_snapshot_merges_router_and_workers(self, cluster):
        results = submit_and_wait(
            cluster, [make_request(name="m-0", rotation=2)])
        assert results[0].ok
        snapshot = cluster.metrics_snapshot()
        assert merged_scalar(snapshot, "serve_requests_total",
                             {"status": "ok"}) >= 1
        assert merged_scalar(snapshot, "cluster_workers") >= 2
        # Worker-process-side counter, visible only through the merge:
        assert merged_scalar(snapshot,
                             "cluster_worker_submits_total") >= 1

    def test_cache_stats_aggregate_workers(self, cluster):
        submit_and_wait(cluster, [make_request(name="c-0", rotation=3),
                                  make_request(name="c-1", rotation=3)])
        totals = cluster.cache_stats()
        assert totals.get("misses", 0) + totals.get("memory_hits", 0) > 0


class TestQuotas:
    def test_tenant_over_quota_rejected_at_submit(self, cluster):
        first = cluster.submit(
            make_request(name="q-0", rotation=4, tenant="limited"))
        second = cluster.submit(
            make_request(name="q-1", rotation=4, tenant="limited"))
        with pytest.raises(QuotaExceededError) as info:
            cluster.submit(
                make_request(name="q-2", rotation=4, tenant="limited"))
        assert info.value.tenant == "limited"
        assert first.result(timeout=RESULT_TIMEOUT_S).ok
        assert second.result(timeout=RESULT_TIMEOUT_S).ok

    def test_other_tenants_unaffected(self, cluster):
        results = submit_and_wait(cluster, [
            make_request(name=f"qa-{i}", rotation=5, tenant=f"t{i}")
            for i in range(4)
        ])
        assert all(r.ok for r in results)


class TestFailover:
    def test_sigkill_mid_run_loses_zero_requests(self, cluster):
        """The acceptance scenario: SIGKILL a worker while its queue is
        full of dispatched requests; every request still resolves OK and
        the recovery is visible as traced cluster events."""
        deaths_before = merged_scalar(cluster.metrics.snapshot(),
                                      "cluster_worker_deaths_total")
        handles = [cluster.submit(make_request(
            name=f"kill-{i}", rotation=20 + i)) for i in range(10)]
        victim = cluster.kill_worker()
        assert victim is not None
        results = [h.result(timeout=RESULT_TIMEOUT_S) for h in handles]
        assert all(r.ok for r in results), [
            (r.name, r.status.value, r.error) for r in results
            if not r.ok]
        snapshot = cluster.metrics.snapshot()
        assert merged_scalar(snapshot, "cluster_worker_deaths_total") \
            == deaths_before + 1
        events = [row for row in cluster.trace()["jobs"]
                  if row["kind"] == "cluster"]
        assert any(e["event"] == "worker_lost"
                   and e["worker"] == victim for e in events)
        # The monitor respawns a replacement up to the target.
        assert cluster.wait_ready(count=2, timeout=60)

    def test_replacement_serves_after_failover(self, cluster):
        results = submit_and_wait(cluster, [
            make_request(name=f"after-{i}", rotation=i % 4)
            for i in range(6)
        ])
        assert all(r.ok for r in results)
        assert {r.shard for r in results if r.shard is not None}


class TestLifecycle:
    def test_drain_waits_and_closes_admission(self):
        router = ClusterRouter(num_workers=1)
        with router:
            assert router.wait_ready(timeout=60)
            handle = router.submit(make_request(name="d-0", rotation=1))
            assert router.drain(timeout=RESULT_TIMEOUT_S)
            assert handle.result(timeout=1).ok
            with pytest.raises(ServerClosedError):
                router.submit(make_request(name="d-1"))

    def test_autoscaler_spawns_under_backlog(self):
        from repro.cluster import Autoscaler

        router = ClusterRouter(
            num_workers=1, autoscale=True,
            autoscaler=Autoscaler(min_workers=1, max_workers=2,
                                  scale_up_backlog=1.0,
                                  scale_down_ticks=10 ** 6),
            heartbeat_s=0.1)
        with router:
            assert router.wait_ready(count=1, timeout=60)
            handles = [router.submit(make_request(
                name=f"as-{i}", rotation=30 + i)) for i in range(16)]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if router.num_workers >= 2:
                    break
                time.sleep(0.05)
            assert router.num_workers >= 2, "no scale-up under backlog"
            results = [h.result(timeout=RESULT_TIMEOUT_S)
                       for h in handles]
            assert all(r.ok for r in results)
            events = {row["event"] for row in router.trace()["jobs"]
                      if row["kind"] == "cluster"}
            assert "scale_up" in events
