"""Trust layer end to end in the cluster: router admission (stale keys,
replays), key-manifest replication to workers, worker-side re-checks,
and the bounded-read liveness/reconnect machinery."""

import pickle
import socket
import threading
import time

import pytest

from repro.cluster.protocol import recv_frame
from repro.cluster.router import ClusterRouter
from repro.cluster.worker import ClusterWorker
from repro.trust.errors import (ReplayError, StaleKeyError,
                                StaleRequestError, UnknownKeyError)
from repro.trust.freshness import EnvelopeMinter, FreshnessEnvelope
from repro.trust.keyvault import KeyVault

from .conftest import make_request


@pytest.fixture
def router():
    """Admission-only router: no worker processes, so requests queue but
    never execute — exactly what admission rejection tests need."""
    vault = KeyVault(grace_versions=0)
    vault.issue("default")
    r = ClusterRouter(num_workers=1, spawn_workers=False, disk_cache=False,
                      keyvault=vault)
    r.start()
    yield r
    r.shutdown(drain=False)


class TestRouterAdmission:
    def test_valid_key_version_admits(self, router):
        handle = router.submit(make_request(key_version=1))
        assert handle is not None

    def test_revoked_key_version_rejected(self, router):
        router.keyvault.rotate("default")
        router.keyvault.revoke("default", 1)
        with pytest.raises(StaleKeyError):
            router.submit(make_request(key_version=1))
        counters = router._trust_rejected_total
        assert counters["stale-key"].value == 1

    def test_retired_key_version_rejected_without_grace(self, router):
        router.keyvault.rotate("default")
        with pytest.raises(StaleKeyError):
            router.submit(make_request(key_version=1))

    def test_unknown_tenant_rejected(self, router):
        with pytest.raises(UnknownKeyError):
            router.submit(make_request(tenant="never-issued"))

    def test_replayed_envelope_rejected(self, router):
        env = EnvelopeMinter(sender="client").mint()
        router.submit(make_request(name="probe", envelope=env))
        with pytest.raises(ReplayError):
            router.submit(make_request(name="replay", envelope=env))
        assert router._trust_rejected_total["replay"].value == 1

    def test_stale_envelope_rejected(self, router):
        env = FreshnessEnvelope(nonce="old", issued_unix=time.time() - 900,
                                seq=1, sender="client")
        with pytest.raises(StaleRequestError):
            router.submit(make_request(envelope=env))
        assert router._trust_rejected_total["stale-request"].value == 1

    def test_rejection_resolves_the_handle(self, router):
        """An attacker's submit must never leave a waiter hanging: the
        handle resolves REJECTED synchronously (popped from the pending
        table) before the typed error propagates."""
        from repro.serve.request import RequestStatus

        router.keyvault.rotate("default")
        router.keyvault.revoke("default", 1)
        request = make_request(key_version=1)
        with pytest.raises(StaleKeyError):
            router.submit(request)
        assert request.request_id not in router._handles
        rejected = router._requests_total[RequestStatus.REJECTED]
        assert rejected.value == 1


class TestWorkerTrustChecks:
    """The worker's independent second line of defense, unit-level (no
    sockets: _install_keys/_trust_check are pure given a header)."""

    @pytest.fixture
    def worker(self, tmp_path):
        w = ClusterWorker("w-test", "127.0.0.1", 0,
                          cache_dir=tmp_path / "cache")
        yield w
        w._pool.shutdown(wait=False)

    @staticmethod
    def manifest_blob(vault):
        return pickle.dumps(vault.manifest())

    def test_install_and_reject_revoked_version(self, worker):
        vault = KeyVault()
        vault.issue("default")
        vault.rotate("default")
        vault.revoke("default", 1)
        worker._install_keys(self.manifest_blob(vault))
        assert worker._keyvault.tenants() == ["default"]
        reason = worker._trust_check(
            {"kind": "submit", "tenant": "default", "key_version": 1})
        assert reason is not None and "StaleKeyError" in reason

    def test_merely_retired_version_passes_worker(self, worker):
        """Retired-but-not-revoked is the router's grace-window call; the
        worker must not second-guess it (mid-rotation race)."""
        vault = KeyVault()
        vault.issue("default")
        vault.rotate("default")
        worker._install_keys(self.manifest_blob(vault))
        assert worker._trust_check(
            {"kind": "submit", "tenant": "default",
             "key_version": 1}) is None

    def test_empty_vault_skips_key_checks(self, worker):
        """Before the first keys frame arrives the worker cannot
        adjudicate versions — it must not reject legitimate traffic."""
        assert worker._trust_check(
            {"kind": "submit", "tenant": "default",
             "key_version": 3}) is None

    def test_forged_manifest_leaves_vault_untouched(self, worker):
        vault = KeyVault()
        vault.issue("default")
        doc = vault.manifest()
        doc["records"][0]["status"] = "active-forever"  # voids the sig
        worker._install_keys(pickle.dumps(doc))
        assert worker._keyvault.tenants() == []

    def test_wire_replay_rejected_but_fresh_envelopes_pass(self, worker):
        minter = EnvelopeMinter(sender="router")
        env = minter.mint()
        header = {"kind": "submit", "tenant": "default",
                  **env.as_header_fields()}
        assert worker._trust_check(header) is None
        reason = worker._trust_check(header)  # byte-identical replay
        assert reason is not None and "ReplayError" in reason
        # A fresh envelope (failover re-dispatch) still passes.
        fresh = {"kind": "submit", "tenant": "default",
                 **minter.mint().as_header_fields()}
        assert worker._trust_check(fresh) is None


class TestKeyReplication:
    def test_rotation_replicates_to_live_workers(self):
        """A rotation on the router's vault pushes a signed ``keys``
        frame to every live worker without any extra plumbing (the
        vault's on_event hook).  The test side plays the worker: a
        registered id, a real hello over the wire, then it watches the
        frames the router sends."""
        from repro.cluster.protocol import send_frame
        from repro.cluster.router import _Worker

        vault = KeyVault()
        vault.issue("default")
        router = ClusterRouter(num_workers=1, spawn_workers=False,
                               disk_cache=False, keyvault=vault)
        router.start()
        # Register the id by hand (stub process object: the failover and
        # teardown paths dereference proc.pid/.poll): the accept loop
        # only admits hellos from ids the router spawned.
        import types
        stub_proc = types.SimpleNamespace(
            pid=4242, poll=lambda: 0, kill=lambda: None,
            wait=lambda timeout=None: 0)
        record = _Worker("wfake", 0, proc=stub_proc)
        record.token = router._token
        router._workers["wfake"] = record
        client = None
        try:
            client = socket.create_connection(("127.0.0.1", router._port),
                                              timeout=5)
            client.settimeout(10)
            send_frame(client, {"kind": "hello", "worker_id": "wfake",
                                "token": router._token, "pid": 4242,
                                "protocol": 1},
                       token=router._token)
            # Hello-time replication: the first frame back is the vault
            # (heartbeat pings may interleave afterwards).
            header, blob = recv_frame(client, token=router._token)
            assert header["kind"] == "keys"
            replica = KeyVault()
            assert replica.install_manifest(pickle.loads(blob)) == 1
            vault.rotate("default")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                header, blob = recv_frame(client, token=router._token)
                if header["kind"] == "keys":
                    break
            else:
                pytest.fail("rotation never reached the worker")
            replica.install_manifest(pickle.loads(blob))
            assert replica.active_version("default") == 2
        finally:
            # The fake record has no process: deregister before shutdown
            # so teardown doesn't try to reap it.
            router._workers.pop("wfake", None)
            if client is not None:
                client.close()
            router.shutdown(drain=False)


class SilentRouter:
    """Accepts worker hellos, counts them, never sends a single frame —
    a half-open connection from the worker's point of view."""

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self.hellos = 0
        self._socks = []
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return
            self._socks.append(sock)
            try:
                header, _ = recv_frame(sock)
                if header.get("kind") == "hello":
                    self.hellos += 1
            except Exception:
                pass

    def close(self):
        self.listener.close()
        for sock in self._socks:
            try:
                sock.close()
            except OSError:
                pass


class TestWorkerLiveness:
    def test_half_open_socket_triggers_reconnect_then_clean_exit(self,
                                                                 tmp_path):
        """A router that goes silent must not hang the worker forever:
        bounded reads notice the silence and the worker redials (fresh
        hellos).  While the listener still accepts, redialing continues
        — only once the router is really gone does run() return 0."""
        fake = SilentRouter()
        worker = ClusterWorker(
            "w-liveness", "127.0.0.1", fake.port,
            cache_dir=tmp_path / "cache",
            read_timeout_s=0.1, liveness_timeout_s=0.3,
            reconnect_attempts=2)
        outcome = []
        thread = threading.Thread(
            target=lambda: outcome.append(worker.run()), daemon=True)
        thread.start()
        # Bounded reads + liveness: the silent socket gets replaced, so
        # fresh hellos arrive (initial + >= 1 reconnect).
        deadline = time.monotonic() + 20
        while fake.hellos < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert fake.hellos >= 2, "worker never redialed the silent router"
        # Now the router really disappears: the reconnect budget drains
        # and the worker exits cleanly instead of spinning.
        fake.close()
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker hung after the router died"
        assert outcome == [0]

    def test_unreachable_router_fails_fast(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens there now
        worker = ClusterWorker("w-nohome", "127.0.0.1", dead_port,
                               cache_dir=tmp_path / "cache",
                               reconnect_attempts=1)
        assert worker.run() == 1
        worker._pool.shutdown(wait=False)
