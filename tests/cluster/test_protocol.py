"""Wire framing: roundtrips, corruption detection, size caps."""

import socket
import struct
import threading
import zlib

import pytest

from repro.cluster.protocol import (MAGIC, MAX_BLOB_BYTES,
                                    MAX_HEADER_BYTES, ConnectionClosed,
                                    ProtocolError, pack_result,
                                    pack_submit, recv_frame, send_frame,
                                    unpack_result, unpack_submit)
from repro.serve.request import (InferenceRequest, LatencyBreakdown,
                                 RequestResult, RequestStatus)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip_header_only(self, pair):
        a, b = pair
        send_frame(a, {"kind": "ping", "n": 1})
        header, blob = recv_frame(b)
        assert header == {"kind": "ping", "n": 1}
        assert blob == b""

    def test_roundtrip_with_blob(self, pair):
        a, b = pair
        payload = b"x" * 100_000
        send_frame(a, {"kind": "result"}, payload)
        header, blob = recv_frame(b)
        assert blob == payload
        assert header["crc32"] == zlib.crc32(payload) & 0xFFFFFFFF

    def test_many_frames_stay_in_sync(self, pair):
        a, b = pair
        for i in range(20):
            send_frame(a, {"kind": "ping", "i": i}, bytes([i]) * i)
        for i in range(20):
            header, blob = recv_frame(b)
            assert header["i"] == i
            assert blob == bytes([i]) * i

    def test_concurrent_senders_with_lock(self, pair):
        a, b = pair
        lock = threading.Lock()

        def sender(tag):
            for i in range(50):
                with lock:
                    send_frame(a, {"kind": "ping", "tag": tag, "i": i})

        threads = [threading.Thread(target=sender, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seen = [recv_frame(b)[0] for _ in range(200)]
        assert len(seen) == 200  # nothing torn


class TestCorruption:
    def test_bad_magic(self, pair):
        a, b = pair
        a.sendall(b"XXXX" + b"\x00" * 16)
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(b)

    def test_blob_crc_mismatch(self, pair):
        a, b = pair
        blob = b"payload"
        header = (b'{"crc32":1,"kind":"result"}')
        a.sendall(MAGIC + struct.pack(">I", len(header)) + header
                  + struct.pack(">I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="crc"):
            recv_frame(b)

    def test_header_not_json(self, pair):
        a, b = pair
        bad = b"not-json"
        a.sendall(MAGIC + struct.pack(">I", len(bad)) + bad
                  + struct.pack(">I", 0))
        with pytest.raises(ProtocolError, match="header"):
            recv_frame(b)

    def test_header_missing_kind(self, pair):
        a, b = pair
        bad = b'{"x":1}'
        a.sendall(MAGIC + struct.pack(">I", len(bad)) + bad
                  + struct.pack(">I", 0))
        with pytest.raises(ProtocolError, match="kind"):
            recv_frame(b)

    def test_giant_header_length_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(MAGIC + struct.pack(">I", MAX_HEADER_BYTES + 1))
        with pytest.raises(ProtocolError, match="header length"):
            recv_frame(b)

    def test_giant_blob_length_rejected(self, pair):
        a, b = pair
        header = b'{"kind":"x"}'
        a.sendall(MAGIC + struct.pack(">I", len(header)) + header
                  + struct.pack(">I", (MAX_BLOB_BYTES + 1) & 0xFFFFFFFF))
        with pytest.raises(ProtocolError, match="blob length"):
            recv_frame(b)


class TestEOF:
    def test_clean_eof_between_frames(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)

    def test_eof_mid_frame(self, pair):
        a, b = pair
        a.sendall(MAGIC + struct.pack(">I", 100) + b"partial")
        a.close()
        with pytest.raises(ConnectionClosed, match="mid-frame"):
            recv_frame(b)


class TestPayloadHelpers:
    def test_submit_roundtrip(self, pair):
        a, b = pair
        request = InferenceRequest(
            program={"name": "prog"}, params={"p": 1}, machine=2,
            tenant="acme", name="job-1", deadline_s=9.0, tag="t")
        header, blob = pack_submit(request, {"opt": True}, "deadbeef",
                                   trace_id="tid", parent_span_id="sid")
        send_frame(a, header, blob)
        got_header, got_blob = recv_frame(b)
        assert got_header["kind"] == "submit"
        assert got_header["tenant"] == "acme"
        assert got_header["key"] == "deadbeef"
        assert got_header["trace_id"] == "tid"
        assert got_header["parent_span_id"] == "sid"
        assert got_header["deadline_s"] == 9.0
        program, params, machine, options = unpack_submit(got_header,
                                                          got_blob)
        assert program == {"name": "prog"}
        assert machine == 2
        assert options == {"opt": True}

    def test_submit_without_trace_omits_ids(self):
        request = InferenceRequest(program=1, params=2)
        header, _ = pack_submit(request, None, "k")
        assert "trace_id" not in header

    def test_result_roundtrip_strips_heavy_fields(self):
        fat = RequestResult(
            request_id=7, name="job", status=RequestStatus.OK,
            latency=LatencyBreakdown(execute_s=0.5, total_s=0.6),
            attempts=2, shard=1, cache="memory", cycles=1234,
            sim=object(), compiled=object())
        header, blob = pack_result(fat)
        slim = unpack_result(header, blob)
        assert slim.request_id == 7
        assert slim.status is RequestStatus.OK
        assert slim.cycles == 1234
        assert slim.latency.execute_s == 0.5
        assert slim.sim is None and slim.compiled is None
