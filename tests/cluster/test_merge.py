"""Merging per-worker metrics snapshots and journals."""

import pytest

from repro.cluster.merge import (merge_histogram_values, merge_journals,
                                 merge_snapshots, merged_scalar)
from repro.obs.metrics import MetricsRegistry


def snapshot_with(counter=None, gauge=None, hist=None):
    registry = MetricsRegistry()
    for labels, value in (counter or {}).items():
        registry.counter("reqs", "d", labels=dict(labels)).inc(value)
    if gauge is not None:
        registry.gauge("depth", "d").set(gauge)
    for value in hist or ():
        registry.histogram("lat", "d").observe(value)
    return registry.snapshot()


class TestCounters:
    def test_summed_per_label_set(self):
        a = snapshot_with(counter={(("status", "ok"),): 3})
        b = snapshot_with(counter={(("status", "ok"),): 4,
                                   (("status", "failed"),): 1})
        merged = merge_snapshots([a, b])
        assert merged_scalar(merged, "reqs", {"status": "ok"}) == 7
        assert merged_scalar(merged, "reqs", {"status": "failed"}) == 1
        assert merged_scalar(merged, "reqs") == 8   # across labels

    def test_disjoint_metric_names_survive(self):
        merged = merge_snapshots([snapshot_with(counter={(): 1}),
                                  snapshot_with(gauge=5)])
        assert merged_scalar(merged, "reqs") == 1
        assert merged_scalar(merged, "depth") == 5


class TestGauges:
    def test_gauges_sum_across_processes(self):
        merged = merge_snapshots([snapshot_with(gauge=2),
                                  snapshot_with(gauge=3)])
        assert merged_scalar(merged, "depth") == 5


class TestHistograms:
    def test_count_sum_max_exact(self):
        a = snapshot_with(hist=[0.1, 0.2, 0.3])
        b = snapshot_with(hist=[1.0])
        merged = merge_snapshots([a, b])
        value = merged["lat"]["series"][0]["value"]
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(1.6)
        assert value["mean"] == pytest.approx(0.4)
        assert value["max"] == pytest.approx(1.0)
        # Both sides still carry their complete reservoirs, so the merge
        # re-ranks the concatenated samples instead of approximating.
        assert value["quantiles"] == "exact"

    def test_small_n_quantiles_match_single_process(self):
        """Regression: few-sample cluster p99 == single-process p99.

        Split the same observations across two workers; the merged
        quantiles must equal a single registry observing all of them
        (the old count-weighted interpolation got p99 wrong by ~2x
        whenever one worker caught the tail)."""
        observations = [0.01, 0.02, 0.05, 0.1, 0.1, 0.2, 0.4, 3.0]
        direct = MetricsRegistry()
        for value in observations:
            direct.histogram("lat", "d").observe(value)
        expected = direct.snapshot()["lat"]["series"][0]["value"]

        merged = merge_snapshots([snapshot_with(hist=observations[:3]),
                                  snapshot_with(hist=observations[3:])])
        value = merged["lat"]["series"][0]["value"]
        assert value["quantiles"] == "exact"
        for q in ("p50", "p95", "p99"):
            assert value[q] == pytest.approx(expected[q]), q
        assert value["buckets"] == expected["buckets"]

    def test_exact_merge_carries_samples_for_nesting(self):
        once = merge_snapshots([snapshot_with(hist=[0.1]),
                                snapshot_with(hist=[2.0])])
        twice = merge_snapshots([once, snapshot_with(hist=[5.0])])
        value = twice["lat"]["series"][0]["value"]
        assert value["quantiles"] == "exact"
        assert value["p99"] == pytest.approx(5.0)

    def test_weighted_quantiles(self):
        values = [{"count": 3, "sum": 3.0, "max": 2.0, "p50": 1.0,
                   "p95": 2.0, "p99": 2.0},
                  {"count": 1, "sum": 5.0, "max": 5.0, "p50": 5.0,
                   "p95": 5.0, "p99": 5.0}]
        merged = merge_histogram_values(values)
        assert merged["p50"] == pytest.approx((3 * 1.0 + 1 * 5.0) / 4)

    def test_empty_histograms(self):
        merged = merge_histogram_values([])
        assert merged["count"] == 0
        assert merged["p50"] is None

    def test_zero_count_sides_ignored_for_quantiles(self):
        values = [{"count": 0, "sum": 0.0, "max": 0.0, "p50": None},
                  {"count": 2, "sum": 4.0, "max": 3.0, "p50": 2.0,
                   "p95": 3.0, "p99": 3.0}]
        assert merge_histogram_values(values)["p50"] == 2.0


class TestShape:
    def test_merged_shape_matches_registry_snapshot(self):
        merged = merge_snapshots([snapshot_with(gauge=1, hist=[0.5])])
        for entry in merged.values():
            assert set(entry) == {"type", "series"}
            for series in entry["series"]:
                assert set(series) == {"labels", "value"}

    def test_empty_inputs(self):
        assert merge_snapshots([]) == {}
        assert merge_snapshots([{}, {}]) == {}
        assert merged_scalar({}, "anything") == 0.0


class TestJournals:
    def test_concatenation_stamps_worker(self):
        merged = merge_journals({
            "w0": [{"kind": "compile", "job": "a"}],
            "w1": [{"kind": "simulate", "job": "b"},
                   {"kind": "compile", "job": "c", "worker": "orig"}],
        })
        assert len(merged) == 3
        by_job = {row["job"]: row for row in merged}
        assert by_job["a"]["worker"] == "w0"
        assert by_job["b"]["worker"] == "w1"
        assert by_job["c"]["worker"] == "orig"   # setdefault, not clobber

    def test_rows_are_copies(self):
        source = [{"kind": "compile", "job": "a"}]
        merged = merge_journals({"w0": source})
        merged[0]["mutated"] = True
        assert "mutated" not in source[0]
