"""Shared helpers: fast requests + one 2-worker cluster per module."""

import pytest

from repro.fhe import ArchParams
from repro.core.dsl.program import CinnamonProgram
from repro.serve import InferenceRequest

PARAMS = ArchParams(max_level=6)


def make_program(name="cluster-prog", rotation=1):
    prog = CinnamonProgram(name, level=6)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", a * b + a.rotate(rotation))
    return prog


def make_request(name="req", rotation=1, program_name="cluster-prog",
                 machine=2, **kwargs):
    """Compiles in ~30 ms; same ``rotation`` + ``program_name`` => same
    fingerprint (routes to the same worker), different => distinct."""
    return InferenceRequest(
        program=make_program(program_name, rotation), params=PARAMS,
        machine=machine, name=name, **kwargs)


@pytest.fixture
def requests_factory():
    return make_request
