"""Acceptance: the live telemetry path end-to-end on a real cluster.

One 2-worker router with streaming CNC1 telemetry, a deliberately tight
latency SLO, a flight recorder, and a status document — driven through
multi-tenant traffic and two worker kills.  Proves the ISSUE's live
path: alert rows in the merged journal, exactly one post-mortem bundle
per worker death, loadable Chrome traces inside the bundles, and
per-tenant cost attribution that sums to the cluster-wide counters.
"""

import json
import time
from types import SimpleNamespace

import pytest

from repro import obs
from repro.cluster import ClusterRouter
from repro.obs.__main__ import main as obs_main
from repro.obs.analyze import check
from repro.obs.live import FLIGHT_SCHEMA_VERSION

from .conftest import make_request

RESULT_TIMEOUT_S = 120
KILLS = 2


def _tenant(i):
    return "acme" if i % 2 else "beta"


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """Serve multi-tenant traffic, page the SLO, kill two workers."""
    out = tmp_path_factory.mktemp("live-cluster")
    flight_dir = out / "flight"
    status_path = out / "status.json"
    obs.enable(reset=True)
    router = ClusterRouter(
        num_workers=2, heartbeat_s=0.2,
        telemetry_interval_s=0.2,
        slos=["latency:0.000001:99:lat"],
        slo_window_scale=1.0 / 600.0, slo_min_events=5,
        slo_cooldown_s=2.0,
        flight_dir=flight_dir,
        live_status_path=status_path)
    try:
        router.start()
        assert router.wait_ready(timeout=120)

        handles = [router.submit(make_request(f"r{i}", i % 3,
                                              tenant=_tenant(i)))
                   for i in range(8)]
        results = [h.result(timeout=RESULT_TIMEOUT_S) for h in handles]
        assert all(r.ok for r in results), [r.error for r in results]

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not router.live.alerts:
            time.sleep(0.1)

        # Chaos: kill a worker (twice) with traffic in flight; orphans
        # must requeue and the recorder must dump once per death.
        killed, chaos_results = [], []
        for round_no in range(KILLS):
            assert router.wait_ready(count=2, timeout=60)
            more = [router.submit(
                make_request(f"c{round_no}-{i}", (round_no + i) % 3,
                             tenant=_tenant(i)))
                for i in range(4)]
            worker = router.kill_worker()
            assert worker is not None
            killed.append(worker)
            chaos_results += [h.result(timeout=RESULT_TIMEOUT_S)
                              for h in more]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                deaths = [p for p in router.live.flight.bundles
                          if "worker_death" in p.name]
                if len(deaths) >= round_no + 1:
                    break
                time.sleep(0.1)

        time.sleep(1.0)     # drain the last telemetry pushes
        router.live.tick()
        snapshot = router.metrics_snapshot()
        document = router.trace()
        status = json.loads(status_path.read_text())
        bundles = list(router.live.flight.bundles)
        alerts = list(router.live.alerts)
    finally:
        router.shutdown(drain=False)
        obs.disable()
    return SimpleNamespace(
        results=results, chaos_results=chaos_results, killed=killed,
        alerts=alerts, bundles=bundles, snapshot=snapshot,
        document=document, status=status, status_path=str(status_path))


class TestLiveServing:
    def test_all_requests_survive_chaos(self, scenario):
        assert all(r.ok for r in scenario.results)
        assert all(r.ok for r in scenario.chaos_results)

    def test_results_carry_cost_rollups(self, scenario):
        for result in scenario.results + scenario.chaos_results:
            assert result.cost is not None
            assert result.cost["sim_cycles"] > 0
            assert result.cost["bytes"] > 0

    def test_slo_paged_from_streamed_telemetry(self, scenario):
        assert scenario.alerts, "tight SLO never fired"
        first = scenario.alerts[0]
        assert first["kind"] == "alert"
        assert first["slo"] == "lat"
        assert first["severity"] == "page"
        assert first["burn_rate"] > 1.0


class TestFlightUnderChaos:
    def test_exactly_one_bundle_per_worker_death(self, scenario):
        deaths = [p for p in scenario.bundles
                  if "worker_death" in p.name]
        assert len(deaths) == KILLS
        keys = [json.loads(p.read_text())["key"] for p in deaths]
        assert sorted(keys) == sorted(scenario.killed)
        assert len(set(keys)) == KILLS

    def test_slo_breach_bundle_dumped(self, scenario):
        assert any("slo_breach" in p.name for p in scenario.bundles)

    def test_bundles_are_valid_and_bounded(self, scenario):
        assert scenario.bundles
        for path in scenario.bundles:
            assert path.stat().st_size <= 4_000_000
            doc = json.loads(path.read_text())
            assert doc["schema"] == FLIGHT_SCHEMA_VERSION
            assert doc["process"] == "router"
            assert isinstance(doc["journal"], list)
            assert isinstance(doc["samples"], list)

    def test_bundle_chrome_traces_are_well_formed(self, scenario):
        for path in scenario.bundles:
            doc = json.loads(path.read_text())
            events = doc["chrome_trace"]["traceEvents"]
            assert isinstance(events, list)
            for event in events:
                if event.get("ph") == "M":
                    continue
                assert set(event) >= {"name", "ph", "ts", "dur",
                                      "pid", "tid"}

    def test_death_bundle_records_orphan_context(self, scenario):
        deaths = [p for p in scenario.bundles
                  if "worker_death" in p.name]
        for path in deaths:
            doc = json.loads(path.read_text())
            assert "extra" in doc
            assert doc["extra"]["pid"] > 0
            assert doc["extra"]["orphaned_requests"] >= 0


class TestTenantAttribution:
    def _counter_total(self, scenario, name, tenant=None):
        total = 0.0
        for series in scenario.snapshot.get(name, {}).get("series", ()):
            if tenant and series["labels"].get("tenant") != tenant:
                continue
            total += series.get("value") or 0.0
        return total

    def test_every_request_billed(self, scenario):
        served = len(scenario.results) + len(scenario.chaos_results)
        billed = self._counter_total(scenario,
                                     "cluster_tenant_requests_total")
        assert billed == pytest.approx(served)

    def test_status_rollups_sum_to_cluster_totals(self, scenario):
        tenants = scenario.status["tenants"]
        assert {t["tenant"] for t in tenants} == {"acme", "beta"}
        for column, metric in (
                ("sim_cycles", "cluster_tenant_sim_cycles_total"),
                ("bytes", "cluster_tenant_bytes_total"),
                ("bootstraps", "cluster_tenant_bootstraps_total")):
            table_sum = sum(t[column] for t in tenants)
            counter_sum = self._counter_total(scenario, metric)
            assert table_sum == pytest.approx(counter_sum)
        assert sum(t["sim_cycles"] for t in tenants) > 0

    def test_per_tenant_totals_match(self, scenario):
        for tenant in ("acme", "beta"):
            row = next(t for t in scenario.status["tenants"]
                       if t["tenant"] == tenant)
            assert row["sim_cycles"] == pytest.approx(
                self._counter_total(
                    scenario, "cluster_tenant_sim_cycles_total", tenant))
            assert row["requests"] == row["ok"] + row["failed"]


class TestStatusAndJournal:
    def test_status_document_live(self, scenario):
        status = scenario.status
        assert status["schema"] == 1
        assert status["process"] == "router"
        assert status["slos"] and status["slos"][0]["slo"] == "lat"
        assert status["alerts"]
        assert status["flight_bundles"]
        assert any(w.get("live") for w in status["workers"])

    def test_obs_top_renders_status(self, scenario, capsys):
        assert obs_main(["top", scenario.status_path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "cinnamon live — router" in out
        assert "acme" in out and "beta" in out
        assert "lat" in out
        assert "flight bundles" in out

    def test_journal_schema8_checks_clean_with_alerts(self, scenario):
        document = scenario.document
        assert document["schema"] == 8
        alert_rows = [r for r in document["jobs"]
                      if r["kind"] == "alert"]
        assert alert_rows
        serve_rows = [r for r in document["jobs"]
                      if r["kind"] == "serve"]
        assert {r["tenant"] for r in serve_rows} == {"acme", "beta"}
        assert any(r.get("cost") for r in serve_rows)
        lost = [r for r in document["jobs"]
                if r["kind"] == "cluster"
                and r.get("event") == "worker_lost"]
        assert len(lost) >= KILLS
        assert check(document) == []
