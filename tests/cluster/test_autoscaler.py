"""The hysteretic autoscaling policy (pure decisions, no processes)."""

import pytest

from repro.cluster.autoscaler import Autoscaler, AutoscalerState


def state(workers, depth=0, inflight=0):
    return AutoscalerState(workers=workers, queue_depth=depth,
                           inflight=inflight)


class TestScaleUp:
    def test_backlog_triggers_plus_one(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=4.0)
        assert policy.decide(state(2, depth=8)) == 3

    def test_below_threshold_holds(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=4.0)
        assert policy.decide(state(2, depth=7)) == 2

    def test_clamped_at_max(self):
        policy = Autoscaler(min_workers=1, max_workers=2,
                            scale_up_backlog=1.0)
        assert policy.decide(state(2, depth=100)) == 2

    def test_threshold_scales_with_fleet(self):
        policy = Autoscaler(min_workers=1, max_workers=8,
                            scale_up_backlog=4.0)
        assert policy.decide(state(4, depth=15)) == 4   # < 4*4
        assert policy.decide(state(4, depth=16)) == 5

    def test_inflight_beyond_slots_counts_as_backlog(self):
        """The router dispatches eagerly, so a buried worker shows up
        as inflight, not queue depth — it must still trigger."""
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=2.0, slots_per_worker=2)
        assert policy.decide(state(1, inflight=3)) == 1   # 3-2=1 < 2
        assert policy.decide(state(1, inflight=4)) == 2   # 4-2=2 >= 2

    def test_inflight_within_slots_is_not_backlog(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=1.0, slots_per_worker=4)
        assert policy.decide(state(2, inflight=8)) == 2

    def test_queue_and_inflight_backlogs_add(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=4.0, slots_per_worker=2)
        assert policy.decide(state(1, depth=2, inflight=3)) == 1
        assert policy.decide(state(1, depth=2, inflight=4)) == 2


class TestScaleDown:
    def test_requires_consecutive_idle_ticks(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_down_ticks=3)
        assert policy.decide(state(3)) == 3
        assert policy.decide(state(3)) == 3
        assert policy.decide(state(3)) == 2   # third idle tick retires

    def test_busy_tick_resets_the_count(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_down_ticks=2)
        assert policy.decide(state(3)) == 3
        assert policy.decide(state(3, inflight=3)) == 3   # busy: reset
        assert policy.decide(state(3)) == 3
        assert policy.decide(state(3)) == 2

    def test_never_below_min(self):
        policy = Autoscaler(min_workers=2, max_workers=4,
                            scale_down_ticks=1)
        for _ in range(5):
            target = policy.decide(state(2))
        assert target == 2

    def test_inflight_below_one_per_worker_counts_as_idle(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_down_ticks=2)
        policy.decide(state(4, inflight=2))
        assert policy.decide(state(4, inflight=3)) == 3


class TestBounds:
    def test_target_raised_to_min(self):
        policy = Autoscaler(min_workers=2, max_workers=4)
        assert policy.decide(state(0)) == 2

    def test_target_lowered_to_max(self):
        policy = Autoscaler(min_workers=1, max_workers=2)
        assert policy.decide(state(5)) == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Autoscaler(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            Autoscaler(min_workers=0, max_workers=2)

    def test_scale_up_wins_over_idle_countdown(self):
        policy = Autoscaler(min_workers=1, max_workers=4,
                            scale_up_backlog=2.0, scale_down_ticks=2)
        policy.decide(state(2))
        assert policy.decide(state(2, depth=4)) == 3   # burst arrives
        assert policy.decide(state(3)) == 3            # count restarted
        assert policy.decide(state(3)) == 2
