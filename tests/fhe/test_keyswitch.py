"""Tests for hybrid (digit) keyswitching and key generation."""

import numpy as np
import pytest

from repro.fhe.keys import KeyChain
from repro.fhe.keyswitch import hoisted_decompose, keyswitch, modup_digit
from repro.fhe.rns import basis_product, crt_reconstruct


def _noise_bits(diff_poly):
    vals = crt_reconstruct(diff_poly.to_coeff().data, diff_poly.basis)
    return max(abs(v) for v in vals).bit_length()


class TestKeyGeneration:
    def test_public_key_decrypts_to_noise(self, small_context):
        kc = small_context.keychain
        pk = kc.public_key()
        s = kc.secret.poly(pk.b.basis)
        noise = pk.b + pk.a * s
        assert _noise_bits(noise) < 16

    def test_eval_key_cached(self, small_context):
        kc = small_context.keychain
        assert kc.relin_key(4) is kc.relin_key(4)

    def test_eval_key_distinct_per_level(self, small_context):
        kc = small_context.keychain
        assert kc.relin_key(4) is not kc.relin_key(5)

    def test_partition_recorded(self, small_context):
        params = small_context.params
        evk = small_context.keychain.relin_key(6)
        assert evk.partition == params.digit_partition(6)
        flat = [i for digit in evk.partition for i in digit]
        assert flat == list(range(6))

    def test_unknown_purpose_raises(self, small_context):
        with pytest.raises(ValueError):
            small_context.keychain.switching_key("bogus", 4)


class TestKeyswitchCorrectness:
    @pytest.mark.parametrize("level", [3, 5, 8])
    def test_relin_identity(self, small_context, level):
        """f0 + f1*s ~ d*s^2 up to noise far below the scale."""
        params = small_context.params
        kc = small_context.keychain
        basis = params.basis_at_level(level)
        d = kc.rng.uniform_poly(basis, params.ring_degree)
        s = kc.secret.poly(basis)
        evk = kc.relin_key(level)
        f0, f1 = keyswitch(d, evk, params)
        diff = (f0 + f1 * s) - (d * (s * s))
        q_bits = basis_product(basis).bit_length()
        assert _noise_bits(diff) < q_bits - 20

    def test_galois_identity(self, small_context):
        params = small_context.params
        kc = small_context.keychain
        level = 6
        basis = params.basis_at_level(level)
        d = kc.rng.uniform_poly(basis, params.ring_degree)
        s = kc.secret.poly(basis)
        k = 5
        evk = kc.galois_key(k, level)
        f0, f1 = keyswitch(d, evk, params)
        diff = (f0 + f1 * s) - (d * s.automorphism(k))
        q_bits = basis_product(basis).bit_length()
        assert _noise_bits(diff) < q_bits - 20

    def test_level_mismatch_raises(self, small_context):
        params = small_context.params
        kc = small_context.keychain
        d = kc.rng.uniform_poly(params.basis_at_level(4), params.ring_degree)
        evk = kc.relin_key(5)
        with pytest.raises(ValueError):
            keyswitch(d, evk, params)

    @pytest.mark.parametrize("num_digits", [1, 2, 4])
    def test_any_digit_count(self, small_context, num_digits):
        """Digit selection does not affect keyswitch semantics (Sec 4.3.1)."""
        params = small_context.params
        kc = small_context.keychain
        level = 8
        basis = params.basis_at_level(level)
        d = kc.rng.uniform_poly(basis, params.ring_degree)
        s = kc.secret.poly(basis)
        partition = params.digit_partition(level, num_digits)
        evk = kc.switching_key("relin", level, partition)
        f0, f1 = keyswitch(d, evk, params)
        diff = (f0 + f1 * s) - (d * (s * s))
        q_bits = basis_product(basis).bit_length()
        assert _noise_bits(diff) < q_bits - 20


class TestModupDigit:
    def test_congruence(self, small_context):
        params = small_context.params
        kc = small_context.keychain
        level = 6
        basis = params.basis_at_level(level)
        d = kc.rng.uniform_poly(basis, params.ring_degree).to_coeff()
        digit = params.digit_partition(level)[0]
        digit_primes = tuple(basis[i] for i in digit)
        ext_basis = basis + params.extension_moduli
        up = modup_digit(d, digit, ext_basis).to_coeff()
        q_digit = basis_product(digit_primes)
        original = crt_reconstruct(d.data[list(digit)], digit_primes)
        lifted = crt_reconstruct(up.data, ext_basis)
        for got, want in zip(lifted, original):
            assert (int(got) - int(want)) % q_digit == 0

    def test_requires_coeff_domain(self, small_context):
        params = small_context.params
        kc = small_context.keychain
        d = kc.rng.uniform_poly(params.basis_at_level(4), params.ring_degree)
        with pytest.raises(ValueError):
            modup_digit(d, (0, 1), d.basis + params.extension_moduli)


class TestHoisting:
    def test_hoisted_decompose_congruent_to_fresh(self, small_context):
        """Automorphism of the decomposition == decomposition of the
        automorphism, up to the mod-up representative (a multiple of the
        digit modulus per coefficient) — i.e. the same digit value.
        """
        params = small_context.params
        kc = small_context.keychain
        level = 6
        basis = params.basis_at_level(level)
        d = kc.rng.uniform_poly(basis, params.ring_degree)
        partition = params.digit_partition(level)
        k = 5
        hoisted = [p.automorphism(k) for p in
                   hoisted_decompose(d, partition, params)]
        fresh = hoisted_decompose(d.automorphism(k), partition, params)
        ext_basis = basis + params.extension_moduli
        for digit, a, b in zip(partition, hoisted, fresh):
            q_digit = basis_product([basis[i] for i in digit])
            va = crt_reconstruct(a.to_coeff().data, ext_basis)
            vb = crt_reconstruct(b.to_coeff().data, ext_basis)
            assert all((x - y) % q_digit == 0 for x, y in zip(va, vb))
