"""Rectangular BSGS matvec, baby-step selection, and slot-capacity errors.

Covers the pad-and-mask contract of :func:`repro.fhe.linear
.pad_matrix_block` (zero pad-rows pin the output tail to zero, zero
pad-columns mask junk in the input tail), the rotation-count-minimizing
``baby_steps="auto"`` mode, and the typed :class:`SlotCapacityError`
raised by the packing helpers.
"""

import numpy as np
import pytest

from repro.fhe.linear import (
    bsgs_matvec,
    matrix_diagonals,
    pad_matrix_block,
    plain_matvec_reference,
    rect_diagonals,
    select_baby_steps,
)
from repro.fhe.packing import (
    SlotCapacityError,
    batch_vectors,
    pack_lanes,
    pack_matrix_rows,
    pad_prefix,
    tile_vector,
)


class TestPadMatrixBlock:
    def test_square_passthrough_and_padding(self, rng):
        m = rng.normal(size=(3, 5))
        padded = pad_matrix_block(m)
        assert padded.shape == (8, 8)
        assert np.allclose(padded[:3, :5], m)
        assert np.all(padded[3:, :] == 0)
        assert np.all(padded[:, 5:] == 0)

    def test_explicit_block(self, rng):
        m = rng.normal(size=(4, 4))
        padded = pad_matrix_block(m, block=16)
        assert padded.shape == (16, 16)
        assert np.allclose(padded[:4, :4], m)

    def test_block_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            pad_matrix_block(rng.normal(size=(8, 3)), block=4)

    def test_rect_diagonals_match_padded(self, rng):
        m = rng.normal(size=(5, 7))
        assert set(rect_diagonals(m)) == set(
            matrix_diagonals(pad_matrix_block(m)))


class TestPlainReference:
    def test_rectangular_uses_leading_columns(self, rng):
        m = rng.normal(size=(3, 6))
        x = rng.normal(size=10)
        assert np.allclose(plain_matvec_reference(m, x), m @ x[:6])

    def test_short_input_rejected(self, rng):
        with pytest.raises(ValueError, match="shorter"):
            plain_matvec_reference(rng.normal(size=(3, 6)), np.ones(4))


class TestRectBsgsMatvec:
    def test_tall_matrix_masks_input_junk(self, small_context,
                                          small_evaluator, rng):
        # 12x8 matrix in a 16-block: slots 8..15 of the input hold junk
        # that the zero pad-columns must mask out, and outputs 12..15
        # must come back (almost exactly) zero.
        slots = small_context.params.slot_count
        m = rng.normal(size=(12, 8))
        x = np.zeros(16)
        x[:8] = rng.normal(size=8)
        x[8:] = 37.0  # junk the mask must kill
        ct = small_context.encrypt_values(np.tile(x, slots // 16))
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out).real[:16]
        assert np.max(np.abs(res[:12] - plain_matvec_reference(m, x))) < 1e-3
        assert np.max(np.abs(res[12:])) < 1e-3

    def test_wide_matrix(self, small_context, small_evaluator, rng):
        slots = small_context.params.slot_count
        m = rng.normal(size=(3, 16))
        x = rng.normal(size=16)
        ct = small_context.encrypt_values(np.tile(x, slots // 16))
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out).real[:16]
        assert np.max(np.abs(res[:3] - plain_matvec_reference(m, x))) < 1e-3
        assert np.max(np.abs(res[3:])) < 1e-3

    def test_explicit_block_override(self, small_context, small_evaluator,
                                     rng):
        slots = small_context.params.slot_count
        m = rng.normal(size=(4, 4))
        x = rng.normal(size=32)
        ct = small_context.encrypt_values(np.tile(x, slots // 32))
        out = bsgs_matvec(small_evaluator, ct, matrix=m, block=32)
        res = small_context.decrypt_values(out).real[:32]
        assert np.max(np.abs(res[:4] - m @ x[:4])) < 1e-3
        assert np.max(np.abs(res[4:])) < 1e-3

    def test_auto_baby_steps_same_result(self, small_context,
                                         small_evaluator, rng):
        slots = small_context.params.slot_count
        m = rng.normal(size=(16, 16))
        x = rng.normal(size=16)
        ct = small_context.encrypt_values(np.tile(x, slots // 16))
        a = small_context.decrypt_values(
            bsgs_matvec(small_evaluator, ct, matrix=m)).real
        b = small_context.decrypt_values(
            bsgs_matvec(small_evaluator, ct, matrix=m,
                        baby_steps="auto")).real
        assert np.max(np.abs(a - b)) < 1e-3
        assert np.max(np.abs(a[:16] - m @ x)) < 1e-3


class TestSelectBabySteps:
    @staticmethod
    def cost(offsets, n, n1):
        babies = {d % n1 for d in offsets} - {0}
        giants = {d // n1 for d in offsets} - {0}
        return len(babies) + len(giants)

    def test_power_of_two_and_no_worse_than_sqrt(self, rng):
        import math
        n = 64
        for offsets in ([0, 1, 2, 3], [0, 32], [1, 17, 33, 49],
                        list(range(0, 64, 4)), [5], list(range(64))):
            n1 = select_baby_steps(offsets, n)
            assert n1 & (n1 - 1) == 0
            sqrt_default = 1 << max(0, math.ceil(math.log2(math.sqrt(n))))
            assert self.cost(offsets, n, n1) <= \
                self.cost(offsets, n, sqrt_default)

    def test_banded_matrix_beats_sqrt_split(self):
        # Offsets 0..3 in a 64-ring: n1=2 needs one baby (1) and one
        # giant (1) rotation — strictly better than the sqrt default
        # (n1=8: 3 babies).
        n1 = select_baby_steps([0, 1, 2, 3], 64)
        assert self.cost([0, 1, 2, 3], 64, n1) == 2
        assert self.cost([0, 1, 2, 3], 64, 8) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_baby_steps([], 16)


class TestSlotCapacityError:
    def test_is_value_error_with_counts(self):
        with pytest.raises(SlotCapacityError) as info:
            tile_vector(np.ones(64), 32)
        assert isinstance(info.value, ValueError)
        assert info.value.needed == 64
        assert info.value.available == 32

    def test_pad_prefix(self):
        with pytest.raises(SlotCapacityError):
            pad_prefix(np.ones(10), 8)

    def test_pack_matrix_rows(self):
        with pytest.raises(SlotCapacityError):
            pack_matrix_rows(np.ones((4, 4)), 8)

    def test_batch_vectors(self):
        with pytest.raises(SlotCapacityError):
            batch_vectors([np.ones(8)] * 3, 16)

    def test_pack_lanes(self):
        with pytest.raises(SlotCapacityError):
            pack_lanes([np.ones(8)] * 4, 8, 16)

    def test_fitting_layouts_do_not_raise(self):
        tile_vector(np.ones(8), 32)
        pack_lanes([np.ones(4)] * 2, 4, 16)
