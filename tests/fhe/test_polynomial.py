"""Tests for the RNS polynomial type."""

import numpy as np
import pytest

from repro.fhe.polynomial import COEFF, EVAL, DomainError, RnsPolynomial
from repro.fhe.primes import generate_primes
from repro.fhe.rns import crt_reconstruct

N = 32


@pytest.fixture(scope="module")
def basis():
    return tuple(generate_primes(3, 28, N))


def _random_poly(basis, seed, domain=COEFF):
    rng = np.random.default_rng(seed)
    data = np.stack([rng.integers(0, p, N, dtype=np.uint64) for p in basis])
    return RnsPolynomial(basis, data, domain)


class TestConstruction:
    def test_zero(self, basis):
        z = RnsPolynomial.zero(basis, N)
        assert z.level == 3
        assert not z.data.any()

    def test_from_integers(self, basis):
        poly = RnsPolynomial.from_integers(list(range(N)), basis)
        assert crt_reconstruct(poly.data, basis) == list(range(N))

    def test_shape_mismatch_raises(self, basis):
        with pytest.raises(ValueError):
            RnsPolynomial(basis, np.zeros((2, N), dtype=np.uint64), COEFF)

    def test_bad_domain_raises(self, basis):
        with pytest.raises(ValueError):
            RnsPolynomial(basis, np.zeros((3, N), dtype=np.uint64), "fourier")


class TestArithmetic:
    def test_add_sub_roundtrip(self, basis):
        a = _random_poly(basis, 1)
        b = _random_poly(basis, 2)
        assert ((a + b) - b).equals(a)

    def test_neg(self, basis):
        a = _random_poly(basis, 3)
        assert (a + (-a)).equals(RnsPolynomial.zero(basis, N, COEFF))

    def test_mul_requires_eval_domain(self, basis):
        a = _random_poly(basis, 4, COEFF)
        with pytest.raises(DomainError):
            _ = a * a

    def test_domain_mismatch_raises(self, basis):
        a = _random_poly(basis, 5, COEFF)
        b = _random_poly(basis, 5, EVAL)
        with pytest.raises(DomainError):
            _ = a + b

    def test_basis_mismatch_raises(self, basis):
        a = _random_poly(basis, 6)
        b = a.drop_limbs(2)
        with pytest.raises(ValueError):
            _ = a + b

    def test_mul_matches_integer_convolution(self, basis):
        a = RnsPolynomial.from_integers([1] + [0] * (N - 1), basis)
        b = RnsPolynomial.from_integers(list(range(N)), basis)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        assert crt_reconstruct(prod.data, basis) == list(range(N))

    def test_scalar_mul(self, basis):
        b = RnsPolynomial.from_integers(list(range(N)), basis)
        assert crt_reconstruct(b.scalar_mul(7).data, basis) == [7 * i for i in range(N)]

    def test_scalar_mul_rns_per_limb(self, basis):
        a = _random_poly(basis, 7)
        residues = [5, 5, 5]
        assert a.scalar_mul_rns(residues).equals(a.scalar_mul(5))


class TestDomains:
    def test_roundtrip(self, basis):
        a = _random_poly(basis, 8, COEFF)
        assert a.to_eval().to_coeff().equals(a)

    def test_idempotent(self, basis):
        a = _random_poly(basis, 9, COEFF)
        assert a.to_coeff() is a


class TestAutomorphism:
    def test_identity_element(self, basis):
        a = _random_poly(basis, 10)
        assert a.automorphism(1).equals(a)

    def test_composition(self, basis):
        # sigma_5 o sigma_5 == sigma_25
        a = _random_poly(basis, 11)
        assert a.automorphism(5).automorphism(5).equals(a.automorphism(25 % (2 * N)))

    def test_matches_integer_semantics(self, basis):
        # sigma_k(X^1) = X^k
        a = RnsPolynomial.from_integers([0, 1] + [0] * (N - 2), basis)
        out = a.automorphism(5)
        coeffs = crt_reconstruct(out.data, basis)
        expect = [0] * N
        expect[5] = 1
        assert coeffs == expect

    def test_sign_flip_on_wraparound(self, basis):
        # sigma_3(X^(N-1)) = X^(3N-3) = X^(N-3) * (X^N)^2 ... careful:
        # 3*(N-1) mod 2N = 3N-3-2N = N-3, which is >= ... exponent 3N-3 =
        # (2N) + (N-3): X^(2N) = 1, so X^(N-3)? No: X^N = -1 so
        # X^(3N-3) = X^(N-3) * X^(2N) = X^(N-3); check via reference below.
        a = RnsPolynomial.from_integers([0] * (N - 1) + [1], basis)
        out = a.automorphism(3)
        coeffs = crt_reconstruct(out.data, basis)
        exponent = (3 * (N - 1)) % (2 * N)
        sign = -1 if exponent >= N else 1
        expect = [0] * N
        expect[exponent % N] = sign
        assert coeffs == expect

    def test_even_element_raises(self, basis):
        a = _random_poly(basis, 12)
        with pytest.raises(ValueError):
            a.automorphism(4)

    def test_eval_domain_consistency(self, basis):
        a = _random_poly(basis, 13, COEFF)
        via_eval = a.to_eval().automorphism(5).to_coeff()
        assert via_eval.equals(a.automorphism(5))


class TestLimbSelection:
    def test_drop_limbs(self, basis):
        a = _random_poly(basis, 14)
        dropped = a.drop_limbs(2)
        assert dropped.basis == basis[:2]
        assert np.array_equal(dropped.data, a.data[:2])

    def test_select_limbs(self, basis):
        a = _random_poly(basis, 15)
        sel = a.select_limbs([2, 0])
        assert sel.basis == (basis[2], basis[0])
        assert np.array_equal(sel.data[0], a.data[2])

    def test_drop_out_of_range(self, basis):
        with pytest.raises(ValueError):
            _random_poly(basis, 16).drop_limbs(0)
