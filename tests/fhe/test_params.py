"""Tests for CKKS parameter sets and the architectural parameters."""

import numpy as np
import pytest

from repro.fhe import ArchParams, CKKSParams, make_params, toy_params


class TestMakeParams:
    def test_moduli_are_ntt_friendly(self, small_params):
        n = small_params.ring_degree
        for q in small_params.moduli + small_params.extension_moduli:
            assert q % (2 * n) == 1

    def test_disjoint_extension_basis(self, small_params):
        assert not set(small_params.moduli) & \
            set(small_params.extension_moduli)

    def test_first_modulus_wider(self, small_params):
        assert small_params.moduli[0].bit_length() > \
            small_params.moduli[1].bit_length()

    def test_extension_dominates_digits(self, small_params):
        """P >= every digit product (keyswitch noise headroom)."""
        import math

        p_total = math.prod(small_params.extension_moduli)
        for digit in small_params.digit_partition(small_params.max_level):
            q_digit = math.prod(small_params.moduli[i] for i in digit)
            assert p_total > q_digit

    def test_level_scales_near_nominal(self, small_params):
        for level in range(1, small_params.max_level + 1):
            s = small_params.scale_at_level(level)
            assert abs(np.log2(s) - np.log2(small_params.scale)) < 0.01

    def test_invariant_recurrence(self, small_params):
        """S_{l-1} == S_l^2 / q_{l-1} exactly."""
        for level in range(small_params.max_level, 1, -1):
            s = small_params.scale_at_level(level)
            expected = s * s / small_params.moduli[level - 1]
            assert small_params.scale_at_level(level - 1) == \
                pytest.approx(expected, rel=1e-12)

    def test_basis_at_level(self, small_params):
        assert small_params.basis_at_level(3) == small_params.moduli[:3]
        with pytest.raises(ValueError):
            small_params.basis_at_level(0)
        with pytest.raises(ValueError):
            small_params.basis_at_level(small_params.max_level + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CKKSParams(ring_degree=100, moduli=(17,), extension_moduli=(19,),
                       num_digits=1, scale=2.0**10)
        with pytest.raises(ValueError):
            CKKSParams(ring_degree=64, moduli=(17,), extension_moduli=(17,),
                       num_digits=1, scale=2.0**10)


class TestDigitPartition:
    def test_contiguous_cover(self, small_params):
        part = small_params.digit_partition(7)
        flat = [i for digit in part for i in digit]
        assert flat == list(range(7))

    def test_digit_count_capped_by_level(self, small_params):
        part = small_params.digit_partition(2, num_digits=5)
        assert len(part) == 2

    def test_explicit_digit_count(self, small_params):
        part = small_params.digit_partition(8, num_digits=4)
        assert len(part) == 4
        assert all(len(d) == 2 for d in part)


class TestToyParams:
    def test_fast_and_small(self):
        params = toy_params()
        assert params.ring_degree <= 512
        assert params.max_level >= 4


class TestArchParams:
    def test_paper_defaults(self):
        arch = ArchParams()
        assert arch.ring_degree == 65536
        assert arch.max_level == 51
        assert arch.num_digits == 4
        assert arch.limb_bytes == 65536 * 4
        assert arch.slot_count == 32768

    def test_digit_partition_shape(self):
        arch = ArchParams()
        part = arch.digit_partition(51)
        assert len(part) == 4
        assert max(len(d) for d in part) <= 13  # the BCU's input bound

    def test_custom_levels(self):
        arch = ArchParams(max_level=59)
        assert arch.max_level == 59
