"""Tests for the analytic noise estimator against measured errors."""

import numpy as np
import pytest

from repro.fhe.noise import (
    NoiseEstimator,
    measure_slot_error,
    measured_error_bits,
)


@pytest.fixture(scope="module")
def estimator(small_params):
    return NoiseEstimator(small_params)


def _within_two_orders(analytic_bits, measured_bits):
    """Analytic heuristics are order-of-magnitude tools."""
    return abs(analytic_bits - measured_bits) < 8.0  # ~2.4 orders


class TestAnalyticModel:
    def test_fresh_noise_small(self, estimator):
        fresh = estimator.fresh()
        assert fresh.error_bits < -10  # far below unit-scale messages

    def test_add_grows_slowly(self, estimator):
        fresh = estimator.fresh()
        summed = estimator.add(fresh, fresh)
        assert summed.ring_std == pytest.approx(
            fresh.ring_std * np.sqrt(2), rel=1e-6)

    def test_mul_consumes_level(self, estimator):
        fresh = estimator.fresh()
        prod = estimator.mul(fresh, fresh)
        assert prod.level == fresh.level - 1
        assert prod.slot_error_std > fresh.slot_error_std

    def test_mul_at_level_one_rejected(self, estimator):
        fresh = estimator.fresh(level=1)
        with pytest.raises(ValueError):
            estimator.mul(fresh, fresh)

    def test_rotate_adds_keyswitch_noise(self, estimator):
        fresh = estimator.fresh()
        rotated = estimator.rotate(fresh)
        assert rotated.ring_std > fresh.ring_std
        assert rotated.level == fresh.level


class TestAgainstMeasurements:
    def test_fresh_encryption(self, small_context, estimator, rng):
        z = rng.uniform(-1, 1, small_context.params.slot_count)
        ct = small_context.encrypt_values(z)
        measured = measured_error_bits(small_context, ct, z)
        assert _within_two_orders(estimator.fresh().error_bits, measured)

    def test_multiplication(self, small_context, small_evaluator,
                            estimator, rng):
        n = small_context.params.slot_count
        a, b = rng.uniform(-1, 1, n), rng.uniform(-1, 1, n)
        ct = small_evaluator.mul(small_context.encrypt_values(a),
                                 small_context.encrypt_values(b))
        predicted = estimator.mul(estimator.fresh(), estimator.fresh())
        measured = measured_error_bits(small_context, ct, a * b)
        assert _within_two_orders(predicted.error_bits, measured)

    def test_rotation(self, small_context, small_evaluator, estimator, rng):
        n = small_context.params.slot_count
        a = rng.uniform(-1, 1, n)
        ct = small_evaluator.rotate(small_context.encrypt_values(a), 3)
        predicted = estimator.rotate(estimator.fresh())
        measured = measured_error_bits(small_context, ct, np.roll(a, -3))
        assert _within_two_orders(predicted.error_bits, measured)

    def test_depth_chain_ordering(self, small_context, small_evaluator,
                                  estimator, rng):
        """Measured error grows with depth, as the model predicts."""
        n = small_context.params.slot_count
        a = rng.uniform(-0.9, 0.9, n)
        ct = small_context.encrypt_values(a)
        expected = a.copy()
        errors = [measure_slot_error(small_context, ct, expected)]
        estimate = estimator.fresh()
        estimates = [estimate.slot_error_std]
        for _ in range(3):
            ct = small_evaluator.square(ct)
            expected = expected * expected
            estimate = estimator.mul(estimate, estimate)
            errors.append(measure_slot_error(small_context, ct, expected))
            estimates.append(estimate.slot_error_std)
        assert errors[-1] > errors[0]
        assert estimates[-1] > estimates[0]
