"""Cross-backend golden parity for the kernel-backend registry.

Every registered :class:`repro.fhe.backend.KernelBackend` must produce
*bit-identical* limbs to the per-limb reference kernels — the batched
numpy kernels and the compiled ``"native"`` backend are alternative
evaluation strategies, never alternative semantics.  These tests pin
that contract for every backend the running environment registers
(including ``"native"`` when a C toolchain is present) and exercise the
selection API (``get_backend``/``set_backend``/``use_backend`` and the
``repro.set_kernel_backend`` facade).
"""

import numpy as np
import pytest

import repro
from repro.fhe import make_params
from repro.fhe.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.fhe.ntt import (
    intt_reference,
    negacyclic_convolve_reference,
    ntt_reference,
)
from repro.fhe.primes import generate_primes
from repro.fhe.rns import mod_down_reference, mod_up_reference

BACKENDS = available_backends()


def seeded_stack(primes, n, seed=0):
    rng = np.random.default_rng(seed)
    bound = np.array(primes, dtype=np.uint64)[:, None]
    return rng.integers(0, bound, size=(len(primes), n), dtype=np.uint64)


def reference_ntt_stack(stack, primes, inverse=False):
    fn = intt_reference if inverse else ntt_reference
    return np.stack([fn(stack[i], int(q)) for i, q in enumerate(primes)])


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "numpy" in BACKENDS
        assert "numpy-batched" in BACKENDS

    def test_every_backend_satisfies_protocol(self):
        for name in BACKENDS:
            with use_backend(name) as backend:
                assert isinstance(backend, KernelBackend)
                assert backend.name == name

    def test_set_backend_returns_previous(self):
        original = get_backend()
        previous = set_backend("numpy")
        try:
            assert previous is original
            assert get_backend().name == "numpy"
        finally:
            set_backend(original)

    def test_unknown_backend_rejected_with_listing(self):
        with pytest.raises(ValueError, match="numpy-batched"):
            set_backend("does-not-exist")

    def test_use_backend_restores_on_exit(self):
        before = get_backend().name
        with use_backend("numpy"):
            assert get_backend().name == "numpy"
        assert get_backend().name == before

    def test_repro_facade(self):
        previous = repro.set_kernel_backend("numpy")
        try:
            assert repro.get_kernel_backend().name == "numpy"
        finally:
            repro.set_kernel_backend(previous)

    def test_register_backend_decorator_roundtrip(self):
        from repro.fhe import backend as backend_mod

        @register_backend("parity-test-dummy")
        class Dummy:
            def ntt_batch(self, coeffs, primes):
                return coeffs

            def intt_batch(self, values, primes):
                return values

            def base_convert(self, limbs, source, target):
                return limbs

            def mod_up(self, limbs, source, target):
                return limbs

            def mod_down(self, limbs, base, extension):
                return limbs

            def pointwise_mulmod(self, a, b, primes):
                return a

        try:
            assert "parity-test-dummy" in available_backends()
            with use_backend("parity-test-dummy") as active:
                assert active.name == "parity-test-dummy"
        finally:
            backend_mod._REGISTRY.pop("parity-test-dummy", None)


@pytest.mark.parametrize("name", BACKENDS)
class TestGoldenParity:
    """Bit-identity of every registered backend vs the reference kernels."""

    @pytest.mark.parametrize("limbs,n", [(1, 64), (2, 64), (24, 64),
                                         (1, 8192), (2, 8192), (24, 8192)])
    def test_ntt_roundtrip_bit_identical(self, name, limbs, n):
        primes = generate_primes(limbs, 28, n)
        stack = seeded_stack(primes, n, seed=limbs * n)
        with use_backend(name) as backend:
            forward = backend.ntt_batch(stack, primes)
            back = backend.intt_batch(forward, primes)
        assert np.array_equal(forward, reference_ntt_stack(stack, primes))
        assert np.array_equal(
            back, reference_ntt_stack(forward, primes, inverse=True))
        assert np.array_equal(back, stack)

    def test_negacyclic_convolution_vs_schoolbook(self, name):
        n = 64
        primes = generate_primes(2, 28, n)
        a = seeded_stack(primes, n, seed=11)
        b = seeded_stack(primes, n, seed=22)
        with use_backend(name) as backend:
            prod = backend.intt_batch(
                backend.pointwise_mulmod(
                    backend.ntt_batch(a, primes),
                    backend.ntt_batch(b, primes), primes),
                primes)
        for i, q in enumerate(primes):
            want = negacyclic_convolve_reference(a[i], b[i], int(q))
            assert np.array_equal(prod[i], want)

    def test_mod_up_down_roundtrip_at_paper_params(self, name):
        params = make_params(ring_degree=64, levels=8, prime_bits=28,
                             num_digits=3)
        base = params.moduli
        ext = params.extension_moduli
        stack = seeded_stack(base, params.ring_degree, seed=33)
        with use_backend(name) as backend:
            up = backend.mod_up(stack, base, base + ext)
            down = backend.mod_down(up, base, ext)
        # Golden parity: both directions bit-identical to the per-limb
        # reference (mod_down divides by the extension product, so the
        # round-trip is x/P — correctness of that rounding is pinned by
        # tests/fhe/test_rns.py; here we pin backend bit-identity).
        assert np.array_equal(up, mod_up_reference(stack, base, base + ext))
        assert np.array_equal(down, mod_down_reference(up, base, ext))
        assert np.array_equal(up[:len(base)], stack)

    def test_base_convert_matches_reference(self, name):
        n = 64
        primes = generate_primes(8, 28, n)
        source, target = primes[:3], primes[3:]
        stack = seeded_stack(source, n, seed=44)
        from repro.fhe.rns import get_conversion_plan

        want = get_conversion_plan(source, target).convert(stack)
        with use_backend(name) as backend:
            got = backend.base_convert(stack, source, target)
        assert np.array_equal(got, want)

    def test_pointwise_mulmod_matches_reference(self, name):
        n = 256
        primes = generate_primes(3, 28, n)
        a = seeded_stack(primes, n, seed=55)
        b = seeded_stack(primes, n, seed=66)
        want = np.stack([(a[i] * b[i]) % np.uint64(q)
                         for i, q in enumerate(primes)])
        with use_backend(name) as backend:
            got = backend.pointwise_mulmod(a, b, primes)
        assert np.array_equal(got, want)

    def test_wide_prime_fallback_stays_bit_identical(self, name):
        """30/31-bit primes exceed the lazy-butterfly bound; every backend
        must fall back to the reference path, bit-identically."""
        n = 256
        primes = generate_primes(3, 30, n)
        stack = seeded_stack(primes, n, seed=77)
        with use_backend(name) as backend:
            forward = backend.ntt_batch(stack, primes)
            back = backend.intt_batch(forward, primes)
        assert np.array_equal(forward, reference_ntt_stack(stack, primes))
        assert np.array_equal(back, stack)


class TestNativeBackendGating:
    """The compiled backend registers itself only when usable."""

    def test_availability_is_consistent(self):
        from repro.fhe import native

        if native.available():
            assert "native" in available_backends()
            assert native.build_error() is None
        else:
            assert "native" not in available_backends()
            assert native.build_error()

    def test_default_backend_prefers_native(self):
        default = get_backend().name
        from repro.fhe import native

        if native.available():
            assert default == "native"
        else:
            assert default == "numpy-batched"
