"""Property-based tests: the CKKS homomorphism on random value vectors.

Hypothesis drives random slot vectors and op sequences through the
evaluator, checking the ring-homomorphism property
``decrypt(op(enc(x), enc(y))) ~ op(x, y)`` with noise-scaled tolerances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

finite = st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False)


@given(xs=st.lists(finite, min_size=1, max_size=16),
       ys=st.lists(finite, min_size=1, max_size=16))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_add_homomorphism(small_context, small_evaluator, xs, ys):
    n = min(len(xs), len(ys))
    x, y = np.array(xs[:n]), np.array(ys[:n])
    out = small_evaluator.add(small_context.encrypt_values(x),
                              small_context.encrypt_values(y))
    got = small_context.decrypt_values(out, length=n).real
    assert np.max(np.abs(got - (x + y))) < 1e-3


@given(xs=st.lists(finite, min_size=1, max_size=16),
       ys=st.lists(finite, min_size=1, max_size=16))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mul_homomorphism(small_context, small_evaluator, xs, ys):
    n = min(len(xs), len(ys))
    x, y = np.array(xs[:n]), np.array(ys[:n])
    out = small_evaluator.mul(small_context.encrypt_values(x),
                              small_context.encrypt_values(y))
    got = small_context.decrypt_values(out, length=n).real
    assert np.max(np.abs(got - x * y)) < 1e-3


@given(xs=st.lists(finite, min_size=4, max_size=16),
       rotation=st.integers(0, 63))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_rotation_group_action(small_context, small_evaluator, xs, rotation):
    """rotate(r) acts as the cyclic shift on the full slot vector."""
    slots = small_context.params.slot_count
    x = np.zeros(slots)
    x[: len(xs)] = xs
    out = small_evaluator.rotate(small_context.encrypt_values(x), rotation)
    got = small_context.decrypt_values(out).real
    assert np.max(np.abs(got - np.roll(x, -rotation))) < 1e-3


@given(x=finite, y=finite, z=finite)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributivity(small_context, small_evaluator, x, y, z):
    """(x + y) * z == x*z + y*z homomorphically (within noise)."""
    ev = small_evaluator
    cx = small_context.encrypt_values([x])
    cy = small_context.encrypt_values([y])
    cz = small_context.encrypt_values([z])
    lhs = ev.mul(ev.add(cx, cy), cz)
    rhs = ev.add(ev.mul(cx, cz), ev.mul(cy, cz))
    a = small_context.decrypt_values(lhs, length=1).real[0]
    b = small_context.decrypt_values(rhs, length=1).real[0]
    assert abs(a - b) < 2e-3
    assert abs(a - (x + y) * z) < 2e-3
