"""Tests for CKKS bootstrapping (slow; marked accordingly)."""

import numpy as np
import pytest

from repro.fhe import CKKSContext, make_params
from repro.fhe.bootstrap import BootstrapConfig, Bootstrapper, embedding_matrix


@pytest.fixture(scope="module")
def boot_setup():
    params = make_params(
        ring_degree=256, levels=18, prime_bits=28, num_digits=3,
        secret_hamming_weight=32,
    )
    ctx = CKKSContext(params, seed=5)
    bs = Bootstrapper(ctx)
    return params, ctx, bs


class TestEmbeddingMatrix:
    def test_unitarity(self):
        n = 32
        u = embedding_matrix(n)
        gram = u @ np.conj(u.T)
        assert np.allclose(gram, n * np.eye(n // 2), atol=1e-9)

    def test_coefficient_recovery_identity(self, rng):
        n = 32
        u = embedding_matrix(n)
        t = rng.normal(size=n)
        z = u @ t
        t_rec = (2.0 / n) * np.real(np.conj(u.T) @ z)
        assert np.max(np.abs(t_rec - t)) < 1e-12


class TestConfig:
    def test_dense_secret_rejected(self):
        params = make_params(ring_degree=64, levels=4, prime_bits=28,
                             num_digits=2)
        ctx = CKKSContext(params, seed=1)
        with pytest.raises(ValueError):
            Bootstrapper(ctx)

    def test_message_scale(self):
        cfg = BootstrapConfig(message_scale_bits=20)
        assert cfg.message_scale == 2.0**20


@pytest.mark.slow
class TestPipelineStages:
    def test_mod_raise_congruent_plaintext(self, boot_setup, rng):
        """The raised plaintext is m + q0*I: congruent to m modulo q0."""
        from repro.fhe.rns import crt_reconstruct

        params, ctx, bs = boot_setup
        q0 = params.moduli[0]
        z = rng.uniform(-1, 1, params.slot_count)
        ct = bs.encrypt_for_bootstrap(z)
        raised = bs.mod_raise(ct)
        assert raised.level == params.max_level
        low = ctx.decrypt(ct).poly.to_coeff()
        m_coeffs = crt_reconstruct(low.data, low.basis)
        high = ctx.decrypt(raised).poly.to_coeff()
        t_coeffs = crt_reconstruct(high.data, high.basis)
        deltas = [(t - m) % q0 for t, m in zip(t_coeffs, m_coeffs)]
        # Allow decryption noise of a few ulps on either side of 0 mod q0.
        assert all(min(d, q0 - d) < 2**14 for d in deltas)
        overflow = max(abs(round((t - m) / q0)) for t, m in zip(t_coeffs, m_coeffs))
        assert 0 < overflow <= 4 * params.secret_hamming_weight

    def test_mod_raise_requires_level_one(self, boot_setup):
        params, ctx, bs = boot_setup
        ct = ctx.encrypt_values([1.0], level=3)
        with pytest.raises(ValueError):
            bs.mod_raise(ct)

    def test_eval_mod_reduces(self, boot_setup, rng):
        params, ctx, bs = boot_setup
        # Values near integers: eval_mod should return the fractional part.
        ints = rng.integers(-8, 9, params.slot_count).astype(float)
        frac = rng.uniform(-0.01, 0.01, params.slot_count)
        ct = ctx.encrypt_values(ints + frac, level=12)
        out = bs.eval_mod(ct)
        res = ctx.decrypt_values(out).real
        assert np.max(np.abs(res - frac)) < 1e-3


@pytest.mark.slow
class TestEndToEnd:
    def test_bootstrap_preserves_values(self, boot_setup, rng):
        params, ctx, bs = boot_setup
        z = rng.uniform(-1, 1, params.slot_count)
        ct = bs.encrypt_for_bootstrap(z)
        out = bs.bootstrap(ct)
        res = ctx.decrypt_values(out).real
        assert np.max(np.abs(res - z)) < 0.05

    def test_bootstrap_refreshes_budget(self, boot_setup, rng):
        params, ctx, bs = boot_setup
        z = rng.uniform(-0.5, 0.5, params.slot_count)
        ct = bs.encrypt_for_bootstrap(z)
        out = bs.bootstrap(ct)
        assert out.level > 1  # budget refreshed
        # ...and the refreshed budget is genuinely usable:
        from repro.fhe import Evaluator

        ev = Evaluator(ctx)
        squared = ev.square(out)
        res = ctx.decrypt_values(squared).real
        assert np.max(np.abs(res - z * z)) < 0.05

    def test_computation_after_bootstrap_chain(self, boot_setup, rng):
        """Level-1 ciphertext -> bootstrap -> multiply twice."""
        params, ctx, bs = boot_setup
        from repro.fhe import Evaluator

        ev = Evaluator(ctx)
        z = rng.uniform(-0.8, 0.8, params.slot_count)
        ct = bs.encrypt_for_bootstrap(z)
        out = bs.bootstrap(ct)
        expect = z
        for _ in range(2):
            out = ev.square(out)
            expect = expect * expect
        res = ctx.decrypt_values(out).real
        assert np.max(np.abs(res - expect)) < 0.1


@pytest.mark.slow
class TestDoubleAngleEvalMod:
    """Han-Ki degree/level trade-off: r doublings shrink the sine degree."""

    def test_double_angle_bootstrap_works(self, rng):
        params = make_params(ring_degree=256, levels=20, prime_bits=28,
                             num_digits=3, secret_hamming_weight=32)
        ctx = CKKSContext(params, seed=5)
        z = rng.uniform(-1, 1, params.slot_count)
        bs = Bootstrapper(ctx, BootstrapConfig(eval_mod_degree=63,
                                               double_angles=1))
        out = bs.bootstrap(bs.encrypt_for_bootstrap(z))
        err = np.max(np.abs(ctx.decrypt_values(out).real - z))
        assert err < 0.05
        assert out.level > 1

    def test_doublings_shrink_required_degree(self, rng):
        """Half the Chebyshev degree still bootstraps once doubled."""
        params = make_params(ring_degree=256, levels=20, prime_bits=28,
                             num_digits=3, secret_hamming_weight=32)
        ctx = CKKSContext(params, seed=6)
        z = rng.uniform(-0.5, 0.5, params.slot_count)
        # Degree 63 *without* doubling cannot represent sin over [-12,12]
        # accurately; with one doubling it can.
        plain_err = Bootstrapper(ctx, BootstrapConfig(
            eval_mod_degree=63, double_angles=0))
        ct = plain_err.encrypt_for_bootstrap(z)
        bad = plain_err.bootstrap(ct)
        bad_err = np.max(np.abs(ctx.decrypt_values(bad).real - z))
        doubled = Bootstrapper(ctx, BootstrapConfig(
            eval_mod_degree=63, double_angles=1))
        good = doubled.bootstrap(doubled.encrypt_for_bootstrap(z))
        good_err = np.max(np.abs(ctx.decrypt_values(good).real - z))
        assert good_err < bad_err
