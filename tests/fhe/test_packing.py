"""Tests for slot-packing utilities, including end-to-end use."""

import numpy as np
import pytest

from repro.fhe.linear import bsgs_matvec
from repro.fhe.packing import (
    batch_mask,
    batch_vectors,
    extract_vector,
    pack_matrix_rows,
    pad_prefix,
    tile_vector,
)


class TestLayouts:
    def test_tile_vector(self):
        out = tile_vector([1.0, 2.0], 8)
        assert out.tolist() == [1, 2, 1, 2, 1, 2, 1, 2]

    def test_tile_requires_divisor(self):
        with pytest.raises(ValueError):
            tile_vector([1, 2, 3], 8)

    def test_pad_prefix(self):
        out = pad_prefix([1.0, 2.0], 5, fill=-1.0)
        assert out.tolist() == [1, 2, -1, -1, -1]

    def test_pad_overflow(self):
        with pytest.raises(ValueError):
            pad_prefix(np.ones(9), 8)

    def test_pack_matrix_rows(self):
        m = np.arange(6.0).reshape(2, 3)
        out = pack_matrix_rows(m, 8)
        assert out.tolist() == [0, 1, 2, 3, 4, 5, 0, 0]

    def test_batch_roundtrip(self):
        vecs = [np.arange(4.0), np.arange(4.0) + 10]
        packed = batch_vectors(vecs, 16)
        assert extract_vector(packed, 0, 4).tolist() == [0, 1, 2, 3]
        assert extract_vector(packed, 1, 4).tolist() == [10, 11, 12, 13]

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            batch_vectors([], 8)
        with pytest.raises(ValueError):
            batch_vectors([np.ones(3)], 8)  # not a power of two
        with pytest.raises(ValueError):
            batch_vectors([np.ones(8), np.ones(8)], 8)  # overflow

    def test_batch_mask(self):
        mask = batch_mask(1, 4, 12)
        assert mask.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]


class TestEndToEnd:
    def test_tiled_matvec(self, small_context, small_evaluator, rng):
        """The tiled layout is exactly what bsgs_matvec expects."""
        slots = small_context.params.slot_count
        n = 16
        m = rng.normal(size=(n, n)) / np.sqrt(n)
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(tile_vector(x, slots))
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out).real[:n]
        assert np.max(np.abs(res - m @ x)) < 1e-3

    def test_masked_batch_extraction(self, small_context, small_evaluator,
                                     rng):
        """Select one vector from a batched ciphertext with a mask."""
        slots = small_context.params.slot_count
        vecs = [rng.uniform(-1, 1, 8) for _ in range(3)]
        ct = small_context.encrypt_values(batch_vectors(vecs, slots))
        mask = batch_mask(1, 8, slots)
        selected = small_evaluator.mul_values(ct, mask)
        res = small_context.decrypt_values(selected).real
        assert np.max(np.abs(extract_vector(res, 1, 8) - vecs[1])) < 1e-3
        assert np.max(np.abs(extract_vector(res, 0, 8))) < 1e-3
