"""Tests for encryption and homomorphic evaluation."""

import numpy as np
import pytest

from repro.fhe import Ciphertext

TOL = 5e-4


def _vec(rng, n, complex_values=False):
    v = rng.uniform(-1, 1, n)
    if complex_values:
        v = v + 1j * rng.uniform(-1, 1, n)
    return v


class TestEncryptDecrypt:
    def test_roundtrip(self, small_context, rng):
        z = _vec(rng, small_context.params.slot_count, complex_values=True)
        out = small_context.decrypt_values(small_context.encrypt_values(z))
        assert np.max(np.abs(out - z)) < TOL

    def test_encrypt_at_lower_level(self, small_context, rng):
        z = _vec(rng, 8)
        ct = small_context.encrypt_values(z, level=3)
        assert ct.level == 3
        out = small_context.decrypt_values(ct, length=8)
        assert np.max(np.abs(out.real - z)) < TOL

    def test_fresh_ciphertext_shape(self, small_context):
        ct = small_context.encrypt_values([1.0])
        assert ct.degree == 2
        assert ct.level == small_context.params.max_level

    def test_ciphertexts_randomized(self, small_context):
        a = small_context.encrypt_values([1.0])
        b = small_context.encrypt_values([1.0])
        assert not a.polys[0].equals(b.polys[0])


class TestLinearOps:
    def test_add(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca, cb = small_context.encrypt_values(a), small_context.encrypt_values(b)
        out = small_context.decrypt_values(small_evaluator.add(ca, cb))
        assert np.max(np.abs(out.real - (a + b))) < TOL

    def test_sub(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca, cb = small_context.encrypt_values(a), small_context.encrypt_values(b)
        out = small_context.decrypt_values(small_evaluator.sub(ca, cb))
        assert np.max(np.abs(out.real - (a - b))) < TOL

    def test_negate(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        out = small_context.decrypt_values(
            small_evaluator.negate(small_context.encrypt_values(a))
        )
        assert np.max(np.abs(out.real + a)) < TOL

    def test_add_plain(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca = small_context.encrypt_values(a)
        pb = small_context.encode(b)
        out = small_context.decrypt_values(small_evaluator.add_plain(ca, pb))
        assert np.max(np.abs(out.real - (a + b))) < TOL

    def test_add_scalar(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        ca = small_context.encrypt_values(a)
        out = small_context.decrypt_values(small_evaluator.add_scalar(ca, 0.75))
        assert np.max(np.abs(out.real - (a + 0.75))) < TOL

    def test_add_many(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        vs = [_vec(rng, n) for _ in range(5)]
        cts = [small_context.encrypt_values(v) for v in vs]
        out = small_context.decrypt_values(small_evaluator.add_many(cts))
        assert np.max(np.abs(out.real - sum(vs))) < 5 * TOL

    def test_add_different_levels_aligns(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca = small_context.encrypt_values(a)
        cb = small_context.encrypt_values(b)
        cb = small_evaluator.mul_scalar(cb, 1.0)  # burn one level
        out = small_evaluator.add(ca, cb)
        assert out.level == cb.level
        res = small_context.decrypt_values(out)
        assert np.max(np.abs(res.real - (a + b))) < TOL


class TestMultiplication:
    def test_ct_ct(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca, cb = small_context.encrypt_values(a), small_context.encrypt_values(b)
        out = small_evaluator.mul(ca, cb)
        assert out.level == ca.level - 1
        res = small_context.decrypt_values(out)
        assert np.max(np.abs(res.real - a * b)) < TOL

    def test_no_relin_decrypts(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca, cb = small_context.encrypt_values(a), small_context.encrypt_values(b)
        tensored = small_evaluator.mul_no_relin(ca, cb)
        assert tensored.degree == 3
        res = small_context.decrypt_values(small_evaluator.rescale(tensored))
        assert np.max(np.abs(res.real - a * b)) < TOL

    def test_square(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        out = small_context.decrypt_values(
            small_evaluator.square(small_context.encrypt_values(a))
        )
        assert np.max(np.abs(out.real - a * a)) < TOL

    def test_mul_plain(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca = small_context.encrypt_values(a)
        out = small_context.decrypt_values(small_evaluator.mul_values(ca, b))
        assert np.max(np.abs(out.real - a * b)) < TOL

    def test_mul_scalar(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        ca = small_context.encrypt_values(a)
        out = small_context.decrypt_values(small_evaluator.mul_scalar(ca, -1.5))
        assert np.max(np.abs(out.real + 1.5 * a)) < TOL

    def test_depth_chain(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        ct = small_context.encrypt_values(a)
        expect = a.copy()
        for _ in range(4):
            ct = small_evaluator.square(ct)
            expect = expect * expect
            res = small_context.decrypt_values(ct)
            assert np.max(np.abs(res.real - expect)) < 0.01

    def test_level_exhaustion_raises(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([0.5], level=1)
        with pytest.raises(ValueError):
            small_evaluator.mul(ct, ct)

    def test_mixed_level_mul(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a, b = _vec(rng, n), _vec(rng, n)
        ca = small_context.encrypt_values(a)
        cb = small_evaluator.mul_scalar(small_context.encrypt_values(b), 1.0)
        res = small_context.decrypt_values(small_evaluator.mul(ca, cb))
        assert np.max(np.abs(res.real - a * b)) < TOL


class TestRotation:
    @pytest.mark.parametrize("r", [1, 2, 7, 31])
    def test_rotate(self, small_context, small_evaluator, rng, r):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        out = small_context.decrypt_values(
            small_evaluator.rotate(small_context.encrypt_values(a), r)
        )
        assert np.max(np.abs(out.real - np.roll(a, -r))) < TOL

    def test_rotate_zero_copies(self, small_context, small_evaluator, rng):
        a = _vec(rng, small_context.params.slot_count)
        ct = small_context.encrypt_values(a)
        out = small_evaluator.rotate(ct, 0)
        assert out is not ct
        assert out.polys[0].equals(ct.polys[0])

    def test_conjugate(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n, complex_values=True)
        out = small_context.decrypt_values(
            small_evaluator.conjugate(small_context.encrypt_values(a))
        )
        assert np.max(np.abs(out - np.conj(a))) < TOL

    def test_hoisted_matches_individual(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        ct = small_context.encrypt_values(a)
        hoisted = small_evaluator.rotate_hoisted(ct, [0, 1, 5, 9])
        for r, out in hoisted.items():
            res = small_context.decrypt_values(out)
            assert np.max(np.abs(res.real - np.roll(a, -r))) < TOL

    def test_rotate_and_sum(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        a = _vec(rng, n)
        ct = small_context.encrypt_values(a)
        out = small_context.decrypt_values(small_evaluator.rotate_and_sum(ct, 8))
        expect = sum(np.roll(a, -k) for k in range(8))
        assert np.max(np.abs(out.real - expect)) < 10 * TOL

    def test_rotate_and_sum_requires_power_of_two(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            small_evaluator.rotate_and_sum(ct, 6)


class TestRescale:
    def test_rescale_drops_level_and_scale(self, small_context, small_evaluator, rng):
        params = small_context.params
        a = _vec(rng, params.slot_count)
        ct = small_context.encrypt_values(a)
        raw = small_evaluator.mul_no_relin(ct, ct)
        rescaled = small_evaluator.rescale(small_evaluator.relinearize(raw))
        assert rescaled.level == ct.level - 1
        q_last = params.moduli[ct.level - 1]
        assert np.isclose(rescaled.scale, raw.scale / q_last)

    def test_rescale_level_one_raises(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([1.0], level=1)
        with pytest.raises(ValueError):
            small_evaluator.rescale(ct)


class TestMatchLevel:
    def test_exact_scale_landing(self, small_context, small_evaluator, rng):
        params = small_context.params
        a = _vec(rng, params.slot_count)
        ct = small_context.encrypt_values(a)
        target = params.scale_at_level(3)
        out = small_evaluator.match_level(ct, 3, target)
        assert out.level == 3
        assert np.isclose(out.scale, target, rtol=1e-12)
        res = small_context.decrypt_values(out)
        assert np.max(np.abs(res.real - a)) < TOL

    def test_raise_level_rejected(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([1.0], level=2)
        with pytest.raises(ValueError):
            small_evaluator.match_level(ct, 5)
