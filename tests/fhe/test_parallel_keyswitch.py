"""Tests for Cinnamon's parallel keyswitching algorithms (Section 4.3).

These pin down the paper's central algorithmic claims:
* input-broadcast and CiFHER keyswitching are bit-exact re-partitions of
  sequential keyswitching;
* output-aggregation keyswitching is noise-equivalent (bounded integer
  rounding difference);
* the batched program patterns need 1 broadcast / 2 aggregations total,
  versus O(r) broadcasts for CiFHER.
"""

import numpy as np
import pytest

from repro.fhe.keyswitch import keyswitch
from repro.fhe.parallel import (
    CommStats,
    ParallelKeyswitcher,
    batched_rotate_sum_output_aggregation,
    batched_rotations_input_broadcast,
    chip_of_limb,
    modular_partition,
)
from repro.fhe.rns import crt_reconstruct

LEVEL = 6
CHIPS = 4


@pytest.fixture(scope="module")
def setup(small_context):
    params = small_context.params
    kc = small_context.keychain
    d = kc.rng.uniform_poly(params.basis_at_level(LEVEL), params.ring_degree)
    return params, kc, d


class TestPartitioning:
    def test_modular_partition_covers_all_limbs(self):
        part = modular_partition(10, 3)
        flat = sorted(i for digit in part for i in digit)
        assert flat == list(range(10))

    def test_modular_partition_is_modular(self):
        part = modular_partition(12, 4)
        for c, digit in enumerate(part):
            assert all(i % 4 == c for i in digit)

    def test_chip_of_limb(self):
        assert [chip_of_limb(i, 4) for i in range(6)] == [0, 1, 2, 3, 0, 1]


class TestAlgorithms:
    def test_input_broadcast_bit_exact(self, setup):
        params, kc, d = setup
        evk = kc.relin_key(LEVEL)
        sw = ParallelKeyswitcher(params, CHIPS)
        f0s, f1s = keyswitch(d, evk, params)
        f0p, f1p = sw.input_broadcast(d, evk)
        assert f0s.equals(f0p) and f1s.equals(f1p)

    def test_cifher_bit_exact(self, setup):
        params, kc, d = setup
        evk = kc.relin_key(LEVEL)
        sw = ParallelKeyswitcher(params, CHIPS)
        f0s, f1s = keyswitch(d, evk, params)
        f0c, f1c = sw.cifher(d, evk)
        assert f0s.equals(f0c) and f1s.equals(f1c)

    def test_output_aggregation_noise_equivalent(self, setup):
        params, kc, d = setup
        partition = modular_partition(LEVEL, CHIPS)
        evk = kc.switching_key("relin", LEVEL, partition)
        sw = ParallelKeyswitcher(params, CHIPS)
        f0s, f1s = keyswitch(d, evk, params)
        f0o, f1o = sw.output_aggregation(d, evk)
        bound = CHIPS * (len(params.extension_moduli) + 1)
        for seq, par in ((f0s, f0o), (f1s, f1o)):
            diff = (seq - par).to_coeff()
            vals = crt_reconstruct(diff.data, diff.basis)
            assert max(abs(v) for v in vals) <= bound

    def test_output_aggregation_requires_modular_partition(self, setup):
        params, kc, d = setup
        evk = kc.relin_key(LEVEL)  # contiguous partition
        sw = ParallelKeyswitcher(params, CHIPS)
        with pytest.raises(ValueError):
            sw.output_aggregation(d, evk)

    @pytest.mark.parametrize("chips", [1, 2, 3, 4])
    def test_input_broadcast_any_chip_count(self, setup, chips):
        params, kc, d = setup
        evk = kc.relin_key(LEVEL)
        sw = ParallelKeyswitcher(params, chips)
        f0s, f1s = keyswitch(d, evk, params)
        f0p, f1p = sw.input_broadcast(d, evk)
        assert f0s.equals(f0p) and f1s.equals(f1p)


class TestCommunicationLedger:
    def test_input_broadcast_single_event(self, setup):
        params, kc, d = setup
        sw = ParallelKeyswitcher(params, CHIPS)
        sw.input_broadcast(d, kc.relin_key(LEVEL))
        assert sw.stats.broadcasts == 1
        assert sw.stats.aggregations == 0
        assert sw.stats.limbs_broadcast == LEVEL * (CHIPS - 1)

    def test_cifher_three_events(self, setup):
        params, kc, d = setup
        sw = ParallelKeyswitcher(params, CHIPS)
        sw.cifher(d, kc.relin_key(LEVEL))
        assert sw.stats.broadcasts == 3

    def test_output_aggregation_two_events(self, setup):
        params, kc, d = setup
        partition = modular_partition(LEVEL, CHIPS)
        evk = kc.switching_key("relin", LEVEL, partition)
        sw = ParallelKeyswitcher(params, CHIPS)
        sw.output_aggregation(d, evk)
        assert sw.stats.aggregations == 2
        assert sw.stats.broadcasts == 0

    def test_bytes_accounting(self, setup):
        params, _, _ = setup
        stats = CommStats(limb_bytes=params.limb_bytes)
        stats.record_broadcast(10, 4)
        assert stats.limbs_broadcast == 30
        assert stats.bytes_moved == 30 * params.limb_bytes

    def test_reset(self, setup):
        params, kc, d = setup
        sw = ParallelKeyswitcher(params, CHIPS)
        sw.input_broadcast(d, kc.relin_key(LEVEL))
        sw.reset_stats()
        assert sw.stats.events == 0


class TestBatchedPatterns:
    """The paper's two program patterns (Section 4.3.1 / 7.4)."""

    def test_pattern1_one_broadcast_for_r_rotations(self, small_context, rng):
        params = small_context.params
        kc = small_context.keychain
        sw = ParallelKeyswitcher(params, CHIPS)
        z = rng.uniform(-1, 1, params.slot_count)
        ct = small_context.encrypt_values(z)
        rotations = [1, 2, 3, 5, 8]
        outs = batched_rotations_input_broadcast(sw, kc, ct, rotations)
        assert sw.stats.broadcasts == 1  # not O(r)
        for r in rotations:
            res = small_context.decrypt_values(outs[r])
            assert np.max(np.abs(res.real - np.roll(z, -r))) < 1e-3

    def test_pattern2_two_aggregations_for_r_rotations(self, small_context, rng):
        params = small_context.params
        kc = small_context.keychain
        sw = ParallelKeyswitcher(params, CHIPS)
        rotations = [0, 1, 2, 3]
        vals = [rng.uniform(-1, 1, params.slot_count) for _ in rotations]
        cts = [small_context.encrypt_values(v) for v in vals]
        out = batched_rotate_sum_output_aggregation(sw, kc, cts, rotations)
        assert sw.stats.aggregations == 2  # not O(r)
        expect = sum(np.roll(v, -r) for v, r in zip(vals, rotations))
        res = small_context.decrypt_values(out)
        assert np.max(np.abs(res.real - expect)) < 1e-3

    def test_pattern2_all_identity(self, small_context, rng):
        params = small_context.params
        kc = small_context.keychain
        sw = ParallelKeyswitcher(params, CHIPS)
        vals = [rng.uniform(-1, 1, params.slot_count) for _ in range(3)]
        cts = [small_context.encrypt_values(v) for v in vals]
        out = batched_rotate_sum_output_aggregation(sw, kc, cts, [0, 0, 0])
        assert sw.stats.events == 0
        res = small_context.decrypt_values(out)
        assert np.max(np.abs(res.real - sum(vals))) < 1e-3

    def test_pattern2_length_mismatch_raises(self, small_context):
        params = small_context.params
        sw = ParallelKeyswitcher(params, CHIPS)
        ct = small_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            batched_rotate_sum_output_aggregation(
                sw, small_context.keychain, [ct], [1, 2]
            )


class TestAlgorithmicAnalysis:
    """Section 7.4: communication comparison, Cinnamon vs CiFHER."""

    def test_cinnamon_vs_cifher_event_counts(self, setup):
        params, kc, d = setup
        r = 8
        evk = kc.relin_key(LEVEL)
        cif = ParallelKeyswitcher(params, CHIPS)
        for _ in range(r):
            cif.cifher(d, evk)
        # CiFHER with mod-up batching still pays 2 broadcasts per keyswitch.
        cifher_batched = 1 + 2 * r
        assert cif.stats.broadcasts == 3 * r
        cin = ParallelKeyswitcher(params, CHIPS)
        for i in range(r):
            cin.input_broadcast(d, evk, already_broadcast=(i > 0))
        assert cin.stats.broadcasts == 1
        assert cin.stats.broadcasts < cifher_batched
