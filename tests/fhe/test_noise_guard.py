"""Noise-budget guardrail: tracked estimates and typed exhaustion."""

import numpy as np
import pytest

from repro.fhe import Evaluator, NoiseBudgetExhausted
from repro.fhe.noise import measured_error_bits


class TestTracking:
    def test_default_evaluator_does_not_track(self, small_context, rng):
        ev = Evaluator(small_context)
        a = small_context.encrypt_values(
            rng.uniform(-1, 1, small_context.params.slot_count))
        out = ev.mul(a, a)
        assert out.noise is None
        assert not ev.track_noise

    def test_tracked_ops_attach_estimates(self, small_context, rng):
        ev = Evaluator(small_context, track_noise=True)
        za = rng.uniform(-1, 1, small_context.params.slot_count)
        a = small_context.encrypt_values(za)
        prod = ev.mul(a, a)
        assert prod.noise is not None
        assert prod.noise.level == prod.level
        rot = ev.rotate(prod, 1)
        assert rot.noise.ring_std > 0
        total = ev.add(prod, rot)
        assert total.noise.ring_std >= prod.noise.ring_std
        assert ev.noise_of(total).error_bits == total.noise.error_bits

    def test_estimate_within_two_orders_of_measurement(self, small_context,
                                                       rng):
        ev = Evaluator(small_context, track_noise=True)
        za = rng.uniform(-1, 1, small_context.params.slot_count)
        zb = rng.uniform(-1, 1, small_context.params.slot_count)
        a = small_context.encrypt_values(za)
        b = small_context.encrypt_values(zb)
        out = ev.add(ev.mul(a, b), ev.rotate(ev.mul(a, a), 1))
        expect = za * zb + np.roll(za * za, -1)
        predicted = out.noise.error_bits
        measured = measured_error_bits(small_context, out, expect)
        # The analytic model is an average-case heuristic; hold it to the
        # ~two-orders-of-magnitude class such estimators achieve.
        assert abs(predicted - measured) < 7.0
        assert measured < -8.0        # and the result is actually usable

    def test_copies_propagate_the_estimate(self, small_context, rng):
        ev = Evaluator(small_context, track_noise=True)
        a = small_context.encrypt_values(
            rng.uniform(-1, 1, small_context.params.slot_count))
        prod = ev.mul(a, a)
        assert prod.copy().noise is prod.noise
        assert prod.at_level(prod.level).noise is prod.noise


class TestBudget:
    def test_budget_trips_with_context(self, small_context, rng):
        # Demanding 2^-60 precision from 28-bit primes is impossible: the
        # first tracked multiply must refuse instead of decrypting noise.
        ev = Evaluator(small_context, noise_budget_bits=-60)
        assert ev.track_noise
        a = small_context.encrypt_values(
            rng.uniform(-1, 1, small_context.params.slot_count))
        with pytest.raises(NoiseBudgetExhausted) as info:
            ev.mul(a, a)
        exc = info.value
        assert exc.operation == "mul"
        assert exc.level == small_context.params.max_level - 1
        assert exc.error_bits > exc.budget_bits == -60

    def test_loose_budget_never_trips(self, small_context, rng):
        ev = Evaluator(small_context, noise_budget_bits=-1)
        za = rng.uniform(-1, 1, small_context.params.slot_count)
        a = small_context.encrypt_values(za)
        out = ev.mul(ev.add(a, a), a)
        got = small_context.decrypt_values(out, 4)
        assert np.allclose(got.real, (2 * za * za)[:4], atol=1e-3)

    def test_guard_fires_before_garbage_decrypt(self, small_context, rng):
        # Walk a squaring chain with a realistic budget: every completed
        # operation must still decrypt to better accuracy than the
        # budget, so the raise happens strictly before quality is lost.
        budget = -10.0
        ev = Evaluator(small_context, noise_budget_bits=budget)
        za = rng.uniform(0.5, 0.9, small_context.params.slot_count)
        ct = small_context.encrypt_values(za)
        expect = za.copy()
        with pytest.raises(NoiseBudgetExhausted):
            for _ in range(small_context.params.max_level):
                ct = ev.mul(ct, ct)
                expect = expect * expect
                assert measured_error_bits(small_context, ct,
                                           expect) < budget
