"""Tests for NTT-friendly prime generation and the negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.ntt import get_tables, intt, ntt, ntt_batch, intt_batch, \
    negacyclic_convolve_reference
from repro.fhe.primes import find_root_of_unity, generate_primes


class TestPrimeGeneration:
    def test_congruence_condition(self):
        for n in (64, 256, 1024):
            for p in generate_primes(3, 28, n):
                assert p % (2 * n) == 1
                assert modmath.is_prime(p)

    def test_count_and_distinct(self):
        primes = generate_primes(10, 28, 128)
        assert len(primes) == 10
        assert len(set(primes)) == 10

    def test_exclusion(self):
        base = generate_primes(3, 28, 128)
        more = generate_primes(3, 28, 128, exclude=tuple(base))
        assert not set(base) & set(more)

    def test_ascending_generation(self):
        primes = generate_primes(3, 29, 128, descending=False)
        assert all(p >= 2**28 for p in primes)

    def test_too_wide_raises(self):
        with pytest.raises(ValueError):
            generate_primes(1, 40, 128)

    def test_too_narrow_raises(self):
        with pytest.raises(ValueError):
            generate_primes(1, 10, 4096)


class TestRootsOfUnity:
    def test_root_order(self):
        p = generate_primes(1, 28, 256)[0]
        root = find_root_of_unity(p, 512)
        assert pow(root, 512, p) == 1
        assert pow(root, 256, p) == p - 1  # primitive: half-order is -1

    def test_non_dividing_order_raises(self):
        p = generate_primes(1, 28, 256)[0]
        with pytest.raises(ValueError):
            find_root_of_unity(p, 3 * 512 * 7919)


class TestNtt:
    @pytest.mark.parametrize("n", [4, 16, 64, 256, 1024])
    def test_roundtrip(self, n):
        p = generate_primes(1, 28, n)[0]
        rng = np.random.default_rng(n)
        a = rng.integers(0, p, n, dtype=np.uint64)
        assert np.array_equal(intt(ntt(a, p), p), a)

    def test_matches_direct_evaluation(self):
        n = 8
        p = generate_primes(1, 15, n)[0]
        tables = get_tables(p, n)
        a = np.arange(1, n + 1, dtype=np.uint64)
        out = ntt(a, p)
        # Output index j holds a(psi^(2*brv(j)+1)).
        def brv(x, bits):
            return int(format(x, f"0{bits}b")[::-1], 2)
        for j in range(n):
            k = 2 * brv(j, 3) + 1
            x = pow(tables.psi, k, p)
            direct = sum(int(a[i]) * pow(x, i, p) for i in range(n)) % p
            assert int(out[j]) == direct

    def test_convolution_theorem(self):
        n = 64
        p = generate_primes(1, 28, n)[0]
        rng = np.random.default_rng(7)
        a = rng.integers(0, p, n, dtype=np.uint64)
        b = rng.integers(0, p, n, dtype=np.uint64)
        via_ntt = intt((ntt(a, p) * ntt(b, p)) % np.uint64(p), p)
        assert np.array_equal(via_ntt, negacyclic_convolve_reference(a, b, p))

    def test_negacyclic_wraparound_sign(self):
        # x^(n-1) * x = x^n = -1 in the quotient ring.
        n = 16
        p = generate_primes(1, 20, n)[0]
        a = np.zeros(n, dtype=np.uint64)
        b = np.zeros(n, dtype=np.uint64)
        a[n - 1] = 1
        b[1] = 1
        prod = intt((ntt(a, p) * ntt(b, p)) % np.uint64(p), p)
        expect = np.zeros(n, dtype=np.uint64)
        expect[0] = p - 1
        assert np.array_equal(prod, expect)

    def test_linearity(self):
        n = 128
        p = generate_primes(1, 28, n)[0]
        rng = np.random.default_rng(9)
        a = rng.integers(0, p, n, dtype=np.uint64)
        b = rng.integers(0, p, n, dtype=np.uint64)
        lhs = ntt((a + b) % np.uint64(p), p)
        rhs = (ntt(a, p) + ntt(b, p)) % np.uint64(p)
        assert np.array_equal(lhs, rhs)

    def test_batch_matches_single(self):
        n = 64
        primes = generate_primes(3, 28, n)
        rng = np.random.default_rng(11)
        limbs = np.stack([rng.integers(0, p, n, dtype=np.uint64) for p in primes])
        batch = ntt_batch(limbs, primes)
        for j, p in enumerate(primes):
            assert np.array_equal(batch[j], ntt(limbs[j], p))
        assert np.array_equal(intt_batch(batch, primes), limbs)


@given(st.integers(0, 2**28), st.integers(0, 2**28))
@settings(max_examples=25, deadline=None)
def test_property_ntt_scalar_mul(x, y):
    """NTT(c * a) == c * NTT(a)."""
    n = 32
    p = generate_primes(1, 28, n)[0]
    rng = np.random.default_rng(42)
    a = rng.integers(0, p, n, dtype=np.uint64)
    c = np.uint64(x % p)
    lhs = ntt((a * c) % np.uint64(p), p)
    rhs = (ntt(a, p) * c) % np.uint64(p)
    assert np.array_equal(lhs, rhs)
