"""Tests for RNS base conversion, mod-up, and mod-down."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.primes import generate_primes
from repro.fhe.rns import (
    base_convert,
    basis_product,
    crt_reconstruct,
    integers_to_rns,
    mod_down,
    mod_up,
)

N = 16


@pytest.fixture(scope="module")
def bases():
    """Source basis of 3 primes, target basis of 5.

    The target product dominates ``l * Q`` so approximate-conversion lifts
    are representable without wraparound, making the congruence assertions
    below exact.
    """
    primes = generate_primes(8, 28, N)
    return tuple(primes[:3]), tuple(primes[3:])


def _random_bigints(rng, low: int, high: int, count: int):
    span = high - low
    return [low + int.from_bytes(rng.bytes(24), "little") % span
            for _ in range(count)]


class TestCrt:
    def test_roundtrip(self, bases):
        source, _ = bases
        q = basis_product(source)
        rng = np.random.default_rng(0)
        values = _random_bigints(rng, -(q // 3), q // 3, N)
        limbs = integers_to_rns(values, source)
        assert crt_reconstruct(limbs, source) == values

    def test_centered_output(self, bases):
        source, _ = bases
        q = basis_product(source)
        limbs = integers_to_rns([q - 1], source)  # == -1 centered
        assert crt_reconstruct(limbs, source) == [-1]


class TestBaseConvert:
    def test_congruence_and_small_multiple(self, bases):
        """Approximate conversion is exact up to u*Q with |u| <= l."""
        source, target = bases
        q = basis_product(source)
        rng = np.random.default_rng(1)
        values = _random_bigints(rng, 0, q, N)
        limbs = integers_to_rns(values, source)
        out = base_convert(limbs, source, target)
        recovered = crt_reconstruct(out, target)
        for got, want in zip(recovered, values):
            diff = int(got) - int(want)
            assert diff % q == 0
            assert abs(diff) // q <= len(source)

    def test_small_values_exact(self, bases):
        """Values far below Q convert exactly (u = 0 up to representative)."""
        source, target = bases
        values = list(range(-5, 11))
        limbs = integers_to_rns(values, source)
        out = base_convert(limbs, source, target)
        recovered = crt_reconstruct(out, target)
        q = basis_product(source)
        for got, want in zip(recovered, values):
            assert (int(got) - want) % q == 0

    def test_wrong_limb_count_raises(self, bases):
        source, target = bases
        with pytest.raises(ValueError):
            base_convert(np.zeros((2, N), dtype=np.uint64), source, target)


class TestModUp:
    def test_existing_limbs_copied_verbatim(self, bases):
        source, target = bases
        rng = np.random.default_rng(2)
        limbs = np.stack(
            [rng.integers(0, p, N, dtype=np.uint64) for p in source]
        )
        up = mod_up(limbs, source, source + target)
        assert np.array_equal(up[: len(source)], limbs)

    def test_congruence_preserved(self, bases):
        source, target = bases
        q = basis_product(source)
        rng = np.random.default_rng(3)
        values = _random_bigints(rng, 0, q, N)
        limbs = integers_to_rns(values, source)
        up = mod_up(limbs, source, source + target)
        recovered = crt_reconstruct(up, source + target)
        for got, want in zip(recovered, values):
            assert (int(got) - want) % q == 0


class TestModDown:
    def test_inverts_scaling_by_extension(self, bases):
        """mod_down(P*x) == x exactly when P*x is representable."""
        source, ext = bases
        p_total = basis_product(ext)
        rng = np.random.default_rng(4)
        xs = [int(v) for v in rng.integers(-1000, 1000, N)]
        scaled = [x * p_total for x in xs]
        limbs = integers_to_rns(scaled, source + ext)
        down = mod_down(limbs, source, ext)
        assert crt_reconstruct(down, source) == xs

    def test_rounding_error_small(self, bases):
        """For arbitrary x, mod_down(x) is x/P up to a small integer."""
        source, ext = bases
        p_total = basis_product(ext)
        q = basis_product(source)
        rng = np.random.default_rng(5)
        xs = _random_bigints(rng, 0, q, N)
        limbs = integers_to_rns(xs, source + ext)
        down = mod_down(limbs, source, ext)
        recovered = crt_reconstruct(down, source)
        for got, x in zip(recovered, xs):
            # got == (x - r)/P mod q for some r == x (mod P), |r| < len(ext)*P
            err = (int(got) * p_total - x) % q
            err = min(err, q - err)
            assert err <= (len(ext) + 1) * p_total

    def test_wrong_shape_raises(self, bases):
        source, ext = bases
        with pytest.raises(ValueError):
            mod_down(np.zeros((2, N), dtype=np.uint64), source, ext)


@given(st.integers(min_value=-(10**12), max_value=10**12))
@settings(max_examples=50, deadline=None)
def test_property_rns_respects_integer_ring(x):
    """(x + x) and (x * 3) computed limb-wise match the integers."""
    primes = tuple(generate_primes(3, 28, N))
    limbs = integers_to_rns([x], primes)
    doubled = (limbs + limbs) % np.array(primes, dtype=np.uint64).reshape(-1, 1)
    tripled = (limbs * np.uint64(3)) % np.array(primes, dtype=np.uint64).reshape(-1, 1)
    assert crt_reconstruct(doubled, primes)[0] == 2 * x
    assert crt_reconstruct(tripled, primes)[0] == 3 * x
