"""Tests for the encrypted analytics kernels."""

import numpy as np
import pytest

from repro.fhe.analytics import (
    encrypted_count_above,
    encrypted_inner_product,
    encrypted_mean,
    encrypted_soft_threshold,
    encrypted_sum,
    encrypted_variance,
)

COUNT = 32


def _packed(context, rng, count=COUNT, low=-1.0, high=1.0):
    values = rng.uniform(low, high, count)
    padded = np.zeros(context.params.slot_count)
    padded[:count] = values
    return values, context.encrypt_values(padded)


class TestAggregates:
    def test_sum(self, deep_context, deep_evaluator, rng):
        values, ct = _packed(deep_context, rng)
        out = encrypted_sum(deep_evaluator, ct, COUNT)
        got = deep_context.decrypt_values(out).real
        assert np.max(np.abs(got - values.sum())) < 1e-2

    def test_sum_rejects_bad_count(self, deep_context, deep_evaluator):
        ct = deep_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            encrypted_sum(deep_evaluator, ct, 3)

    def test_mean(self, deep_context, deep_evaluator, rng):
        values, ct = _packed(deep_context, rng)
        out = encrypted_mean(deep_evaluator, ct, COUNT)
        got = deep_context.decrypt_values(out).real[0]
        assert abs(got - values.mean()) < 1e-3

    def test_inner_product(self, deep_context, deep_evaluator, rng):
        a_vals, a = _packed(deep_context, rng)
        b_vals, b = _packed(deep_context, rng)
        out = encrypted_inner_product(deep_evaluator, a, b, COUNT)
        got = deep_context.decrypt_values(out).real[0]
        assert abs(got - a_vals @ b_vals) < 5e-2

    def test_variance(self, deep_context, deep_evaluator, rng):
        values, ct = _packed(deep_context, rng)
        out = encrypted_variance(deep_evaluator, ct, COUNT)
        got = deep_context.decrypt_values(out).real[0]
        # E[x^2] uses the mean over *all* slots of x^2 restricted to the
        # prefix; with zero padding that is sum/COUNT as implemented.
        expect = np.mean(values**2) - np.mean(values) ** 2
        assert abs(got - expect) < 5e-2


class TestThresholding:
    def test_soft_threshold_monotone(self, deep_context, deep_evaluator):
        slots = deep_context.params.slot_count
        x = np.linspace(-1, 1, slots)
        ct = deep_context.encrypt_values(x)
        out = encrypted_soft_threshold(deep_evaluator, ct, threshold=0.2)
        got = deep_context.decrypt_values(out).real
        assert got[0] < 0.2          # far below threshold
        assert got[-1] > 0.8         # far above
        assert abs(got[np.argmin(np.abs(x - 0.2))] - 0.5) < 0.1

    def test_count_above(self, deep_context, deep_evaluator, rng):
        values = rng.uniform(-1, 1, COUNT)
        padded = np.full(deep_context.params.slot_count, -1.0)
        padded[:COUNT] = values
        ct = deep_context.encrypt_values(padded)
        out = encrypted_count_above(deep_evaluator, ct, COUNT,
                                    threshold=0.0, sharpness=12.0)
        got = deep_context.decrypt_values(out).real[0]
        # Padding contributes ~sigmoid(-12) each; subtract that baseline.
        slots = deep_context.params.slot_count
        baseline = (slots - COUNT) / (1 + np.exp(12.0))
        true_count = np.sum(values > 0)
        assert abs((got - baseline) - true_count) < 2.0
