"""Tests for the wire format: params/ciphertext/plaintext round trips."""

import numpy as np
import pytest

from repro.fhe import CKKSContext
from repro.fhe.serialize import (
    ciphertext_wire_bytes,
    dump_ciphertext,
    dump_params,
    dump_plaintext,
    load_ciphertext,
    load_params,
    load_plaintext,
    params_fingerprint,
)


class TestParams:
    def test_roundtrip(self, small_params):
        restored = load_params(dump_params(small_params))
        assert restored == small_params

    def test_fingerprint_stable(self, small_params):
        assert params_fingerprint(small_params) == \
            params_fingerprint(load_params(dump_params(small_params)))

    def test_fingerprint_distinguishes(self, small_params, deep_params):
        assert params_fingerprint(small_params) != \
            params_fingerprint(deep_params)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            load_params(b'{"magic": "nope"}')


class TestCiphertext:
    def test_roundtrip_decrypts(self, small_context, rng):
        z = rng.uniform(-1, 1, small_context.params.slot_count)
        ct = small_context.encrypt_values(z)
        wire = dump_ciphertext(ct, small_context.params)
        back = load_ciphertext(wire, small_context.params)
        assert back.scale == ct.scale
        assert back.level == ct.level
        got = small_context.decrypt_values(back).real
        assert np.max(np.abs(got - z)) < 1e-3

    def test_roundtrip_is_bit_exact(self, small_context):
        ct = small_context.encrypt_values([0.5, -0.5])
        back = load_ciphertext(dump_ciphertext(ct, small_context.params),
                               small_context.params)
        for a, b in zip(ct.polys, back.polys):
            assert a.equals(b)

    def test_cross_context_rejected(self, small_context, deep_context):
        ct = small_context.encrypt_values([1.0])
        wire = dump_ciphertext(ct, small_context.params)
        with pytest.raises(ValueError, match="fingerprint"):
            load_ciphertext(wire, deep_context.params)

    def test_usable_after_roundtrip(self, small_context, small_evaluator, rng):
        z = rng.uniform(-1, 1, small_context.params.slot_count)
        ct = load_ciphertext(
            dump_ciphertext(small_context.encrypt_values(z),
                            small_context.params),
            small_context.params)
        out = small_context.decrypt_values(small_evaluator.square(ct)).real
        assert np.max(np.abs(out - z * z)) < 1e-3


class TestPlaintext:
    def test_roundtrip(self, small_context, rng):
        z = rng.uniform(-1, 1, small_context.params.slot_count)
        pt = small_context.encode(z)
        back = load_plaintext(dump_plaintext(pt, small_context.params),
                              small_context.params)
        got = small_context.decode(back)
        assert np.max(np.abs(got - z)) < 1e-3


class TestWireSize:
    def test_paper_ciphertext_size(self):
        """A fresh N=64K ciphertext at L~40 is ~20 MB (Section 3.2)."""
        from repro.fhe import ArchParams

        arch = ArchParams()
        size = 2 * 40 * arch.limb_bytes
        assert 19e6 < size < 22e6

    def test_helper(self, small_params):
        assert ciphertext_wire_bytes(small_params, 4) == \
            2 * 4 * small_params.limb_bytes
