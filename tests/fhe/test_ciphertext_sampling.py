"""Tests for the ciphertext container and randomness sampling."""

import numpy as np
import pytest

from repro.fhe.ciphertext import Ciphertext
from repro.fhe.polynomial import RnsPolynomial
from repro.fhe.sampling import FheRng


class TestCiphertext:
    def test_basis_mismatch_rejected(self, small_params):
        basis = small_params.basis_at_level(4)
        a = RnsPolynomial.zero(basis, small_params.ring_degree)
        b = RnsPolynomial.zero(small_params.basis_at_level(3),
                               small_params.ring_degree)
        with pytest.raises(ValueError):
            Ciphertext([a, b], 2.0**28)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ciphertext([], 2.0**28)

    def test_at_level_drops_limbs(self, small_context):
        ct = small_context.encrypt_values([1.0])
        dropped = ct.at_level(3)
        assert dropped.level == 3
        assert dropped.scale == ct.scale
        assert ct.level == small_context.params.max_level  # original intact

    def test_at_level_same_is_identity(self, small_context):
        ct = small_context.encrypt_values([1.0])
        assert ct.at_level(ct.level) is ct

    def test_copy_is_deep(self, small_context):
        ct = small_context.encrypt_values([1.0])
        clone = ct.copy()
        clone.polys[0].data[0][0] += np.uint64(1)
        assert not clone.polys[0].equals(ct.polys[0])

    def test_degree(self, small_context, small_evaluator):
        a = small_context.encrypt_values([0.5])
        assert a.degree == 2
        assert small_evaluator.mul_no_relin(a, a).degree == 3

    def test_repr(self, small_context):
        text = repr(small_context.encrypt_values([1.0]))
        assert "degree=2" in text and "level=" in text


class TestSampling:
    def test_deterministic_with_seed(self, small_params):
        a = FheRng(7).ternary_secret(64)
        b = FheRng(7).ternary_secret(64)
        assert np.array_equal(a, b)

    def test_ternary_range(self):
        coeffs = FheRng(1).ternary_secret(4096)
        assert set(np.unique(coeffs)) <= {-1, 0, 1}

    def test_sparse_secret_weight(self):
        coeffs = FheRng(2).ternary_secret(1024, hamming_weight=64)
        assert np.count_nonzero(coeffs) == 64
        assert set(np.unique(coeffs[coeffs != 0])) <= {-1, 1}

    def test_sparse_weight_too_large(self):
        with pytest.raises(ValueError):
            FheRng(3).ternary_secret(16, hamming_weight=17)

    def test_uniform_poly_in_range(self, small_params):
        rng = FheRng(4)
        basis = small_params.basis_at_level(3)
        poly = rng.uniform_poly(basis, small_params.ring_degree)
        for j, q in enumerate(basis):
            assert poly.data[j].max() < q

    def test_gaussian_concentrated(self):
        errs = FheRng(5).gaussian_coeffs(8192, std=3.2)
        assert abs(float(np.std(errs)) - 3.2) < 0.3
        assert np.abs(errs).max() < 32

    def test_error_poly_roundtrip(self, small_params):
        rng = FheRng(6)
        basis = small_params.basis_at_level(2)
        poly = rng.error_poly(basis, small_params.ring_degree, 3.2)
        from repro.fhe.modmath import centered
        coeffs = centered(poly.to_coeff().data[0], basis[0])
        assert np.abs(coeffs).max() < 40
