"""Unit tests for vectorized modular arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath


PRIME = 268369921  # 28-bit NTT-friendly prime


def _rand(rng, n=64, p=PRIME):
    return rng.integers(0, p, n, dtype=np.uint64)


class TestVectorOps:
    def test_add_matches_python(self):
        rng = np.random.default_rng(0)
        a, b = _rand(rng), _rand(rng)
        out = modmath.mod_add(a, b, PRIME)
        expect = [(int(x) + int(y)) % PRIME for x, y in zip(a, b)]
        assert out.tolist() == expect

    def test_sub_matches_python(self):
        rng = np.random.default_rng(1)
        a, b = _rand(rng), _rand(rng)
        out = modmath.mod_sub(a, b, PRIME)
        expect = [(int(x) - int(y)) % PRIME for x, y in zip(a, b)]
        assert out.tolist() == expect

    def test_mul_matches_python(self):
        rng = np.random.default_rng(2)
        a, b = _rand(rng), _rand(rng)
        out = modmath.mod_mul(a, b, PRIME)
        expect = [(int(x) * int(y)) % PRIME for x, y in zip(a, b)]
        assert out.tolist() == expect

    def test_mul_no_overflow_at_max_prime_width(self):
        p = (1 << modmath.MAX_PRIME_BITS) - 1
        a = np.array([p - 1], dtype=np.uint64)
        out = modmath.mod_mul(a, a, p)
        assert int(out[0]) == ((p - 1) * (p - 1)) % p

    def test_neg(self):
        a = np.array([0, 1, PRIME - 1], dtype=np.uint64)
        out = modmath.mod_neg(a, PRIME)
        assert out.tolist() == [0, PRIME - 1, 1]

    def test_scalar_mul_reduces_scalar(self):
        a = np.array([2, 3], dtype=np.uint64)
        out = modmath.mod_scalar_mul(a, PRIME + 5, PRIME)
        assert out.tolist() == [10, 15]


class TestScalarOps:
    def test_mod_inv_prime(self):
        for a in (1, 2, 12345, PRIME - 1):
            inv = modmath.mod_inv(a, PRIME)
            assert (a * inv) % PRIME == 1

    def test_mod_inv_composite_modulus(self):
        m = 268369921 * 268361729  # composite digit product
        a = 987654321
        inv = modmath.mod_inv(a, m)
        assert (a * inv) % m == 1

    def test_mod_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            modmath.mod_inv(0, PRIME)

    def test_mod_inv_non_coprime_raises(self):
        with pytest.raises(ValueError):
            modmath.mod_inv(6, 9)


class TestRepresentations:
    def test_centered_range(self):
        a = np.arange(PRIME - 3, PRIME, dtype=np.uint64) % np.uint64(PRIME)
        c = modmath.centered(a, PRIME)
        assert (c < 0).all()
        assert (np.abs(c) <= PRIME // 2).all()

    def test_centered_roundtrip(self):
        rng = np.random.default_rng(3)
        a = _rand(rng)
        back = modmath.from_signed(modmath.centered(a, PRIME), PRIME)
        assert np.array_equal(back, a)

    def test_from_signed_negative(self):
        out = modmath.from_signed(np.array([-1, -PRIME - 1]), PRIME)
        assert out.tolist() == [PRIME - 1, PRIME - 1]

    def test_batch_mod_bigints(self):
        vals = [10**30, -(10**30), 0]
        out = modmath.batch_mod(vals, PRIME)
        assert out.tolist() == [10**30 % PRIME, -(10**30) % PRIME, 0]


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 268369921, 2**31 - 1):
            assert modmath.is_prime(p)

    def test_known_composites(self):
        for c in (0, 1, 4, 561, 2**31 + 1, 268369921 * 3):
            assert not modmath.is_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 41041, 825265):
            assert not modmath.is_prime(c)


@given(st.lists(st.integers(0, PRIME - 1), min_size=1, max_size=32),
       st.lists(st.integers(0, PRIME - 1), min_size=1, max_size=32))
@settings(max_examples=50, deadline=None)
def test_property_mul_commutative(xs, ys):
    n = min(len(xs), len(ys))
    a = np.array(xs[:n], dtype=np.uint64)
    b = np.array(ys[:n], dtype=np.uint64)
    assert np.array_equal(modmath.mod_mul(a, b, PRIME), modmath.mod_mul(b, a, PRIME))


@given(st.integers(1, PRIME - 1))
@settings(max_examples=100, deadline=None)
def test_property_inverse_roundtrip(a):
    assert (a * modmath.mod_inv(a, PRIME)) % PRIME == 1
