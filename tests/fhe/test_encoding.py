"""Tests for CKKS canonical-embedding encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.encoding import (
    CKKSEncoder,
    conjugation_galois_element,
    rotation_galois_element,
)

TOL = 1e-4


class TestRoundtrip:
    def test_real_vector(self, small_context, rng):
        enc = small_context.encoder
        z = rng.uniform(-1, 1, small_context.params.slot_count)
        out = enc.decode(enc.encode(z))
        assert np.max(np.abs(out - z)) < TOL

    def test_complex_vector(self, small_context, rng):
        enc = small_context.encoder
        n = small_context.params.slot_count
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        out = enc.decode(enc.encode(z))
        assert np.max(np.abs(out - z)) < TOL

    def test_short_vector_zero_padded(self, small_context):
        enc = small_context.encoder
        out = enc.decode(enc.encode([1.0, 2.0]))
        assert abs(out[0] - 1.0) < TOL and abs(out[1] - 2.0) < TOL
        assert np.max(np.abs(out[2:])) < TOL

    def test_too_long_raises(self, small_context):
        enc = small_context.encoder
        with pytest.raises(ValueError):
            enc.encode(np.zeros(small_context.params.slot_count + 1))

    def test_constant(self, small_context):
        enc = small_context.encoder
        out = enc.decode(enc.encode_constant(0.5 + 0.25j))
        assert np.max(np.abs(out - (0.5 + 0.25j))) < TOL

    def test_decode_length(self, small_context):
        enc = small_context.encoder
        out = enc.decode(enc.encode([1.0, 2.0, 3.0]), length=3)
        assert out.shape == (3,)


class TestHomomorphicStructure:
    """Encoding is a ring homomorphism: slots add/multiply pointwise."""

    def test_plaintext_addition(self, small_context, rng):
        enc = small_context.encoder
        n = small_context.params.slot_count
        a, b = rng.uniform(-1, 1, n), rng.uniform(-1, 1, n)
        pa, pb = enc.encode(a), enc.encode(b)
        summed = pa.poly + pb.poly
        out = enc.decode(type(pa)(summed, pa.scale))
        assert np.max(np.abs(out - (a + b))) < TOL

    def test_plaintext_multiplication(self, small_context, rng):
        from repro.fhe.encoding import Plaintext

        enc = small_context.encoder
        n = small_context.params.slot_count
        a, b = rng.uniform(-1, 1, n), rng.uniform(-1, 1, n)
        pa, pb = enc.encode(a), enc.encode(b)
        prod = pa.poly * pb.poly
        out = enc.decode(Plaintext(prod, pa.scale * pb.scale))
        assert np.max(np.abs(out - a * b)) < 10 * TOL

    def test_automorphism_rotates_slots(self, small_context, rng):
        from repro.fhe.encoding import Plaintext

        enc = small_context.encoder
        params = small_context.params
        n = params.slot_count
        z = rng.uniform(-1, 1, n)
        pt = enc.encode(z)
        for r in (1, 3, n // 2):
            k = rotation_galois_element(r, params.ring_degree)
            rotated = pt.poly.automorphism(k)
            out = enc.decode(Plaintext(rotated, pt.scale))
            assert np.max(np.abs(out - np.roll(z, -r))) < TOL

    def test_conjugation_element(self, small_context, rng):
        from repro.fhe.encoding import Plaintext

        enc = small_context.encoder
        params = small_context.params
        n = params.slot_count
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        pt = enc.encode(z)
        k = conjugation_galois_element(params.ring_degree)
        out = enc.decode(Plaintext(pt.poly.automorphism(k), pt.scale))
        assert np.max(np.abs(out - np.conj(z))) < TOL


class TestGaloisElements:
    def test_rotation_element_is_odd(self):
        for r in range(1, 16):
            assert rotation_galois_element(r, 256) % 2 == 1

    def test_rotation_zero_is_identity(self):
        assert rotation_galois_element(0, 256) == 1

    def test_full_cycle(self):
        n = 256
        assert rotation_galois_element(n // 2, n) == 1

    def test_composition(self):
        n = 256
        k1 = rotation_galois_element(3, n)
        k2 = rotation_galois_element(4, n)
        assert (k1 * k2) % (2 * n) == rotation_galois_element(7, n)


@given(st.lists(st.floats(-10, 10), min_size=1, max_size=16))
@settings(max_examples=30, deadline=None)
def test_property_encode_decode_within_tolerance(small_context, values):
    enc = small_context.encoder
    out = enc.decode(enc.encode(values), length=len(values))
    assert np.max(np.abs(out - np.array(values))) < 1e-3
