"""Tests for Chebyshev polynomial evaluation and BSGS linear algebra."""

import numpy as np
import pytest

from repro.fhe.linear import bsgs_matvec, matrix_diagonals
from repro.fhe.polyeval import (
    ChebyshevEvaluator,
    chebyshev_coefficients,
    chebyshev_divmod,
)


class TestChebyshevMath:
    def test_divmod_identity(self, rng):
        c = rng.normal(size=24)
        for n in (3, 8, 16):
            q, r = chebyshev_divmod(c, n)
            x = np.linspace(-1, 1, 101)
            t_n = np.polynomial.chebyshev.chebval(x, [0] * n + [1])
            lhs = np.polynomial.chebyshev.chebval(x, c)
            rhs = np.polynomial.chebyshev.chebval(x, q) * t_n + \
                np.polynomial.chebyshev.chebval(x, r)
            assert np.max(np.abs(lhs - rhs)) < 1e-10
            assert len(r) <= n

    def test_divmod_low_degree_passthrough(self):
        q, r = chebyshev_divmod([1.0, 2.0], 5)
        assert q == [0.0]
        assert r == [1.0, 2.0]

    def test_coefficients_approximate_function(self):
        coeffs = chebyshev_coefficients(np.sin, 23, (-3.0, 3.0))
        x = np.linspace(-3, 3, 101)
        u = 2 * (x + 3) / 6 - 1
        approx = np.polynomial.chebyshev.chebval(u, coeffs)
        assert np.max(np.abs(approx - np.sin(x))) < 1e-8


class TestHomomorphicPolyEval:
    def test_sin(self, deep_context, deep_evaluator, rng):
        che = ChebyshevEvaluator(deep_evaluator)
        z = rng.uniform(-1, 1, deep_context.params.slot_count)
        ct = deep_context.encrypt_values(z)
        out = che.evaluate_function(ct, np.sin, degree=23)
        res = deep_context.decrypt_values(out).real
        assert np.max(np.abs(res - np.sin(z))) < 1e-3

    def test_exp_nonstandard_interval(self, deep_context, deep_evaluator, rng):
        che = ChebyshevEvaluator(deep_evaluator)
        z = rng.uniform(0, 2, deep_context.params.slot_count)
        ct = deep_context.encrypt_values(z)
        out = che.evaluate_function(ct, np.exp, degree=15, interval=(0.0, 2.0))
        res = deep_context.decrypt_values(out).real
        assert np.max(np.abs(res - np.exp(z))) < 1e-2

    def test_explicit_coefficients(self, deep_context, deep_evaluator, rng):
        che = ChebyshevEvaluator(deep_evaluator)
        coeffs = [0.5, 0.0, -0.25, 0.0, 0.125]  # T0/2 - T2/4 + T4/8
        z = rng.uniform(-1, 1, deep_context.params.slot_count)
        ct = deep_context.encrypt_values(z)
        out = che.evaluate(ct, coeffs)
        expect = np.polynomial.chebyshev.chebval(z, coeffs)
        res = deep_context.decrypt_values(out).real
        assert np.max(np.abs(res - expect)) < 1e-3

    def test_constant_polynomial(self, deep_context, deep_evaluator):
        che = ChebyshevEvaluator(deep_evaluator)
        ct = deep_context.encrypt_values([0.3, -0.7])
        out = che.evaluate(ct, [0.42])
        res = deep_context.decrypt_values(out, length=2).real
        assert np.max(np.abs(res - 0.42)) < 1e-3

    def test_linear_polynomial(self, deep_context, deep_evaluator, rng):
        che = ChebyshevEvaluator(deep_evaluator)
        z = rng.uniform(-1, 1, deep_context.params.slot_count)
        ct = deep_context.encrypt_values(z)
        out = che.evaluate(ct, [0.1, 2.0])  # 0.1 + 2 T1
        res = deep_context.decrypt_values(out).real
        assert np.max(np.abs(res - (0.1 + 2 * z))) < 1e-3

    def test_level_consumption_logarithmic(self, deep_context, deep_evaluator, rng):
        che = ChebyshevEvaluator(deep_evaluator)
        z = rng.uniform(-1, 1, deep_context.params.slot_count)
        ct = deep_context.encrypt_values(z)
        out = che.evaluate_function(ct, np.sin, degree=31)
        consumed = ct.level - out.level
        assert consumed <= 7  # ~log2(31) + baby-step depth, far below 31


class TestMatrixDiagonals:
    def test_extraction(self):
        m = np.arange(9.0).reshape(3, 3)
        diags = matrix_diagonals(m)
        assert np.allclose(diags[0], [0, 4, 8])
        assert np.allclose(diags[1], [1, 5, 6])
        assert np.allclose(diags[2], [2, 3, 7])

    def test_sparse_matrix_skips_zero_diagonals(self):
        m = np.eye(4)
        diags = matrix_diagonals(m)
        assert list(diags.keys()) == [0]

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((2, 3)))


class TestBsgsMatvec:
    def test_full_slot_matrix(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        m = rng.normal(size=(n, n)) / np.sqrt(n)
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(x)
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out).real
        assert np.max(np.abs(res - m @ x)) < 1e-3

    def test_tiled_submatrix(self, small_context, small_evaluator, rng):
        slots = small_context.params.slot_count
        n = 16
        m = rng.normal(size=(n, n)) / np.sqrt(n)
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(np.tile(x, slots // n))
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out).real[:n]
        assert np.max(np.abs(res - m @ x)) < 1e-3

    def test_complex_matrix(self, small_context, small_evaluator, rng):
        n = 16
        slots = small_context.params.slot_count
        m = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(np.tile(x, slots // n))
        out = bsgs_matvec(small_evaluator, ct, matrix=m)
        res = small_context.decrypt_values(out)[:n]
        assert np.max(np.abs(res - m @ x)) < 1e-3

    def test_identity(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(x)
        out = bsgs_matvec(small_evaluator, ct, matrix=np.eye(n))
        res = small_context.decrypt_values(out).real
        assert np.max(np.abs(res - x)) < 1e-3

    def test_consumes_one_level(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        ct = small_context.encrypt_values(rng.uniform(-1, 1, n))
        out = bsgs_matvec(small_evaluator, ct, matrix=np.eye(n))
        assert out.level == ct.level - 1

    def test_precomputed_diagonals(self, small_context, small_evaluator, rng):
        n = small_context.params.slot_count
        m = rng.normal(size=(n, n)) / np.sqrt(n)
        x = rng.uniform(-1, 1, n)
        ct = small_context.encrypt_values(x)
        out = bsgs_matvec(small_evaluator, ct, diagonals=matrix_diagonals(m))
        res = small_context.decrypt_values(out).real
        assert np.max(np.abs(res - m @ x)) < 1e-3

    def test_missing_inputs_raise(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            bsgs_matvec(small_evaluator, ct)

    def test_dimension_must_divide_slots(self, small_context, small_evaluator):
        ct = small_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            bsgs_matvec(small_evaluator, ct, matrix=np.eye(3))


class TestEncryptedMatmul:
    """Ciphertext x ciphertext matrix multiplication (JKLS/E2DM)."""

    def _pack(self, context, matrix):
        from repro.fhe.packing import tile_vector

        return context.encrypt_values(
            tile_vector(matrix.reshape(-1), context.params.slot_count))

    def test_matches_numpy(self, deep_context, deep_evaluator, rng):
        from repro.fhe.linear import encrypted_matmul

        d = 8
        a = rng.uniform(-0.5, 0.5, (d, d))
        b = rng.uniform(-0.5, 0.5, (d, d))
        out = encrypted_matmul(deep_evaluator,
                               self._pack(deep_context, a),
                               self._pack(deep_context, b), d)
        got = deep_context.decrypt_values(out).real[:d * d].reshape(d, d)
        assert np.max(np.abs(got - a @ b)) < 1e-3

    def test_identity(self, deep_context, deep_evaluator, rng):
        from repro.fhe.linear import encrypted_matmul

        d = 4
        a = rng.uniform(-0.5, 0.5, (d, d))
        out = encrypted_matmul(deep_evaluator,
                               self._pack(deep_context, a),
                               self._pack(deep_context, np.eye(d)), d)
        got = deep_context.decrypt_values(out).real[:d * d].reshape(d, d)
        assert np.max(np.abs(got - a)) < 1e-3

    def test_non_dividing_dimension_rejected(self, deep_context,
                                             deep_evaluator):
        from repro.fhe.linear import encrypted_matmul

        ct = deep_context.encrypt_values([1.0])
        with pytest.raises(ValueError):
            encrypted_matmul(deep_evaluator, ct, ct, 3)

    def test_associativity_with_plaintext(self, deep_context,
                                          deep_evaluator, rng):
        """(A @ B) decrypted equals A' @ B' computed in the clear."""
        from repro.fhe.linear import encrypted_matmul

        d = 4
        a = rng.uniform(-0.5, 0.5, (d, d))
        b = rng.uniform(-0.5, 0.5, (d, d))
        ct = encrypted_matmul(deep_evaluator,
                              self._pack(deep_context, a),
                              self._pack(deep_context, b), d)
        got = deep_context.decrypt_values(ct).real[:d * d].reshape(d, d)
        assert np.allclose(got, a @ b, atol=1e-3)
