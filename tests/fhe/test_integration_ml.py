"""Integration tests: small encrypted-ML pipelines on real data.

These exercise the same kernel shapes the ResNet/HELR/BERT workloads are
built from — convolution-as-matmul, polynomial activations, reductions —
end to end through the functional CKKS library.
"""

import numpy as np
import pytest

from repro.fhe.analytics import encrypted_mean
from repro.fhe.linear import bsgs_matvec
from repro.fhe.packing import pad_prefix, tile_vector
from repro.fhe.polyeval import ChebyshevEvaluator


def _relu_poly(x):
    """Smooth ReLU surrogate used by CKKS CNNs (square-based)."""
    return 0.5 * x + 0.25 * x * x + 0.117


class TestEncryptedCnnLayer:
    @pytest.mark.slow
    def test_conv_relu_pool(self, deep_context, deep_evaluator, rng):
        """One conv (im2col matmul) + activation + mean-pool layer."""
        ctx, ev = deep_context, deep_evaluator
        slots = ctx.params.slot_count
        pixels = 16  # a 4x4 single-channel image

        image = rng.uniform(-0.5, 0.5, pixels)
        # im2col'd 3-tap convolution as a circulant matrix.
        kernel = np.array([0.25, 0.5, 0.25])
        conv = np.zeros((pixels, pixels))
        for i in range(pixels):
            for t, w in enumerate(kernel):
                conv[i, (i + t - 1) % pixels] = w

        ct = ctx.encrypt_values(tile_vector(image, slots))
        convolved = bsgs_matvec(ev, ct, matrix=conv)

        cheb = ChebyshevEvaluator(ev)
        activated = cheb.evaluate_function(
            convolved, _relu_poly, degree=7, interval=(-1.0, 1.0))

        pooled = ev.rotate_and_sum(activated, 4)
        pooled = ev.mul_scalar(pooled, 0.25)

        # Plaintext reference.
        ref = conv @ image
        ref = _relu_poly(ref)
        ref_pool = np.array([np.mean(np.roll(ref, -i)[:4])
                             for i in range(pixels)])
        got = ctx.decrypt_values(pooled).real[:pixels]
        assert np.max(np.abs(got - ref_pool)) < 5e-3


class TestEncryptedAttentionScore:
    def test_query_key_product(self, deep_context, deep_evaluator, rng):
        """The attention-score kernel: (Wq x) * (Wk x), then row-mean."""
        ctx, ev = deep_context, deep_evaluator
        slots = ctx.params.slot_count
        d = 16
        x = rng.uniform(-0.5, 0.5, d)
        wq = rng.normal(size=(d, d)) / d
        wk = rng.normal(size=(d, d)) / d

        ct = ctx.encrypt_values(tile_vector(x, slots))
        q = bsgs_matvec(ev, ct, matrix=wq)
        k = bsgs_matvec(ev, ct, matrix=wk)
        scores = ev.mul(q, k)
        got = ctx.decrypt_values(scores).real[:d]
        assert np.max(np.abs(got - (wq @ x) * (wk @ x))) < 2e-3


class TestEncryptedFeatureStandardization:
    def test_zero_mean_features(self, deep_context, deep_evaluator, rng):
        """x - mean(x): the layernorm front half, on encrypted data."""
        ctx, ev = deep_context, deep_evaluator
        n = 32
        values = rng.uniform(-1, 1, n)
        ct = ctx.encrypt_values(pad_prefix(values, ctx.params.slot_count))
        mean = encrypted_mean(ev, ct, n)
        centered = ev.sub(ct, mean)
        got = ctx.decrypt_values(centered).real[:n]
        assert np.max(np.abs(got - (values - values.mean()))) < 5e-3
