"""TuningDB persistence: round-trips, schema bumps, incumbent logic."""

import json

from repro.tune.db import (
    TUNING_DB_SCHEMA,
    TuningDB,
    default_db_path,
    tuning_key,
)
from repro.tune.space import Candidate, MachineVariant
from repro.workloads.kernels import matmul_kernel
from repro.fhe.params import ArchParams


def _record(cycles=1000):
    cand = Candidate.of(
        keyswitch_policy="cinnamon", enable_batching=True, num_digits=2,
        chips_per_stream=4, registers_per_chip=224,
        machine=MachineVariant("Cinnamon-4"))
    return {"workload": "bootstrap", "machine": "Cinnamon-4",
            "goal": "cycles", "assignment": cand.as_dict(),
            "cycles": cycles, "default_cycles": 2000}


class TestRoundTrip:
    def test_put_get_survives_reload(self, tmp_path):
        path = tmp_path / "tuning.json"
        db = TuningDB(path)
        db.put("k1", _record())
        assert path.exists()

        reloaded = TuningDB(path)
        assert len(reloaded) == 1
        entry = reloaded.get("k1")
        assert entry["cycles"] == 1000
        assert "created_unix" in entry
        cand = Candidate.from_dict(entry["assignment"])
        assert cand.config["num_digits"] == 2
        assert cand.machine.label == "Cinnamon-4"

    def test_put_keeps_faster_incumbent(self, tmp_path):
        db = TuningDB(tmp_path / "tuning.json")
        db.put("k", _record(cycles=1000))
        kept = db.put("k", _record(cycles=1500))  # slower: rejected
        assert kept["cycles"] == 1000
        improved = db.put("k", _record(cycles=900))
        assert improved["cycles"] == 900
        assert db.get("k")["cycles"] == 900

    def test_tuned_options_applies_assignment(self, tmp_path):
        program = matmul_kernel("m", 4, 6)
        params = ArchParams(max_level=16)
        db = TuningDB(tmp_path / "tuning.json")
        key = tuning_key(program, params, "Cinnamon-4")
        assert db.tuned_options(program, params, "Cinnamon-4") is None
        db.put(key, _record())
        opts = db.tuned_options(program, params, "Cinnamon-4")
        assert opts.num_digits == 2
        assert opts.num_chips == 4


class TestSchemaInvalidation:
    def test_old_schema_discarded_on_load(self, tmp_path):
        path = tmp_path / "tuning.json"
        db = TuningDB(path)
        db.put("k", _record())
        # Simulate a file written by a previous (older) schema version.
        doc = json.loads(path.read_text())
        doc["schema"] = TUNING_DB_SCHEMA - 1
        path.write_text(json.dumps(doc))

        reloaded = TuningDB(path)
        assert len(reloaded) == 0
        assert reloaded.invalidated == 1

    def test_corrupt_file_discarded(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        db = TuningDB(path)
        assert len(db) == 0
        assert db.invalidated == 1

    def test_schema_bump_changes_keys(self):
        program = matmul_kernel("m", 4, 6)
        params = ArchParams(max_level=16)
        key = tuning_key(program, params, "Cinnamon-4")
        assert key == tuning_key(program, params, "Cinnamon-4")
        assert key != tuning_key(program, params, "Cinnamon-8")
        assert key != tuning_key(program, params, "Cinnamon-4", "latency")


class TestDefaultPath:
    def test_explicit_cache_dir(self, tmp_path):
        assert default_db_path(tmp_path) == tmp_path / "tuning.json"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CINNAMON_CACHE_DIR", str(tmp_path / "env"))
        assert default_db_path() == tmp_path / "env" / "tuning.json"
