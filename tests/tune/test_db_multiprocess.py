"""Concurrent-writer safety of :class:`TuningDB.save`.

Cluster workers share one ``tuning.json``.  ``save()`` must not be a
blind overwrite of the in-memory view: under the cross-process flock it
re-reads what other writers persisted and merges per key, keeping the
faster incumbent — so neither disjoint keys nor competing records for
one key are ever lost.
"""

import json
import multiprocessing

import pytest

from repro.tune.db import TUNING_DB_SCHEMA, TuningDB


@pytest.fixture
def mp_ctx():
    return multiprocessing.get_context("fork")


def _writer(db_path, keys, cycles, barrier):
    db = TuningDB(db_path)
    barrier.wait()  # both processes loaded *before* either saves
    for key in keys:
        db.put(key, {"cycles": cycles, "assignment": {}, "by": str(cycles)},
               persist=False)
    db.save()


class TestConcurrentSave:
    def test_disjoint_writers_both_survive(self, tmp_path, mp_ctx):
        """Two processes persisting disjoint keys: the union survives."""
        db_path = tmp_path / "tuning.json"
        barrier = mp_ctx.Barrier(2)
        a_keys = [f"a-{i}" for i in range(5)]
        b_keys = [f"b-{i}" for i in range(5)]
        procs = [
            mp_ctx.Process(target=_writer,
                           args=(db_path, keys, 100, barrier))
            for keys in (a_keys, b_keys)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)

        merged = TuningDB(db_path)
        for key in a_keys + b_keys:
            assert key in merged

    def test_same_key_keeps_faster_incumbent(self, tmp_path, mp_ctx):
        """Competing records for one key: the fewer-cycles one wins,
        regardless of which process saves last."""
        db_path = tmp_path / "tuning.json"
        barrier = mp_ctx.Barrier(2)
        procs = [
            mp_ctx.Process(target=_writer,
                           args=(db_path, ["shared"], cycles, barrier))
            for cycles in (5000, 3000)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)

        entry = TuningDB(db_path).get("shared")
        assert entry is not None and entry["cycles"] == 3000

    def test_hammer_many_writers(self, tmp_path, mp_ctx):
        """4 processes x competing keys: file stays valid JSON and every
        key holds its global-best record."""
        db_path = tmp_path / "tuning.json"
        barrier = mp_ctx.Barrier(4)
        keys = [f"k-{i}" for i in range(6)]
        # Process p writes cycles 1000*(p+1) for every key -> best is 1000.
        procs = [
            mp_ctx.Process(target=_writer,
                           args=(db_path, keys, 1000 * (p + 1), barrier))
            for p in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)

        doc = json.loads(db_path.read_text())
        assert doc["schema"] == TUNING_DB_SCHEMA
        merged = TuningDB(db_path)
        for key in keys:
            assert merged.get(key)["cycles"] == 1000


class TestMergeSemantics:
    def test_save_merges_what_another_instance_persisted(self, tmp_path):
        """Sequential cross-instance save: later save does not clobber."""
        db_path = tmp_path / "tuning.json"
        first = TuningDB(db_path)   # loads empty
        second = TuningDB(db_path)  # also empty
        first.put("only-first", {"cycles": 10, "assignment": {}})
        # ``second`` was loaded before first's save, so a naive overwrite
        # would drop "only-first" here.
        second.put("only-second", {"cycles": 20, "assignment": {}})
        merged = TuningDB(db_path)
        assert "only-first" in merged and "only-second" in merged

    def test_slower_record_on_disk_does_not_displace_faster(self, tmp_path):
        db_path = tmp_path / "tuning.json"
        fast = TuningDB(db_path)
        slow = TuningDB(db_path)
        slow.put("k", {"cycles": 9000, "assignment": {}})
        fast.put("k", {"cycles": 1000, "assignment": {}})
        assert TuningDB(db_path).get("k")["cycles"] == 1000
        # And the other order: a slower save after a faster one merges
        # the disk incumbent back instead of overwriting it.
        slower = TuningDB(tmp_path / "other.json")
        slower.put("k", {"cycles": 9000, "assignment": {}}, persist=False)
        slower.path = db_path  # redirect its save at the shared file
        slower._file_lock.path = db_path.with_name("tuning.json.lock")
        slower.save()
        assert TuningDB(db_path).get("k")["cycles"] == 1000

    def test_no_temp_files_left_behind(self, tmp_path):
        db = TuningDB(tmp_path / "tuning.json")
        db.put("k", {"cycles": 1, "assignment": {}})
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert not leftovers
