"""End-to-end tuner runs on the small workloads, plus facade integration.

These tests compile and simulate for real (small-scale programs), so
they share one on-disk cache per test via ``tmp_path`` and keep budgets
tiny.
"""

import pytest

import repro
from repro.fhe.params import ArchParams
from repro.runtime.session import CinnamonSession
from repro.tune import (
    Tuner,
    TuningDB,
    apply_tuning,
    default_db_path,
    get_workload,
    tuning_key,
)
from repro.tune.space import Candidate, MachineVariant
from repro.workloads.kernels import matmul_kernel

BUDGET = 4


class TestTunerEndToEnd:
    def test_halving_tune_on_small_bootstrap(self, tmp_path):
        tuner = Tuner(cache_dir=tmp_path, seed=0)
        report = tuner.tune("bootstrap", "cinnamon_4", scale="small",
                            strategy="halving", budget=BUDGET)

        # The default config is always in the pool at full fidelity, so
        # the winner can never be worse than it.
        assert report.best_cycles <= report.default_cycles
        assert report.speedup >= 1.0
        assert report.machine == "Cinnamon-4"
        # The multi-fidelity schedule actually pruned and promoted.
        assert report.rungs >= 2
        assert report.candidates_tried >= 2
        # The winner persisted.
        assert (tmp_path / "tuning.json").exists()
        entry = tuner.db.get(report.db_key)
        assert entry["cycles"] == report.best_cycles
        # The leaderboard renders and names the winner's cycle count.
        board = report.leaderboard()
        assert "best:" in board and "cache" in board

    def test_trace_gains_tune_entry(self, tmp_path):
        tuner = Tuner(cache_dir=tmp_path, seed=0)
        tuner.tune("helr-step", "cinnamon_4", scale="small",
                   strategy="random", budget=2)
        trace = tuner.session.trace()
        tune_entries = [e for e in trace["jobs"]
                        if e.get("kind") == "tune"]
        assert len(tune_entries) == 1
        entry = tune_entries[0]
        assert entry["workload"] == "helr-step"
        assert entry["best_cycles"] <= entry["default_cycles"]
        assert entry["candidates"] >= 1
        assert trace["schema"] >= 4

    def test_retune_reuses_compile_cache(self, tmp_path):
        first = Tuner(cache_dir=tmp_path, seed=0).tune(
            "bootstrap", "cinnamon_4", scale="small",
            strategy="halving", budget=BUDGET)
        # A fresh process-equivalent: new session, same cache directory.
        again = Tuner(cache_dir=tmp_path, seed=0).tune(
            "bootstrap", "cinnamon_4", scale="small",
            strategy="halving", budget=BUDGET)
        assert again.cache_hits > 0
        assert again.cache_misses == 0
        assert again.best_cycles == first.best_cycles

    def test_explicit_empty_db_receives_the_winner(self, tmp_path):
        # Regression: an empty TuningDB is len() == 0, and a truthiness
        # check (``db or default``) used to discard it, persisting the
        # winner to a different DB than the caller's.
        db = TuningDB(tmp_path / "explicit.json")
        assert bool(db) and len(db) == 0
        tuner = Tuner(cache_dir=tmp_path, db=db, seed=0)
        assert tuner.db is db
        report = tuner.tune("bootstrap", "cinnamon_4", scale="small",
                            strategy="random", budget=2)
        assert len(db) == 1
        assert db.get(report.db_key)["cycles"] == report.best_cycles

    def test_unknown_workload_and_goal_rejected(self, tmp_path):
        tuner = Tuner(cache_dir=tmp_path)
        with pytest.raises(ValueError, match="bootstrap"):
            tuner.tune("transformer-xxl", "cinnamon_4")
        with pytest.raises(ValueError, match="cycles"):
            tuner.tune("bootstrap", "cinnamon_4", goal="carbon")
        with pytest.raises(ValueError, match="budget"):
            tuner.tune("bootstrap", "cinnamon_4", budget=0)

    def test_workload_scales_resolve(self):
        for name in ("bootstrap", "resnet-block", "helr-step",
                     "bert-layer"):
            workload = get_workload(name, "small")
            program, params, options = workload.materialize()
            assert program.name
            assert params.max_level >= 6


class TestFacadeIntegration:
    def _target(self):
        return matmul_kernel("facade", 4, 6), ArchParams(max_level=16)

    def _seed_db(self, db, program, params, num_digits=2):
        cand = Candidate.of(
            keyswitch_policy="cinnamon", enable_batching=True,
            num_digits=num_digits, chips_per_stream=4,
            registers_per_chip=224, machine=MachineVariant("Cinnamon-4"))
        db.put(tuning_key(program, params, "Cinnamon-4"), {
            "workload": "facade", "machine": "Cinnamon-4",
            "goal": "cycles", "assignment": cand.as_dict(),
            "cycles": 100, "default_cycles": 200,
        })
        return cand

    def test_apply_tuning_modes(self, tmp_path):
        program, params = self._target()
        db = TuningDB(tmp_path / "tuning.json")
        assert apply_tuning(program, params, "cinnamon_4", None,
                            None) is None
        assert apply_tuning(program, params, "cinnamon_4", None,
                            "db", db=db) is None  # empty DB: fall through
        with pytest.raises(ValueError, match="quick"):
            apply_tuning(program, params, "cinnamon_4", None, "nightly",
                         db=db)
        self._seed_db(db, program, params)
        tuned = apply_tuning(program, params, "cinnamon_4", None, True,
                             db=db)
        assert tuned.num_digits == 2

    def test_repro_compile_applies_db_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CINNAMON_CACHE_DIR", str(tmp_path))
        program, params = self._target()
        db = TuningDB(default_db_path())
        self._seed_db(db, program, params, num_digits=2)

        session = CinnamonSession()
        compiled = repro.compile(program, params, machine="cinnamon_4",
                                 session=session, tune=True)
        assert compiled.options.num_digits == 2
        # Without tuning the same request keeps the stock digit count.
        stock = repro.compile(program, params, machine="cinnamon_4",
                              session=session)
        assert stock.options.num_digits != 2
        assert stock.cache_key != compiled.cache_key

    def test_repro_compile_quick_tunes_on_miss(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("CINNAMON_CACHE_DIR", str(tmp_path))
        program, params = self._target()
        session = CinnamonSession()
        compiled = repro.compile(program, params, machine="cinnamon_4",
                                 session=session, tune="quick")
        assert compiled is not None
        # The quick search persisted its winner for the next process.
        db = TuningDB(default_db_path())
        assert db.best_candidate(program, params, "Cinnamon-4") is not None


class TestServerIntegration:
    def test_tuned_server_swaps_options_at_admission(self, tmp_path):
        from repro.serve import CinnamonServer, InferenceRequest
        from repro.serve.request import RequestStatus

        program, params = (matmul_kernel("served", 4, 6),
                           ArchParams(max_level=16))
        db = TuningDB(tmp_path / "tuning.json")
        cand = Candidate.of(
            keyswitch_policy="cinnamon", enable_batching=True,
            num_digits=2, chips_per_stream=4, registers_per_chip=224,
            machine=MachineVariant("Cinnamon-4"))
        db.put(tuning_key(program, params, "Cinnamon-4"), {
            "workload": "served", "machine": "Cinnamon-4",
            "goal": "cycles", "assignment": cand.as_dict(),
            "cycles": 100, "default_cycles": 200,
        })

        server = CinnamonServer(num_workers=1, tuning_db=db,
                                default_machine="cinnamon_4")
        with server:
            handle = server.submit(InferenceRequest(
                program=program, params=params, machine="cinnamon_4"))
            result = handle.result(timeout=120)
        assert result.status is RequestStatus.OK
        request = handle.request
        assert request.tuned is True
        assert request.options.num_digits == 2
        assert request.machine_name == "Cinnamon-4"
        snapshot = server.metrics.snapshot()
        tuned_series = snapshot["serve_tuned_requests_total"]["series"]
        assert tuned_series[0]["value"] == 1

    def test_untuned_server_leaves_requests_alone(self):
        from repro.serve import CinnamonServer, InferenceRequest

        program, params = (matmul_kernel("plain", 4, 6),
                           ArchParams(max_level=16))
        server = CinnamonServer(num_workers=1)
        with server:
            handle = server.submit(InferenceRequest(
                program=program, params=params, machine="cinnamon_4"))
            handle.result(timeout=120)
        assert handle.request.tuned is False
