"""Search-space model: enumeration, constraints, candidate round-trips."""

import random

import pytest

from repro.core.compiler import CompilerOptions
from repro.sim.config import CINNAMON_4
from repro.tune.space import (
    Axis,
    Candidate,
    MachineVariant,
    SearchSpace,
    default_candidate,
    default_space,
)


class TestMachineVariant:
    def test_of_accepts_all_spec_forms(self):
        assert MachineVariant.of("cinnamon_4").base == "Cinnamon-4"
        assert MachineVariant.of(4).base == "Cinnamon-4"
        assert MachineVariant.of(CINNAMON_4).base == "Cinnamon-4"

    def test_resolve_scales_resources(self):
        variant = MachineVariant("Cinnamon-4", "link_bandwidth", 0.5)
        machine = variant.resolve()
        assert machine.chip.link_gbps == 256.0
        assert variant.label == "Cinnamon-4[link_bandwidthx0.5]"

    def test_round_trip(self):
        variant = MachineVariant("Cinnamon-4", "vector_width", 2.0)
        assert MachineVariant.from_dict(variant.as_dict()) == variant
        stock = MachineVariant("Cinnamon-4")
        assert MachineVariant.from_dict(stock.as_dict()) == stock


class TestCandidate:
    def _candidate(self):
        return Candidate.of(
            keyswitch_policy="cifher", enable_batching=False, num_digits=3,
            chips_per_stream=2, registers_per_chip=112,
            machine=MachineVariant("Cinnamon-4"))

    def test_options_override_base(self):
        opts = self._candidate().options(CompilerOptions())
        assert opts.keyswitch_policy == "cifher"
        assert opts.enable_batching is False
        assert opts.num_digits == 3
        assert opts.chips_per_stream == 2
        assert opts.num_chips == 4

    def test_registers_axis_survives_options_resolution(self):
        # CompilerOptions.__post_init__ clobbers registers_per_chip when
        # a machine is set; the candidate must route around that.
        opts = self._candidate().options(CompilerOptions(machine=4))
        assert opts.registers_per_chip == 112
        assert opts.machine is None

    def test_key_is_canonical(self):
        a = Candidate.of(x=1, y=2)
        b = Candidate.of(y=2, x=1)
        assert a.key() == b.key()

    def test_round_trip_through_dict(self):
        cand = self._candidate()
        assert Candidate.from_dict(cand.as_dict()).key() == cand.key()


class TestSearchSpace:
    def test_enumeration_is_deterministic_and_pruned(self):
        space = SearchSpace(
            axes=[Axis("a", (1, 2, 3)), Axis("b", (True, False))],
            constraints=[lambda asn: not (asn["a"] == 3 and asn["b"])])
        cands = space.enumerate()
        assert space.size == 6
        assert len(cands) == 5
        assert cands == space.enumerate()
        assert not any(c.config == {"a": 3, "b": True} for c in cands)

    def test_sample_is_seeded_and_distinct(self):
        space = SearchSpace(axes=[Axis("a", tuple(range(10)))])
        first = space.sample(5, random.Random(7))
        second = space.sample(5, random.Random(7))
        assert first == second
        assert len({c.key() for c in first}) == 5

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(axes=[Axis("a", (1,)), Axis("a", (2,))])


class TestDefaultSpace:
    def test_covers_the_paper_knobs(self):
        space = default_space("cinnamon_4")
        names = {axis.name for axis in space.axes}
        assert names == {"keyswitch_policy", "enable_batching",
                         "num_digits", "chips_per_stream",
                         "registers_per_chip", "machine"}

    def test_sequential_batching_canonicalized(self):
        space = default_space("cinnamon_4")
        seq = [c for c in space.enumerate()
               if c.config["keyswitch_policy"] == "sequential"]
        assert seq  # policy present on multi-chip machines...
        assert all(c.config["enable_batching"] for c in seq)  # ...once

    def test_single_chip_machine_prunes_distributed_policies(self):
        space = default_space("cinnamon_1")
        policies = {c.config["keyswitch_policy"]
                    for c in space.enumerate()}
        assert policies == {"sequential"}

    def test_chips_per_stream_divides_machine(self):
        space = default_space("cinnamon_12")
        values = dict((a.name, a.values) for a in space.axes)
        assert set(values["chips_per_stream"]) == {1, 2, 3, 4, 6, 12}

    def test_machine_axis_optional(self):
        stock = default_space("cinnamon_4")
        swept = default_space("cinnamon_4", tune_machine=True)
        stock_machines = dict((a.name, a.values)
                              for a in stock.axes)["machine"]
        swept_machines = dict((a.name, a.values)
                              for a in swept.axes)["machine"]
        assert len(stock_machines) == 1
        assert len(swept_machines) == 9  # stock + 4 resources x {0.5, 2}

    def test_registers_never_exceed_physical_file(self):
        space = default_space("cinnamon_4", tune_machine=True)
        for cand in space.enumerate():
            machine = cand.machine.resolve()
            assert cand.config["registers_per_chip"] <= machine.chip.registers

    def test_default_candidate_is_in_stock_config(self):
        cand = default_candidate("cinnamon_4")
        assert cand.config["keyswitch_policy"] == "cinnamon"
        assert cand.config["enable_batching"] is True
        assert cand.config["registers_per_chip"] == 224
        assert cand.machine.label == "Cinnamon-4"
