"""Strategy math: halving promotion schedules and deterministic runs.

Uses a fake oracle (a lookup table of costs) so these tests exercise the
search logic without a compiler or simulator in the loop.
"""

from typing import List

import pytest

from repro.tune.space import Axis, SearchSpace
from repro.tune.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    Trial,
    make_strategy,
)


class FakeOracle:
    """Cost = the candidate's 'a' value; exact only at fidelity 1.0."""

    def __init__(self):
        self.calls: List[tuple] = []

    def evaluate_many(self, candidates, fidelity=1.0, rung=0):
        self.calls.append((len(candidates), fidelity, rung))
        return [Trial(candidate=c, cycles=float(c.config["a"]),
                      exact=fidelity == 1.0, rung=rung, fidelity=fidelity)
                for c in candidates]


def _space(n=16):
    return SearchSpace(axes=[Axis("a", tuple(range(n)))])


class TestHalvingPlan:
    def test_budget_8_eta_2(self):
        plan = SuccessiveHalving(eta=2).plan(8)
        assert [s["keep"] for s in plan] == [8, 4, 2, 1]
        assert [s["rung"] for s in plan] == [0, 1, 2, 3]
        assert plan[-1]["fidelity"] == 1.0
        fidelities = [s["fidelity"] for s in plan]
        assert fidelities == sorted(fidelities)  # monotone promotion

    def test_budget_9_eta_3(self):
        plan = SuccessiveHalving(eta=3).plan(9)
        assert [s["keep"] for s in plan] == [9, 3, 1]
        assert plan[-1]["fidelity"] == 1.0

    def test_min_fidelity_floor(self):
        plan = SuccessiveHalving(eta=2, min_fidelity=0.25).plan(32)
        assert min(s["fidelity"] for s in plan) >= 0.25

    def test_single_candidate(self):
        plan = SuccessiveHalving().plan(1)
        assert plan == [{"rung": 0, "keep": 1, "fidelity": 1.0}]

    def test_empty(self):
        assert SuccessiveHalving().plan(0) == []

    def test_bad_eta_rejected(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)


class TestHalvingRun:
    def test_survivors_promoted_by_cost(self):
        oracle = FakeOracle()
        trials = SuccessiveHalving(seed=3, eta=2).run(_space(), oracle, 8)
        # Rung sizes follow the plan: 8, 4, 2, 1 evaluations.
        assert [c for c, _, _ in oracle.calls] == [8, 4, 2, 1]
        # The final survivor is the cheapest of the original sample.
        finals = [t for t in trials if t.rung == 3]
        assert len(finals) == 1 and finals[0].exact
        sampled_costs = {t.cycles for t in trials if t.rung == 0}
        assert finals[0].cycles == min(sampled_costs)
        # Everything that never reached the top rung is marked pruned.
        top_key = finals[0].candidate.key()
        for trial in trials:
            reached_top = any(t.rung == 3 and t.candidate.key() ==
                              trial.candidate.key() for t in trials)
            if not reached_top:
                assert any(t.pruned for t in trials
                           if t.candidate.key() == trial.candidate.key())
        assert finals[0].candidate.key() == top_key

    def test_deterministic_given_seed(self):
        a = SuccessiveHalving(seed=11).run(_space(), FakeOracle(), 8)
        b = SuccessiveHalving(seed=11).run(_space(), FakeOracle(), 8)
        assert [t.candidate.key() for t in a] == \
            [t.candidate.key() for t in b]

    def test_budget_larger_than_space(self):
        oracle = FakeOracle()
        trials = SuccessiveHalving(seed=0).run(_space(4), oracle, 100)
        assert {t.candidate.config["a"] for t in trials} == {0, 1, 2, 3}


class TestOtherStrategies:
    def test_grid_is_exhaustive_until_budget(self):
        oracle = FakeOracle()
        GridSearch().run(_space(6), oracle, 4)
        assert oracle.calls == [(4, 1.0, 0)]

    def test_random_is_seeded(self):
        a = RandomSearch(seed=5).run(_space(), FakeOracle(), 6)
        b = RandomSearch(seed=5).run(_space(), FakeOracle(), 6)
        assert [t.candidate.key() for t in a] == \
            [t.candidate.key() for t in b]
        assert all(t.exact for t in a)

    def test_make_strategy(self):
        assert make_strategy("halving", eta=3).eta == 3
        assert make_strategy("grid").name == "grid"
        with pytest.raises(ValueError, match="halving"):
            make_strategy("anneal")
