"""Tests for machine configurations and the cycle simulator."""

import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.fhe import ArchParams
from repro.sim import (
    CINNAMON_1,
    CINNAMON_4,
    CINNAMON_8,
    CINNAMON_12,
    CINNAMON_M,
    ChipConfig,
    CycleSimulator,
    MachineConfig,
)
from repro.sim.config import config_for


class TestChipConfig:
    def test_register_count_matches_paper(self):
        # 56 MB / 256 KB limb = 224 registers.
        assert CINNAMON_4.chip.registers == 224

    def test_occupancy_from_lanes(self):
        chip = CINNAMON_4.chip
        assert chip.occupancy("ntt") == 65536 // 1024
        assert chip.occupancy("bconv") == 65536 // 512  # halved BCU lanes

    def test_limb_bytes(self):
        assert CINNAMON_4.chip.limb_bytes == 65536 * 4

    def test_scaled_returns_new_config(self):
        doubled = CINNAMON_4.scaled(hbm_gbps=4096.0)
        assert doubled.chip.hbm_gbps == 4096.0
        assert CINNAMON_4.chip.hbm_gbps == 2048.0

    def test_monolithic_has_more_resources(self):
        assert CINNAMON_M.chip.registers > CINNAMON_4.chip.registers
        assert CINNAMON_M.chip.clusters == 8


class TestMachineConfig:
    def test_ring_limit(self):
        with pytest.raises(ValueError):
            MachineConfig("bad", 12, ChipConfig(), topology="ring")

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            MachineConfig("bad", 4, ChipConfig(), topology="mesh")

    def test_presets(self):
        assert CINNAMON_8.topology == "ring"
        assert CINNAMON_12.topology == "switch"
        assert config_for(4) is CINNAMON_4
        assert config_for(6).num_chips == 6

    def test_collective_latency(self):
        assert CINNAMON_1.collective_latency == 0
        assert CINNAMON_8.collective_latency > CINNAMON_12.collective_latency


@pytest.fixture(scope="module")
def arch_compiled():
    """A small symbolic program compiled for 1 and 4 chips."""
    params = ArchParams(max_level=12)

    def build():
        prog = CinnamonProgram("simprog", level=12)
        a, b = prog.input("a"), prog.input("b")
        c = a * b
        prog.output("y", c.rotate(1) + c.rotate(2) + c.rotate(3))
        return prog

    one = CinnamonCompiler(params, CompilerOptions(num_chips=1)).compile(build())
    four = CinnamonCompiler(params, CompilerOptions(num_chips=4)).compile(build())
    return one, four


class TestSimulation:
    def test_produces_positive_cycles(self, arch_compiled):
        one, _ = arch_compiled
        result = CycleSimulator(CINNAMON_1).run(one.isa)
        assert result.cycles > 0
        assert result.seconds > 0
        assert result.instructions == one.instruction_count

    def test_four_chips_faster_than_one(self, arch_compiled):
        one, four = arch_compiled
        t1 = CycleSimulator(CINNAMON_1).run(one.isa)
        t4 = CycleSimulator(CINNAMON_4).run(four.isa)
        assert t4.cycles < t1.cycles

    def test_utilization_bounded(self, arch_compiled):
        _, four = arch_compiled
        result = CycleSimulator(CINNAMON_4).run(four.isa)
        for value in result.utilization().values():
            assert 0.0 <= value <= 1.0

    def test_network_only_on_multichip(self, arch_compiled):
        one, four = arch_compiled
        r1 = CycleSimulator(CINNAMON_1).run(one.isa)
        r4 = CycleSimulator(CINNAMON_4).run(four.isa)
        assert r1.network_bytes == 0
        assert r4.network_bytes > 0

    def test_memory_bytes_accounted(self, arch_compiled):
        one, _ = arch_compiled
        result = CycleSimulator(CINNAMON_1).run(one.isa)
        loads = sum(1 for ins in one.isa.streams[0]
                    if ins.opcode in ("ld", "st"))
        assert result.hbm_bytes == loads * CINNAMON_1.chip.limb_bytes

    def test_more_bandwidth_never_slower(self, arch_compiled):
        _, four = arch_compiled
        base = CycleSimulator(CINNAMON_4).run(four.isa)
        fat = CycleSimulator(CINNAMON_4.scaled(hbm_gbps=8192.0)).run(four.isa)
        assert fat.cycles <= base.cycles

    def test_link_bandwidth_matters(self, arch_compiled):
        _, four = arch_compiled
        slow = CycleSimulator(CINNAMON_4.scaled(link_gbps=32.0)).run(four.isa)
        fast = CycleSimulator(CINNAMON_4.scaled(link_gbps=1024.0)).run(four.isa)
        assert slow.cycles > fast.cycles

    def test_fu_busy_recorded(self, arch_compiled):
        one, _ = arch_compiled
        result = CycleSimulator(CINNAMON_1).run(one.isa)
        assert result.fu_busy["ntt"] > 0
        assert result.fu_busy["mul"] > 0

    def test_deterministic(self, arch_compiled):
        _, four = arch_compiled
        a = CycleSimulator(CINNAMON_4).run(four.isa)
        b = CycleSimulator(CINNAMON_4).run(four.isa)
        assert a.cycles == b.cycles


class TestLinkOccupancy:
    """Per-network-link accounting (schema-additive ``links`` key)."""

    @pytest.fixture(scope="class")
    def two_chip(self):
        """A known two-chip broadcast: one rotate forces each chip to
        exchange its shard with the other, so both links carry bytes."""
        params = ArchParams(max_level=12)
        prog = CinnamonProgram("bcast2", level=12)
        a, b = prog.input("a"), prog.input("b")
        prog.output("y", (a * b).rotate(1))
        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=2)).compile(prog)
        machine = config_for(2)
        return CycleSimulator(machine).run(compiled.isa), machine

    def test_every_link_accounted(self, two_chip):
        result, _ = two_chip
        assert set(result.link_busy) == {0, 1}
        assert set(result.link_bytes) == {0, 1}
        assert all(busy > 0 for busy in result.link_busy.values())
        assert all(moved > 0 for moved in result.link_bytes.values())

    def test_link_bytes_sum_to_network_bytes(self, two_chip):
        result, _ = two_chip
        assert sum(result.link_bytes.values()) == result.network_bytes

    def test_network_busy_is_link_average(self, two_chip):
        result, _ = two_chip
        assert result.network_busy == pytest.approx(
            sum(result.link_busy.values()) / len(result.link_busy))

    def test_link_occupancy_fractions(self, two_chip):
        result, _ = two_chip
        occupancy = result.link_occupancy()
        for cid, frac in occupancy.items():
            assert 0.0 < frac <= 1.0
            assert frac == pytest.approx(
                min(1.0, result.link_busy[cid] / result.cycles))

    def test_as_dict_links_payload(self, two_chip):
        result, machine = two_chip
        doc = result.as_dict()
        assert doc["topology"] == machine.topology
        assert set(doc["links"]) == {"0", "1"}
        for link in doc["links"].values():
            assert link["busy_cycles"] > 0
            assert 0.0 < link["occupancy"] <= 1.0
        assert sum(link["bytes"] for link in doc["links"].values()) \
            == doc["network"]["bytes"]

    def test_single_chip_link_stays_idle(self, arch_compiled):
        one, _ = arch_compiled
        result = CycleSimulator(CINNAMON_1).run(one.isa)
        assert result.link_busy == {0: 0}
        assert result.link_occupancy() == {0: 0.0}
        assert result.as_dict()["links"]["0"]["bytes"] == 0
