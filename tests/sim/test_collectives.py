"""Unit tests of the simulator's network semantics on hand-built streams."""

import pytest

from repro.core.isa.codegen import IsaModule
from repro.core.isa.instructions import Instruction
from repro.core.isa.regalloc import AllocationStats
from repro.sim import CINNAMON_4, CycleSimulator


def _module(streams):
    return IsaModule(streams, {c: AllocationStats() for c in streams})


def _ld(reg, sym="x"):
    return Instruction("ld", reg, (), {"symbol": sym})


class TestBroadcast:
    def test_rendezvous_blocks_receiver(self):
        """A receiver cannot complete before the contributor posts."""
        streams = {
            0: [
                _ld(0),
                Instruction("col", None, (0,),
                            {"cid": 1, "kind": "broadcast", "tags": ("t",),
                             "group": (0, 1), "bytes": 1}),
            ],
            1: [
                Instruction("col", None, (),
                            {"cid": 1, "kind": "broadcast", "tags": (),
                             "group": (0, 1), "bytes": 1}),
                Instruction("rcv", 0, (),
                            {"cid": 1, "tag": "t", "expected": 1,
                             "prime": 17}),
            ],
        }
        result = CycleSimulator(CINNAMON_4).run(_module(streams))
        # Receiver finishes after the sender's load + transfer + latency.
        load_cycles = CINNAMON_4.chip.limb_bytes / \
            CINNAMON_4.chip.hbm_bytes_per_cycle
        assert result.per_chip_cycles[1] > load_cycles

    def test_missing_contribution_deadlocks(self):
        streams = {
            0: [Instruction("rcv", 0, (),
                            {"cid": 9, "tag": "t", "expected": 1,
                             "prime": 17})],
        }
        with pytest.raises(RuntimeError, match="deadlock"):
            CycleSimulator(CINNAMON_4).run(_module(streams))


class TestPointToPoint:
    def test_send_receive(self):
        streams = {
            0: [_ld(0), Instruction("snd", None, (0,),
                                    {"key": 7, "to_chip": 1})],
            1: [Instruction("mov", 0, (), {"key": 7, "from_chip": 0})],
        }
        result = CycleSimulator(CINNAMON_4).run(_module(streams))
        assert result.network_bytes == CINNAMON_4.chip.limb_bytes

    def test_unmatched_mov_deadlocks(self):
        streams = {0: [Instruction("mov", 0, (), {"key": 3, "from_chip": 1})]}
        with pytest.raises(RuntimeError, match="deadlock"):
            CycleSimulator(CINNAMON_4).run(_module(streams))


class TestComputeTiming:
    def test_dependent_chain_serializes(self):
        chain = [_ld(0)]
        for i in range(1, 9):
            chain.append(Instruction("vntt", i, (i - 1,), {"prime": 17}))
        independent = [_ld(0)] + [
            Instruction("vntt", i, (0,), {"prime": 17}) for i in range(1, 9)
        ]
        t_chain = CycleSimulator(CINNAMON_4).run(_module({0: chain}))
        t_indep = CycleSimulator(CINNAMON_4).run(_module({0: independent}))
        # Same work, but the chain pays the pipeline latency per hop.
        assert t_chain.cycles > t_indep.cycles

    def test_fu_pool_parallelism(self):
        """Two add units: four independent adds beat four chained ones."""
        loads = [_ld(i, f"s{i}") for i in range(2)]
        parallel = loads + [
            Instruction("vadd", 10 + i, (0, 1), {"prime": 17})
            for i in range(4)
        ]
        chained = list(loads)
        prev = 0
        for i in range(4):
            chained.append(Instruction("vadd", 10 + i, (prev, 1), {"prime": 17}))
            prev = 10 + i
        t_par = CycleSimulator(CINNAMON_4).run(_module({0: parallel}))
        t_chain = CycleSimulator(CINNAMON_4).run(_module({0: chained}))
        assert t_par.cycles < t_chain.cycles

    def test_bcu_slower_than_full_width_ops(self):
        """The halved-lane BCU takes twice a full-width op's occupancy."""
        bcv = [_ld(0), Instruction("vbcv", 1, (0,),
                                   {"prime": 17, "source_primes": (17,),
                                    "target_prime": 17})]
        add = [_ld(0), Instruction("vadd", 1, (0, 0), {"prime": 17})]
        t_bcv = CycleSimulator(CINNAMON_4).run(_module({0: bcv}))
        t_add = CycleSimulator(CINNAMON_4).run(_module({0: add}))
        assert t_bcv.fu_busy["bconv"] == 2 * t_add.fu_busy["add"]
