"""Tests for the execution-trace export."""

import json

import pytest

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.fhe import ArchParams
from repro.sim import CINNAMON_4
from repro.sim.trace import TracingSimulator, export_chrome_trace, \
    to_chrome_trace


@pytest.fixture(scope="module")
def compiled():
    params = ArchParams(max_level=8)
    prog = CinnamonProgram("trace", level=8)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", (a * b).rotate(1))
    return CinnamonCompiler(params, CompilerOptions(num_chips=4)).compile(prog)


class TestTimeline:
    def test_events_cover_compute_and_memory(self, compiled):
        events = TracingSimulator(CINNAMON_4).timeline(compiled.isa)
        lanes = {e.lane for e in events}
        assert "hbm" in lanes
        assert any(lane.startswith("ntt") for lane in lanes)
        assert any(lane.startswith("bconv") for lane in lanes)

    def test_events_non_overlapping_per_unit(self, compiled):
        events = TracingSimulator(CINNAMON_4).timeline(compiled.isa)
        by_unit = {}
        for e in events:
            by_unit.setdefault((e.chip, e.lane), []).append(e)
        for unit_events in by_unit.values():
            unit_events.sort(key=lambda e: e.start)
            for prev, cur in zip(unit_events, unit_events[1:]):
                assert cur.start >= prev.start + prev.duration

    def test_limit_respected(self, compiled):
        events = TracingSimulator(CINNAMON_4).timeline(
            compiled.isa, limit_per_chip=10)
        per_chip = {}
        for e in events:
            per_chip[e.chip] = per_chip.get(e.chip, 0) + 1
        assert all(v <= 10 for v in per_chip.values())


class TestChromeExport:
    def test_json_structure(self, compiled):
        events = TracingSimulator(CINNAMON_4).timeline(
            compiled.isa, limit_per_chip=100)
        payload = json.loads(to_chrome_trace(events))
        assert payload["traceEvents"]
        first = payload["traceEvents"][0]
        assert set(first) >= {"name", "ph", "ts", "dur", "pid", "tid"}

    def test_file_export(self, compiled, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(compiled.isa, CINNAMON_4, str(path),
                                    limit_per_chip=50)
        assert count > 0
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count


@pytest.fixture(scope="module")
def bootstrap_compiled():
    """The serving mix's shrunk-but-real bootstrap on two chips."""
    from repro.workloads import SMALL_BOOTSTRAP_PLAN
    from repro.workloads.kernels import bootstrap_kernel

    params = ArchParams(max_level=16)
    prog = bootstrap_kernel(SMALL_BOOTSTRAP_PLAN, entry_level=2)
    return CinnamonCompiler(params,
                            CompilerOptions(num_chips=2)).compile(prog)


class TestBootstrapChromeTrace:
    """Exported Chrome-trace JSON stays well-formed on a real bootstrap
    module (the workload the serving layer traces most)."""

    def test_export_well_formed(self, bootstrap_compiled, tmp_path):
        from repro.sim.config import config_for

        path = tmp_path / "bootstrap-trace.json"
        count = export_chrome_trace(bootstrap_compiled.isa, config_for(2),
                                    str(path), limit_per_chip=2000)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert 0 < count == len(events)
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert event["dur"] >= 1
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], str)
            assert event["name"]

    def test_no_overlap_per_fu_lane(self, bootstrap_compiled):
        from repro.sim.config import config_for

        events = TracingSimulator(config_for(2)).timeline(
            bootstrap_compiled.isa, limit_per_chip=2000)
        lanes = {}
        for event in events:
            lanes.setdefault((event.chip, event.lane), []).append(event)
        assert {chip for chip, _ in lanes} == {0, 1}
        assert any(lane.startswith("ntt") for _, lane in lanes)
        assert any(lane == "hbm" for _, lane in lanes)
        for lane_events in lanes.values():
            lane_events.sort(key=lambda e: e.start)
            for prev, cur in zip(lane_events, lane_events[1:]):
                assert cur.start >= prev.start + prev.duration
