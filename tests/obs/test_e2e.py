"""Acceptance: one traced serve run -> one joined timeline + journal.

The paper-level payoff of repro.obs: a request's serve span, its
compiler-pass child spans, and the scaled per-functional-unit simulator
timeline all share one ``trace_id`` inside a single Chrome-trace file,
and ``python -m repro.obs`` reconstructs the request's critical path
from the trace journal alone.
"""

import json
import time
from types import SimpleNamespace

import pytest

from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.obs import check, disable, enable, export_chrome_trace, tracer
from repro.obs.__main__ import main as obs_main
from repro.obs.analyze import registry_from_journal, trace_table
from repro.obs.export import SIM_PID_BASE, WALL_PID, build_chrome_trace
from repro.serve import InferenceRequest
from repro.serve.server import serve_requests

PARAMS = ArchParams(max_level=6)


def _request(name, rotation=1):
    prog = CinnamonProgram(f"obs-{name}", level=6)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", a * b + a.rotate(rotation))
    return InferenceRequest(program=prog, params=PARAMS, machine=2,
                            name=name)


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One serve run with tracing on; everything captured before the
    per-test tracer reset."""
    out = tmp_path_factory.mktemp("obs-e2e")
    journal_path = out / "journal.json"
    chrome_path = out / "chrome.json"
    enable(reset=True)
    try:
        requests = [_request("ra", 1), _request("rb", 1), _request("rc", 2)]
        results = serve_requests(requests, num_workers=2,
                                 trace_out=str(journal_path))
        spans = tracer().spans()
        chrome = build_chrome_trace()
        export_chrome_trace(str(chrome_path))
    finally:
        disable()
    with open(journal_path) as handle:
        document = json.load(handle)
    return SimpleNamespace(results=results, spans=spans, chrome=chrome,
                           document=document,
                           journal_path=str(journal_path),
                           chrome_path=str(chrome_path))


@pytest.fixture(scope="module", params=["server", "cluster"])
def backend_journal(request, tmp_path_factory):
    """The same 3-request workload journaled by both serving backends:
    the in-process server and a 2-worker cluster router with live
    telemetry streaming and a deliberately tight SLO (so the merged
    journal carries ``kind:"alert"`` rows and still checks clean)."""
    out = tmp_path_factory.mktemp(f"obs-e2e-{request.param}")
    journal_path = out / "journal.json"
    enable(reset=True)
    try:
        requests = [_request("ra", 1), _request("rb", 1), _request("rc", 2)]
        if request.param == "server":
            results = serve_requests(requests, num_workers=2,
                                     trace_out=str(journal_path))
            with open(journal_path) as handle:
                document = json.load(handle)
        else:
            from repro.cluster import ClusterRouter

            router = ClusterRouter(
                num_workers=2, heartbeat_s=0.2,
                telemetry_interval_s=0.2,
                slos=["latency:0.000001:99:lat"],
                slo_window_scale=1.0 / 600.0, slo_min_events=3,
                slo_cooldown_s=5.0)
            router.start()
            assert router.wait_ready(timeout=120)
            handles = [router.submit(r) for r in requests]
            results = [h.result(timeout=120) for h in handles]
            assert all(r.ok for r in results), \
                [r.error for r in results]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not router.live.alerts:
                time.sleep(0.1)
            document = router.trace()
            router.shutdown(drain=False)
            journal_path.write_text(json.dumps(document))
    finally:
        disable()
    return SimpleNamespace(backend=request.param, results=results,
                           document=document,
                           journal_path=str(journal_path))


class TestOneTraceId:
    def test_all_requests_served(self, traced):
        assert [r.status.value for r in traced.results] == ["ok"] * 3

    def test_serve_pass_and_sim_spans_share_the_trace(self, traced):
        serve_spans = [s for s in traced.spans if s.kind == "serve"]
        assert len(serve_spans) == 3
        # The cache-missing request compiled for real: its trace holds
        # per-compiler-pass children AND a simulate span with an
        # attached FU timeline — all under the serve span's trace_id.
        with_passes = [
            root for root in serve_spans
            if any(s.kind == "pass"
                   for s in traced.spans if s.trace_id == root.trace_id)
        ]
        assert with_passes, "no trace carries compiler-pass spans"
        root = with_passes[0]
        kinds = {s.kind for s in traced.spans
                 if s.trace_id == root.trace_id}
        assert {"serve", "queue", "batch", "execute", "compile",
                "cache", "pass", "simulate"} <= kinds
        sims = [s for s in traced.spans
                if s.trace_id == root.trace_id and s.kind == "simulate"]
        assert any(s.sim_events for s in sims), "no FU timeline captured"

    def test_span_tree_is_well_parented(self, traced):
        by_id = {s.span_id: s for s in traced.spans}
        for span in traced.spans:
            assert span.finished, f"span {span.name} left open"
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.trace_id == span.trace_id

    def test_journal_rows_join_on_trace_id(self, backend_journal):
        document = backend_journal.document
        assert document["schema"] >= 5
        assert check(document) == []
        table = trace_table(document)
        # The cluster router adds membership traces (job=w*); every
        # *request* trace joins fully either way.
        served = {k: v for k, v in table.items()
                  if v["job"] in ("ra", "rb", "rc")}
        assert len(served) == 3
        for split in served.values():
            assert split["status"] == "ok"
            assert split["compile"] > 0.0
            assert split["sim"] > 0.0
            assert split["total_s"] >= split["compile"] + split["sim"] \
                - 1e-6

    def test_serve_rows_carry_tenant_and_cost(self, backend_journal):
        serve_rows = [r for r in backend_journal.document["jobs"]
                      if r["kind"] == "serve"]
        assert len(serve_rows) == 3
        assert all(r.get("tenant") == "default" for r in serve_rows)
        costed = [r["cost"] for r in serve_rows if r.get("cost")]
        assert costed, "no serve row carries a cost rollup"
        assert all(c["sim_cycles"] > 0 for c in costed)

    def test_cluster_journal_carries_live_alert_rows(self,
                                                    backend_journal):
        if backend_journal.backend != "cluster":
            pytest.skip("live alert rows stream from the cluster router")
        alerts = [r for r in backend_journal.document["jobs"]
                  if r["kind"] == "alert"]
        assert alerts, "tight SLO did not page during the run"
        assert alerts[0]["slo"] == "lat"
        assert alerts[0]["severity"] in ("page", "warn")
        # ... and their presence keeps the journal check-clean
        # (asserted for both backends in the join test above).


class TestChromeExport:
    def test_event_shape(self, traced):
        events = traced.chrome["traceEvents"]
        assert events
        for event in events:
            if event["ph"] == "M":
                continue
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid",
                                  "args"}
            assert event["dur"] >= 1.0
            assert {"trace_id", "span_id"} <= set(event["args"])

    def test_wall_and_sim_tracks_coexist(self, traced):
        events = [e for e in traced.chrome["traceEvents"]
                  if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        assert WALL_PID in pids
        assert any(pid >= SIM_PID_BASE for pid in pids)
        assert any(e["cat"] == "isa" for e in events)
        # chip/lane thread naming on the sim tracks
        sim_tids = {e["tid"] for e in events if e["pid"] >= SIM_PID_BASE}
        assert all(tid.startswith("chip") for tid in sim_tids)

    def test_fu_timeline_scaled_into_enclosing_simulate_span(self, traced):
        events = traced.chrome["traceEvents"]
        sim_windows = {}  # trace_id -> (ts, ts+dur) of its simulate slice
        for event in events:
            if event.get("cat") == "simulate":
                tid = event["args"]["trace_id"]
                window = (event["ts"], event["ts"] + event["dur"])
                prior = sim_windows.get(tid)
                sim_windows[tid] = (min(window[0], prior[0]),
                                    max(window[1], prior[1])) \
                    if prior else window
        isa = [e for e in events if e.get("cat") == "isa"]
        assert isa
        for event in isa:
            lo, hi = sim_windows[event["args"]["trace_id"]]
            assert lo - 1e-6 <= event["ts"]
            # +1 slack: sub-microsecond cycles clamp to dur=1
            assert event["ts"] + event["dur"] <= hi + 1.0 + 1e-6

    def test_file_is_loadable_json(self, traced):
        with open(traced.chrome_path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]


class TestCli:
    def test_report_prints_critical_path(self, backend_journal, capsys):
        assert obs_main([backend_journal.journal_path]) == 0
        out = capsys.readouterr().out
        traces = len(trace_table(backend_journal.document))
        assert f"{traces} trace(s)" in out
        for phase in ("queue", "batch", "compile", "sim", "recovery"):
            assert phase in out
        assert "utilization" in out

    def test_single_trace_by_prefix(self, backend_journal, capsys):
        trace_id = next(iter(trace_table(backend_journal.document)))
        assert obs_main([backend_journal.journal_path,
                         "--trace-id", trace_id[:8]]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s)" in out
        assert trace_id in out

    def test_check_passes_on_healthy_journal(self, backend_journal,
                                             capsys):
        assert obs_main([backend_journal.journal_path, "--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_fails_on_unstamped_rows(self, backend_journal,
                                           tmp_path, capsys):
        doctored = dict(backend_journal.document)
        doctored["jobs"] = [
            {k: v for k, v in row.items()
             if k not in ("trace_id", "span_id")}
            for row in backend_journal.document["jobs"]
            if row["kind"] != "alert"   # alert rows are never stamped
        ]
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        assert obs_main([str(path), "--check"]) == 1
        assert "missing trace_id" in capsys.readouterr().out

    def test_check_fails_when_a_serve_trace_has_no_children(
            self, backend_journal, tmp_path, capsys):
        doctored = dict(backend_journal.document)
        doctored["jobs"] = [row
                            for row in backend_journal.document["jobs"]
                            if row["kind"] == "serve"]
        path = tmp_path / "orphans.json"
        path.write_text(json.dumps(doctored))
        assert obs_main([str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "no compile-or-cache child" in out
        assert "no simulate child" in out

    def test_prometheus_textfile_from_journal(self, backend_journal,
                                              tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        assert obs_main([backend_journal.journal_path,
                         "--prom-out", str(prom)]) == 0
        text = prom.read_text()
        assert "runtime_compile_requests_total" in text
        assert "runtime_simulations_total" in text
        assert 'serve_requests_total{status="ok"} 3' in text
        # schema 8: tenant attribution replays from the journal alone
        assert 'cluster_tenant_requests_total' in text
        assert 'tenant="default"' in text

    def test_registry_replay_matches_row_counts(self, backend_journal):
        document = backend_journal.document
        registry = registry_from_journal(document)
        snap = registry.snapshot()
        compiles = sum(s["value"] for s in
                       snap["runtime_compile_requests_total"]["series"])
        assert compiles == sum(1 for r in document["jobs"]
                               if r["kind"] == "compile")
        tenant_requests = sum(
            s["value"] for s in
            snap["cluster_tenant_requests_total"]["series"])
        assert tenant_requests == sum(1 for r in document["jobs"]
                                      if r["kind"] == "serve")
        if backend_journal.backend == "cluster":
            alerts = snap.get("obs_slo_alerts_total", {}).get("series", ())
            assert sum(s["value"] for s in alerts) == sum(
                1 for r in document["jobs"] if r["kind"] == "alert")


class TestSchemaBackCompat:
    """Journals written before schema 8 (no tenant/cost/alert rows)
    stay fully analyzable — the committed fixture is a real v7 run."""

    FIXTURE = __file__.rsplit("/", 1)[0] + "/fixtures/journal_v7.json"

    def test_fixture_is_v7_without_live_fields(self):
        with open(self.FIXTURE) as handle:
            document = json.load(handle)
        assert document["schema"] == 7
        for row in document["jobs"]:
            assert "tenant" not in row
            assert "cost" not in row
            assert row["kind"] != "alert"

    def test_check_accepts_v7(self, capsys):
        assert obs_main([self.FIXTURE, "--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_report_renders_v7(self, capsys):
        assert obs_main([self.FIXTURE]) == 0
        assert "trace(s)" in capsys.readouterr().out

    def test_registry_replay_without_tenant_rows(self):
        with open(self.FIXTURE) as handle:
            document = json.load(handle)
        registry = registry_from_journal(document)
        snap = registry.snapshot()
        serves = sum(1 for r in document["jobs"] if r["kind"] == "serve")
        assert serves > 0
        total = sum(s["value"] for s in
                    snap["serve_requests_total"]["series"])
        assert total == serves
        # No tenant attribution can be synthesized from v7 rows.
        assert "cluster_tenant_requests_total" not in snap
        assert "obs_slo_alerts_total" not in snap
