"""Acceptance: one traced serve run -> one joined timeline + journal.

The paper-level payoff of repro.obs: a request's serve span, its
compiler-pass child spans, and the scaled per-functional-unit simulator
timeline all share one ``trace_id`` inside a single Chrome-trace file,
and ``python -m repro.obs`` reconstructs the request's critical path
from the trace journal alone.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.obs import check, disable, enable, export_chrome_trace, tracer
from repro.obs.__main__ import main as obs_main
from repro.obs.analyze import registry_from_journal, trace_table
from repro.obs.export import SIM_PID_BASE, WALL_PID, build_chrome_trace
from repro.serve import InferenceRequest
from repro.serve.server import serve_requests

PARAMS = ArchParams(max_level=6)


def _request(name, rotation=1):
    prog = CinnamonProgram(f"obs-{name}", level=6)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", a * b + a.rotate(rotation))
    return InferenceRequest(program=prog, params=PARAMS, machine=2,
                            name=name)


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One serve run with tracing on; everything captured before the
    per-test tracer reset."""
    out = tmp_path_factory.mktemp("obs-e2e")
    journal_path = out / "journal.json"
    chrome_path = out / "chrome.json"
    enable(reset=True)
    try:
        requests = [_request("ra", 1), _request("rb", 1), _request("rc", 2)]
        results = serve_requests(requests, num_workers=2,
                                 trace_out=str(journal_path))
        spans = tracer().spans()
        chrome = build_chrome_trace()
        export_chrome_trace(str(chrome_path))
    finally:
        disable()
    with open(journal_path) as handle:
        document = json.load(handle)
    return SimpleNamespace(results=results, spans=spans, chrome=chrome,
                           document=document,
                           journal_path=str(journal_path),
                           chrome_path=str(chrome_path))


class TestOneTraceId:
    def test_all_requests_served(self, traced):
        assert [r.status.value for r in traced.results] == ["ok"] * 3

    def test_serve_pass_and_sim_spans_share_the_trace(self, traced):
        serve_spans = [s for s in traced.spans if s.kind == "serve"]
        assert len(serve_spans) == 3
        # The cache-missing request compiled for real: its trace holds
        # per-compiler-pass children AND a simulate span with an
        # attached FU timeline — all under the serve span's trace_id.
        with_passes = [
            root for root in serve_spans
            if any(s.kind == "pass"
                   for s in traced.spans if s.trace_id == root.trace_id)
        ]
        assert with_passes, "no trace carries compiler-pass spans"
        root = with_passes[0]
        kinds = {s.kind for s in traced.spans
                 if s.trace_id == root.trace_id}
        assert {"serve", "queue", "batch", "execute", "compile",
                "cache", "pass", "simulate"} <= kinds
        sims = [s for s in traced.spans
                if s.trace_id == root.trace_id and s.kind == "simulate"]
        assert any(s.sim_events for s in sims), "no FU timeline captured"

    def test_span_tree_is_well_parented(self, traced):
        by_id = {s.span_id: s for s in traced.spans}
        for span in traced.spans:
            assert span.finished, f"span {span.name} left open"
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.trace_id == span.trace_id

    def test_journal_rows_join_on_trace_id(self, traced):
        assert traced.document["schema"] >= 5
        assert check(traced.document) == []
        table = trace_table(traced.document)
        assert len(table) == 3
        for split in table.values():
            assert split["status"] == "ok"
            assert split["compile"] > 0.0
            assert split["sim"] > 0.0
            assert split["total_s"] >= split["compile"] + split["sim"] \
                - 1e-6


class TestChromeExport:
    def test_event_shape(self, traced):
        events = traced.chrome["traceEvents"]
        assert events
        for event in events:
            if event["ph"] == "M":
                continue
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid",
                                  "args"}
            assert event["dur"] >= 1.0
            assert {"trace_id", "span_id"} <= set(event["args"])

    def test_wall_and_sim_tracks_coexist(self, traced):
        events = [e for e in traced.chrome["traceEvents"]
                  if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        assert WALL_PID in pids
        assert any(pid >= SIM_PID_BASE for pid in pids)
        assert any(e["cat"] == "isa" for e in events)
        # chip/lane thread naming on the sim tracks
        sim_tids = {e["tid"] for e in events if e["pid"] >= SIM_PID_BASE}
        assert all(tid.startswith("chip") for tid in sim_tids)

    def test_fu_timeline_scaled_into_enclosing_simulate_span(self, traced):
        events = traced.chrome["traceEvents"]
        sim_windows = {}  # trace_id -> (ts, ts+dur) of its simulate slice
        for event in events:
            if event.get("cat") == "simulate":
                tid = event["args"]["trace_id"]
                window = (event["ts"], event["ts"] + event["dur"])
                prior = sim_windows.get(tid)
                sim_windows[tid] = (min(window[0], prior[0]),
                                    max(window[1], prior[1])) \
                    if prior else window
        isa = [e for e in events if e.get("cat") == "isa"]
        assert isa
        for event in isa:
            lo, hi = sim_windows[event["args"]["trace_id"]]
            assert lo - 1e-6 <= event["ts"]
            # +1 slack: sub-microsecond cycles clamp to dur=1
            assert event["ts"] + event["dur"] <= hi + 1.0 + 1e-6

    def test_file_is_loadable_json(self, traced):
        with open(traced.chrome_path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]


class TestCli:
    def test_report_prints_critical_path(self, traced, capsys):
        assert obs_main([traced.journal_path]) == 0
        out = capsys.readouterr().out
        assert "3 trace(s)" in out
        for phase in ("queue", "batch", "compile", "sim", "recovery"):
            assert phase in out
        assert "utilization" in out

    def test_single_trace_by_prefix(self, traced, capsys):
        trace_id = next(iter(trace_table(traced.document)))
        assert obs_main([traced.journal_path,
                         "--trace-id", trace_id[:8]]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s)" in out
        assert trace_id in out

    def test_check_passes_on_healthy_journal(self, traced, capsys):
        assert obs_main([traced.journal_path, "--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_fails_on_unstamped_rows(self, traced, tmp_path,
                                           capsys):
        doctored = dict(traced.document)
        doctored["jobs"] = [
            {k: v for k, v in row.items()
             if k not in ("trace_id", "span_id")}
            for row in traced.document["jobs"]
        ]
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        assert obs_main([str(path), "--check"]) == 1
        assert "missing trace_id" in capsys.readouterr().out

    def test_check_fails_when_a_serve_trace_has_no_children(
            self, traced, tmp_path, capsys):
        doctored = dict(traced.document)
        doctored["jobs"] = [row for row in traced.document["jobs"]
                            if row["kind"] == "serve"]
        path = tmp_path / "orphans.json"
        path.write_text(json.dumps(doctored))
        assert obs_main([str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "no compile-or-cache child" in out
        assert "no simulate child" in out

    def test_prometheus_textfile_from_journal(self, traced, tmp_path,
                                              capsys):
        prom = tmp_path / "metrics.prom"
        assert obs_main([traced.journal_path,
                         "--prom-out", str(prom)]) == 0
        text = prom.read_text()
        assert "runtime_compile_requests_total" in text
        assert "runtime_simulations_total" in text
        assert 'serve_requests_total{status="ok"} 3' in text

    def test_registry_replay_matches_row_counts(self, traced):
        registry = registry_from_journal(traced.document)
        snap = registry.snapshot()
        compiles = sum(s["value"] for s in
                       snap["runtime_compile_requests_total"]["series"])
        assert compiles == sum(1 for r in traced.document["jobs"]
                               if r["kind"] == "compile")
