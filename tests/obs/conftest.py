"""Tracer hygiene: every obs test starts clean and leaves tracing off."""

import pytest

from repro.obs import disable, tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer().reset()
    yield
    disable()
    tracer().reset()
