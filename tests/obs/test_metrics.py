"""Metrics hoist: serve shim identity + histogram quantile edge cases."""

import repro.obs.metrics as obs_metrics
import repro.serve.metrics as serve_metrics
from repro.obs.metrics import Histogram, MetricsRegistry, default_registry


class TestServeShim:
    def test_reexports_are_the_same_objects(self):
        # Back-compat: the serve-layer import path must keep working and
        # resolve to the very same classes/values, not copies.
        for name in ("Counter", "Gauge", "Histogram", "MetricsRegistry",
                     "LabelSet", "DEFAULT_BUCKETS", "CYCLE_BUCKETS",
                     "RESERVOIR_SIZE", "default_registry"):
            assert getattr(serve_metrics, name) is \
                getattr(obs_metrics, name), name

    def test_shim_registry_instances_interoperate(self):
        registry = serve_metrics.MetricsRegistry()
        assert isinstance(registry, obs_metrics.MetricsRegistry)
        counter = registry.counter("x_total", "x")
        assert isinstance(counter, obs_metrics.Counter)

    def test_default_registry_is_process_global(self):
        assert serve_metrics.default_registry() is default_registry()
        assert default_registry() is default_registry()


class TestHistogramQuantiles:
    def test_empty_reservoir_has_no_quantiles(self):
        hist = Histogram("h", "", ())
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.99) is None
        snap = hist.snapshot_value()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None

    def test_single_sample_is_every_quantile(self):
        hist = Histogram("h", "", ())
        hist.observe(0.125)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 0.125

    def test_two_samples_bracket(self):
        hist = Histogram("h", "", ())
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 3.0

    def test_many_samples_monotone_and_exact_at_ends(self):
        hist = Histogram("h", "", ())
        for value in range(100):
            hist.observe(float(value))
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 99.0
        quantiles = [hist.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)
        assert abs(hist.quantile(0.5) - 49.5) <= 1.0

    def test_exposition_still_renders_empty_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("latency_seconds", "lat", buckets=(1.0, 2.0))
        text = registry.render_prometheus()
        assert 'latency_seconds_bucket{le="+Inf"} 0' in text
        assert "latency_seconds_count 0" in text
