"""Unit tests for repro.obs.live: the delta codec, the bounded
time-series store, the multi-window burn-rate SLO engine, the flight
recorder, the LivePipeline glue, and the ``obs top`` / ``watch`` CLI."""

import json

import pytest

from repro.obs.__main__ import main as obs_main, render_top
from repro.obs.live import (
    BURN_WINDOWS,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    LivePipeline,
    SLO,
    SLOEngine,
    STATUS_SCHEMA_VERSION,
    TimeSeriesStore,
    apply_delta,
    render_snapshot_prometheus,
    snapshot_delta,
    tenant_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.trace import TraceRecorder

T0 = 1_000_000.0
SCALE = 1.0 / 600.0            # page long window 3600s -> 6s
LONG_S = BURN_WINDOWS[0][1] * SCALE
SHORT_S = BURN_WINDOWS[0][2] * SCALE


def make_snapshot(requests_ok=0, requests_failed=0, latencies=(),
                  queue_depth=None):
    """A realistic cumulative snapshot via a real registry.  The
    request counters and the latency histogram always exist (at zero),
    so ingesting a baseline creates ring points for them."""
    reg = MetricsRegistry()
    reg.counter("serve_requests_total",
                labels={"status": "ok"}).inc(requests_ok)
    reg.counter("serve_requests_total",
                labels={"status": "failed"}).inc(requests_failed)
    hist = reg.histogram("serve_request_latency_seconds")
    for value in latencies:
        hist.observe(value)
    if queue_depth is not None:
        reg.gauge("serve_queue_depth").set(queue_depth)
    return reg.snapshot()


# ---------------------------------------------------------------------- #
# Delta codec


class TestDeltaCodec:
    def test_roundtrip_counters_and_hist(self):
        prev = make_snapshot(requests_ok=3, latencies=[0.01, 0.2])
        cur = make_snapshot(requests_ok=7, requests_failed=2,
                            latencies=[0.01, 0.2, 0.5, 0.003])
        delta = snapshot_delta(prev, cur)
        rebuilt = apply_delta(prev, delta)

        ok = [s for s in rebuilt["serve_requests_total"]["series"]
              if s["labels"].get("status") == "ok"]
        assert ok[0]["value"] == 7
        failed = [s for s in rebuilt["serve_requests_total"]["series"]
                  if s["labels"].get("status") == "failed"]
        assert failed[0]["value"] == 2

        hist = rebuilt["serve_request_latency_seconds"]["series"][0]["value"]
        want = cur["serve_request_latency_seconds"]["series"][0]["value"]
        assert hist["count"] == want["count"] == 4
        assert hist["sum"] == pytest.approx(want["sum"])
        assert hist["buckets"]["counts"] == want["buckets"]["counts"]

    def test_unchanged_series_omitted(self):
        prev = make_snapshot(requests_ok=5, latencies=[0.1])
        delta = snapshot_delta(prev, prev)
        assert delta == {}

    def test_gauge_ships_level_not_diff(self):
        prev = make_snapshot(queue_depth=10)
        cur = make_snapshot(queue_depth=3)
        delta = snapshot_delta(prev, cur)
        assert delta["serve_queue_depth"]["series"][0]["value"] == 3
        rebuilt = apply_delta(prev, delta)
        assert rebuilt["serve_queue_depth"]["series"][0]["value"] == 3

    def test_apply_delta_onto_empty_base(self):
        cur = make_snapshot(requests_ok=4, latencies=[0.05])
        delta = snapshot_delta(None, cur)
        rebuilt = apply_delta(None, delta)
        assert rebuilt["serve_requests_total"]["series"][0]["value"] == 4
        hist = rebuilt["serve_request_latency_seconds"]["series"][0]["value"]
        assert hist["count"] == 1
        assert hist["mean"] == pytest.approx(0.05)

    def test_new_label_set_appears_in_delta(self):
        prev = make_snapshot(requests_ok=2)
        cur = make_snapshot(requests_ok=2, requests_failed=1)
        delta = snapshot_delta(prev, cur)
        series = delta["serve_requests_total"]["series"]
        assert len(series) == 1
        assert series[0]["labels"]["status"] == "failed"
        assert series[0]["value"] == 1


# ---------------------------------------------------------------------- #
# TimeSeriesStore


class TestTimeSeriesStore:
    def test_window_is_observed_increase(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        store.ingest("w0", make_snapshot(requests_ok=10), now=T0)
        store.ingest("w0", make_snapshot(requests_ok=25), now=T0 + 5)
        # Pre-existing counts at first observation are not an increase.
        got = store.window_scalar("serve_requests_total", 30.0, now=T0 + 5)
        assert got == pytest.approx(15.0)

    def test_window_sums_across_sources(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        for src in ("w0", "w1"):
            store.ingest(src, make_snapshot(requests_ok=0), now=T0)
        store.ingest("w0", make_snapshot(requests_ok=4), now=T0 + 5)
        store.ingest("w1", make_snapshot(requests_ok=6), now=T0 + 5)
        got = store.window_scalar("serve_requests_total", 30.0, now=T0 + 5)
        assert got == pytest.approx(10.0)

    def test_counter_reset_clamps(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        store.ingest("w0", make_snapshot(requests_ok=0), now=T0)
        store.ingest("w0", make_snapshot(requests_ok=100), now=T0 + 2)
        # Worker respawned under the same source name: counter restarts.
        store.ingest("w0", make_snapshot(requests_ok=7), now=T0 + 4)
        got = store.window_scalar("serve_requests_total", 30.0, now=T0 + 4)
        assert got == pytest.approx(7.0)

    def test_level_excludes_forgotten_sources(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        store.ingest("w0", make_snapshot(queue_depth=3), now=T0)
        store.ingest("w1", make_snapshot(queue_depth=5), now=T0)
        assert store.level("serve_queue_depth") == pytest.approx(8.0)
        store.forget("w1")
        assert store.level("serve_queue_depth") == pytest.approx(3.0)
        assert store.sources() == ["w0"]

    def test_window_hist_and_good_fraction(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        store.ingest("w0", make_snapshot(latencies=[]), now=T0)
        store.ingest("w0",
                     make_snapshot(latencies=[0.001, 0.002, 0.2, 0.3]),
                     now=T0 + 3)
        window = store.window_hist("serve_request_latency_seconds", 30.0,
                                   now=T0 + 3)
        assert window["count"] == 4
        assert window["sum"] == pytest.approx(0.503)
        good = store.good_fraction_le("serve_request_latency_seconds",
                                      0.005, 30.0, now=T0 + 3)
        assert good is not None
        fraction, events = good
        assert events == 4
        assert fraction == pytest.approx(0.5)

    def test_good_fraction_none_when_empty(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        assert store.good_fraction_le("serve_request_latency_seconds",
                                      0.1, 30.0, now=T0) is None

    def test_ingest_delta_accumulates(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=60.0)
        s1 = make_snapshot(requests_ok=3)
        s2 = make_snapshot(requests_ok=8)
        store.ingest_delta("w0", snapshot_delta(None, s1), now=T0)
        store.ingest_delta("w0", snapshot_delta(s1, s2), now=T0 + 4)
        assert store.level("serve_requests_total") == pytest.approx(8.0)
        got = store.window_scalar("serve_requests_total", 2.0, now=T0 + 4)
        assert got == pytest.approx(5.0)

    def test_memory_bound(self):
        store = TimeSeriesStore(interval_s=1.0, horizon_s=10.0)
        for i in range(1000):
            store.ingest("w0", make_snapshot(requests_ok=i), now=T0 + i)
        ring = next(iter(store._rings.values()))
        assert len(ring._points) <= 10
        assert store.history_span_s(now=T0 + 999) <= 11.0


# ---------------------------------------------------------------------- #
# SLO parsing and engine


class TestSLOParse:
    def test_latency_spec(self):
        slo = SLO.parse("latency:0.25:99.9")
        assert slo.kind == "latency"
        assert slo.threshold_s == pytest.approx(0.25)
        assert slo.objective == pytest.approx(0.999)
        assert slo.name == "latency-p99.9"

    def test_integer_percent_name(self):
        assert SLO.parse("latency:0.1:90").name == "latency-p90"

    def test_availability_and_custom_name(self):
        slo = SLO.parse("availability:99.5:api-up")
        assert slo.kind == "availability"
        assert slo.objective == pytest.approx(0.995)
        assert slo.name == "api-up"
        assert slo.error_budget == pytest.approx(0.005)

    def test_queue_wait(self):
        slo = SLO.parse("queue_wait:0.05:99:admit")
        assert slo.kind == "queue_wait"
        assert slo.name == "admit"

    @pytest.mark.parametrize("spec", [
        "latency:0.25",          # missing objective
        "availability",          # missing objective
        "cpu:0.5:99",            # unknown kind
        "latency:0:99",          # zero threshold
        "latency:0.25:100",      # objective not in (0, 1)
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            SLO.parse(spec)


def engine_with(store, spec, min_events=5, cooldown_s=60.0):
    return SLOEngine([SLO.parse(spec, min_events=min_events)], store,
                     window_scale=SCALE, cooldown_s=cooldown_s)


class TestSLOEngine:
    def _burning_store(self, events=20):
        """All `events` latencies blow a 1ms threshold inside the fast
        page window."""
        store = TimeSeriesStore(interval_s=0.1, horizon_s=60.0)
        store.ingest("w0", make_snapshot(latencies=[]), now=T0)
        store.ingest("w0", make_snapshot(latencies=[0.5] * events),
                     now=T0 + SHORT_S * 0.8)
        return store

    def test_page_fires_on_total_burn(self):
        store = self._burning_store()
        engine = engine_with(store, "latency:0.001:99:lat")
        fired = engine.evaluate(now=T0 + SHORT_S * 0.9)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.severity == "page"
        assert alert.slo == "lat"
        assert alert.bad_fraction == pytest.approx(1.0)
        assert alert.burn_rate > BURN_WINDOWS[0][3]
        row = alert.as_row()
        assert row["kind"] == "alert" and row["job"] == "lat"

    def test_min_events_gates(self):
        store = self._burning_store(events=3)
        engine = engine_with(store, "latency:0.001:99:lat", min_events=5)
        assert engine.evaluate(now=T0 + SHORT_S * 0.9) == []

    def test_cooldown_suppresses_then_refires(self):
        store = self._burning_store()
        engine = engine_with(store, "latency:0.001:99:lat", cooldown_s=10.0)
        t1 = T0 + SHORT_S * 0.9
        assert len(engine.evaluate(now=t1)) == 1
        assert engine.evaluate(now=t1 + 1.0) == []          # suppressed
        # Keep the burn alive inside the window, past the cooldown.
        store.ingest("w0", make_snapshot(latencies=[0.5] * 40),
                     now=t1 + 10.5)
        assert len(engine.evaluate(now=t1 + 11.0)) == 1     # refires

    def test_healthy_traffic_never_alerts(self):
        store = TimeSeriesStore(interval_s=0.1, horizon_s=60.0)
        store.ingest("w0", make_snapshot(requests_ok=0, latencies=[]),
                     now=T0)
        store.ingest("w0",
                     make_snapshot(requests_ok=50,
                                   latencies=[0.0005] * 50),
                     now=T0 + 2.0)
        for spec in ("latency:0.001:99", "availability:99"):
            engine = engine_with(store, spec)
            assert engine.evaluate(now=T0 + 2.5) == []

    def test_availability_counts_non_ok_as_bad(self):
        store = TimeSeriesStore(interval_s=0.1, horizon_s=60.0)
        store.ingest("w0", make_snapshot(), now=T0)
        store.ingest("w0", make_snapshot(requests_ok=2, requests_failed=18),
                     now=T0 + SHORT_S * 0.8)
        engine = engine_with(store, "availability:99:up")
        fired = engine.evaluate(now=T0 + SHORT_S * 0.9)
        assert len(fired) == 1
        assert fired[0].bad_fraction == pytest.approx(0.9)

    def test_status_rows(self):
        store = self._burning_store()
        engine = engine_with(store, "latency:0.001:99:lat")
        rows = engine.status(now=T0 + SHORT_S * 0.9)
        assert len(rows) == 1
        row = rows[0]
        assert row["slo"] == "lat"
        assert row["events"] == 20
        assert row["bad_fraction"] == pytest.approx(1.0)
        assert row["burn_rate"] > 1.0
        assert 0.0 <= row["budget_remaining"] <= 1.0


# ---------------------------------------------------------------------- #
# FlightRecorder


ALERT_PAGE_ROW = {"kind": "alert", "slo": "lat", "severity": "page",
                  "long_window_s": 6.0}


class TestFlightRecorder:
    def test_dump_bundle_shape(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="router")
        rec.note_row({"kind": "serve", "job": "r0", "status": "ok"})
        rec.note_sample({"unix": T0, "queue_depth": 1})
        path = rec.dump("worker_death", key="w0",
                        extra={"pid": 1234})
        assert path is not None and path.exists()
        assert "worker_death" in path.name and path.suffix == ".json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == FLIGHT_SCHEMA_VERSION
        assert doc["process"] == "router"
        assert doc["trigger"] == "worker_death" and doc["key"] == "w0"
        assert doc["journal"][-1]["job"] == "r0"
        assert doc["samples"][-1]["queue_depth"] == 1
        assert doc["extra"]["pid"] == 1234
        assert isinstance(doc["chrome_trace"]["traceEvents"], list)

    def test_dedup_by_trigger_key(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="router")
        assert rec.dump("worker_death", key="w0") is not None
        assert rec.dump("worker_death", key="w0") is None
        assert rec.dump("worker_death", key="w1") is not None
        assert len(rec.bundles) == 2

    def test_auto_dump_on_recovery_row(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="server")
        rec.note_row({"kind": "recovery", "job": "j", "span_id": "abc"})
        assert any("recovery" in p.name for p in rec.bundles)
        # Same span again: deduplicated.
        rec.note_row({"kind": "recovery", "job": "j", "span_id": "abc"})
        assert len(rec.bundles) == 1

    def test_auto_dump_on_page_alert_not_warn(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="server")
        rec.note_row(dict(ALERT_PAGE_ROW, severity="warn"))
        assert rec.bundles == []
        rec.note_row(dict(ALERT_PAGE_ROW))
        assert any("slo_breach" in p.name for p in rec.bundles)

    def test_auto_dump_on_trust_rejection(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="server")
        rec.note_row({"kind": "trust", "event": "key_rotated",
                      "target": "k"})
        assert rec.bundles == []
        rec.note_row({"kind": "trust", "event": "tamper_detected",
                      "target": "cache/abc"})
        assert any("trust_rejection" in p.name for p in rec.bundles)

    def test_ring_capacity_bounds_history(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="p", row_capacity=8)
        for i in range(100):
            rec.note_row({"kind": "serve", "job": f"r{i}"})
        path = rec.dump("manual")
        doc = json.loads(path.read_text())
        assert len(doc["journal"]) == 8
        assert doc["journal"][-1]["job"] == "r99"

    def test_bundle_size_bounded(self, tmp_path):
        rec = FlightRecorder(tmp_path, process="p",
                             max_bundle_bytes=4096)
        for i in range(256):
            rec.note_row({"kind": "serve", "job": f"req-{i}",
                          "blob": "x" * 200})
        path = rec.dump("manual")
        doc = json.loads(path.read_text())
        assert doc.get("truncated") is True
        assert path.stat().st_size <= 4096 + 1024  # floor slack only


# ---------------------------------------------------------------------- #
# LivePipeline


class TestLivePipeline:
    def _pipeline(self, tmp_path, **kwargs):
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        pipe = LivePipeline(
            slos=["latency:0.001:99:lat"], process="server",
            recorder=recorder, registry=registry,
            flight_dir=tmp_path / "flight",
            status_path=tmp_path / "status.json",
            window_scale=SCALE, min_events=5, cooldown_s=60.0,
            **kwargs)
        return pipe, registry, recorder

    def _burn(self, registry):
        hist = registry.histogram("serve_request_latency_seconds")
        for _ in range(20):
            hist.observe(0.5)

    def test_tick_fires_alert_into_journal_and_flight(self, tmp_path):
        pipe, registry, recorder = self._pipeline(tmp_path)
        # Materialize the series before the baseline tick: windows
        # measure observed increase, so a series first seen mid-run
        # contributes nothing until its second point.
        registry.histogram("serve_request_latency_seconds")
        pipe.tick(now=T0)
        self._burn(registry)
        # 2s later: beyond the store's 1s ring granularity, inside the
        # 6s long window (page long window 3600s x SCALE).
        fired = pipe.tick(now=T0 + 2.0)
        assert len(fired) == 1

        rows = [r for r in recorder.jobs if r["kind"] == "alert"]
        assert len(rows) == 1
        assert rows[0]["slo"] == "lat" and rows[0]["severity"] == "page"
        assert pipe.alerts[0]["slo"] == "lat"

        # Page alert auto-dumped a breach bundle via the listener tap.
        assert any("slo_breach" in p.name for p in pipe.flight.bundles)

        # obs_slo_* metrics exposed on the owning registry.
        snap = registry.snapshot()
        assert "obs_slo_burn_rate" in snap
        assert "obs_slo_budget_remaining" in snap

    def test_status_document_shape(self, tmp_path):
        pipe, registry, _ = self._pipeline(tmp_path)
        registry.counter("cluster_tenant_requests_total",
                         labels={"tenant": "acme", "status": "ok"}).inc(3)
        registry.counter("cluster_tenant_sim_cycles_total",
                         labels={"tenant": "acme"}).inc(1000)
        pipe.tick(now=T0)

        doc = json.loads((tmp_path / "status.json").read_text())
        assert doc["schema"] == STATUS_SCHEMA_VERSION
        assert doc["process"] == "server"
        assert doc["updated_unix"] == pytest.approx(T0)
        assert [t["tenant"] for t in doc["tenants"]] == ["acme"]
        assert doc["tenants"][0]["sim_cycles"] == pytest.approx(1000.0)
        assert doc["slos"][0]["slo"] == "lat"
        assert doc["alerts"] == []
        assert "serve_request_latency_seconds" not in doc["snapshot"] or \
            isinstance(doc["snapshot"], dict)

    def test_snapshot_fn_overrides_store_merge(self, tmp_path):
        captured = make_snapshot(requests_ok=42)
        pipe = LivePipeline(process="server",
                            status_path=tmp_path / "status.json",
                            snapshot_fn=lambda: captured)
        pipe.tick(now=T0)
        doc = json.loads((tmp_path / "status.json").read_text())
        got = [s for s in doc["snapshot"]["serve_requests_total"]["series"]
               if s["labels"].get("status") == "ok"]
        assert got[0]["value"] == 42

    def test_delta_since_last_push(self, tmp_path):
        pipe = LivePipeline(process="worker")
        s1 = make_snapshot(requests_ok=3)
        d1 = pipe.delta_since_last_push(s1)
        assert d1["serve_requests_total"]["series"][0]["value"] == 3
        s2 = make_snapshot(requests_ok=5)
        d2 = pipe.delta_since_last_push(s2)
        assert d2["serve_requests_total"]["series"][0]["value"] == 2
        assert pipe.delta_since_last_push(s2) == {}

    def test_start_stop_thread(self, tmp_path):
        pipe, _, _ = self._pipeline(tmp_path)
        pipe.interval_s = 0.05
        pipe.start()
        assert pipe._thread is not None
        pipe.stop(final_tick=True)
        assert pipe._thread is None
        assert (tmp_path / "status.json").exists()


# ---------------------------------------------------------------------- #
# tenant_table / prometheus rendering


class TestTenantTable:
    def _snapshot(self):
        reg = MetricsRegistry()
        for tenant, ok, failed, cycles in (("acme", 5, 1, 9000),
                                           ("beta", 2, 0, 400)):
            for _ in range(ok):
                reg.counter("cluster_tenant_requests_total",
                            labels={"tenant": tenant,
                                    "status": "ok"}).inc()
            for _ in range(failed):
                reg.counter("cluster_tenant_requests_total",
                            labels={"tenant": tenant,
                                    "status": "failed"}).inc()
            reg.counter("cluster_tenant_sim_cycles_total",
                        labels={"tenant": tenant}).inc(cycles)
        reg.counter("cluster_tenant_bootstraps_total",
                    labels={"tenant": "acme"}).inc(7)
        return reg.snapshot()

    def test_rollup_and_sort(self):
        rows = tenant_table(self._snapshot())
        assert [r["tenant"] for r in rows] == ["acme", "beta"]
        acme = rows[0]
        assert acme["requests"] == 6 and acme["ok"] == 5
        assert acme["failed"] == 1
        assert acme["sim_cycles"] == pytest.approx(9000)
        assert acme["bootstraps"] == pytest.approx(7)
        assert rows[1]["requests"] == 2 and rows[1]["failed"] == 0

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("cluster_tenant_sim_cycles_total",
                    labels={"tenant": "acme"}).inc(12)
        reg.histogram("serve_request_latency_seconds").observe(0.02)
        body = render_snapshot_prometheus(reg.snapshot())
        assert "# TYPE cluster_tenant_sim_cycles_total counter" in body
        assert 'cluster_tenant_sim_cycles_total{tenant="acme"} 12' in body
        assert "serve_request_latency_seconds_count 1" in body
        assert 'le="+Inf"' in body
        # _bucket lines are cumulative: the +Inf bucket equals count.
        buckets = [line for line in body.splitlines()
                   if line.startswith("serve_request_latency_seconds_bucket")]
        assert buckets[-1].endswith(" 1")


# ---------------------------------------------------------------------- #
# obs top / watch CLI


@pytest.fixture
def status_file(tmp_path):
    reg = MetricsRegistry()
    reg.counter("cluster_tenant_requests_total",
                labels={"tenant": "acme", "status": "ok"}).inc(4)
    reg.counter("cluster_tenant_sim_cycles_total",
                labels={"tenant": "acme"}).inc(800)
    snapshot = reg.snapshot()
    document = {
        "schema": STATUS_SCHEMA_VERSION,
        "process": "router",
        "updated_unix": T0,
        "interval_s": 0.5,
        "snapshot": snapshot,
        "tenants": tenant_table(snapshot),
        "workers": [{"id": "w0", "live": True, "pending": 2},
                    {"id": "w1", "live": False, "pending": 0}],
        "slos": [{"slo": "lat", "kind": "latency", "objective": 0.99,
                  "threshold_s": 0.25, "describe": "",
                  "events": 10, "bad_fraction": 0.1,
                  "burn_rate": 15.2, "budget_remaining": 0.4}],
        "alerts": [{"slo": "lat", "severity": "page", "burn_rate": 15.2,
                    "long_window_s": 6.0, "fired_unix": T0}],
        "flight_bundles": ["/tmp/flight-router-slo_breach-001.json"],
    }
    path = tmp_path / "status.json"
    path.write_text(json.dumps(document))
    return path


class TestLiveCli:
    def test_render_top_frame(self, status_file):
        frame = render_top(json.loads(status_file.read_text()))
        assert "cinnamon live — router" in frame
        assert "workers: 1/2 live" in frame
        assert "lat" in frame and "15.20" in frame
        assert "acme" in frame and "800" in frame
        assert "[page]" in frame
        assert "flight bundles: 1" in frame

    def test_top_once(self, status_file, capsys):
        assert obs_main(["top", str(status_file), "--once"]) == 0
        out = capsys.readouterr().out
        assert "cinnamon live" in out and "acme" in out

    def test_top_once_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert obs_main(["top", str(missing), "--once"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_watch_prom_out(self, status_file, tmp_path, capsys):
        out_file = tmp_path / "metrics.prom"
        code = obs_main(["watch", str(status_file), "--once",
                         "--prom-out", str(out_file)])
        assert code == 0
        body = out_file.read_text()
        assert 'cluster_tenant_sim_cycles_total{tenant="acme"} 800' in body
        assert "# TYPE cluster_tenant_requests_total counter" in body

    def test_watch_stdout(self, status_file, capsys):
        assert obs_main(["watch", str(status_file), "--once"]) == 0
        assert "cluster_tenant_requests_total" in capsys.readouterr().out
