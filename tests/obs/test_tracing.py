"""Span/Tracer API: lifecycle, context propagation, thread hand-off."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (NULL_SPAN, Span, current_span, disable, enable,
                       enabled, start_span, tracer)


class TestGate:
    def test_disabled_by_default_hands_out_null_span(self):
        assert not enabled()
        with start_span("noop") as span:
            assert span is NULL_SPAN
        assert tracer().spans() == []

    def test_null_span_absorbs_the_full_api(self):
        NULL_SPAN.set_attr("k", "v")
        NULL_SPAN.finish()
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.trace_id == ""

    def test_enable_reset_disable(self):
        enable(reset=True)
        assert enabled()
        with start_span("real") as span:
            assert span is not NULL_SPAN
        assert len(tracer().spans()) == 1
        disable()
        with start_span("off") as span:
            assert span is NULL_SPAN
        assert len(tracer().spans()) == 1  # nothing new collected


class TestPropagation:
    def test_nesting_parents_via_contextvars(self):
        enable(reset=True)
        with start_span("outer") as outer:
            with start_span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_begin_does_not_activate(self):
        enable(reset=True)
        span = tracer().begin("root", kind="serve")
        assert current_span() is None
        assert not span.finished
        span.finish()
        assert span.finished
        assert span.duration_s >= 0.0

    def test_use_span_carries_across_threads(self):
        enable(reset=True)
        root = tracer().begin("request", kind="serve")

        def worker():
            # A fresh executor thread has no inherited context...
            assert current_span() is None
            with tracer().use_span(root):
                with start_span("child") as child:
                    return child

        with ThreadPoolExecutor(max_workers=1) as pool:
            child = pool.submit(worker).result()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert not root.finished  # use_span never finishes

    def test_use_span_tolerates_none_and_null(self):
        with tracer().use_span(None):
            pass
        with tracer().use_span(NULL_SPAN):
            assert current_span() is None

    def test_exception_stamps_error_attr(self):
        enable(reset=True)
        with pytest.raises(ValueError):
            with start_span("boom") as span:
                raise ValueError("bad digit")
        assert span.finished
        assert "ValueError" in span.attrs["error"]


class TestCollection:
    def test_spans_filter_by_trace_and_kind(self):
        enable(reset=True)
        with start_span("a", kind="serve") as a:
            with start_span("b", kind="compile"):
                pass
        with start_span("c", kind="serve") as c:
            pass
        assert len(tracer().spans()) == 3
        assert len(tracer().spans(trace_id=a.trace_id)) == 2
        assert [s.name for s in tracer().spans(kind="serve")] == ["a", "c"]
        assert tracer().trace_ids() == [a.trace_id, c.trace_id]

    def test_add_span_collects_synthesized_children(self):
        enable(reset=True)
        parent = tracer().begin("compile", kind="compile")
        child = Span("pass:ntt", kind="pass", trace_id=parent.trace_id,
                     parent_id=parent.span_id, start_s=parent.start_s)
        child.finish(parent.start_s + 0.01)
        tracer().add_span(child)
        got = tracer().spans(trace_id=parent.trace_id, kind="pass")
        assert got == [child]
        assert abs(got[0].duration_s - 0.01) < 1e-9

    def test_as_dict_round_trips(self):
        enable(reset=True)
        with start_span("x", attrs={"k": 1}) as span:
            pass
        doc = span.as_dict()
        assert doc["trace_id"] == span.trace_id
        assert doc["attrs"] == {"k": 1}
        assert doc["duration_s"] >= 0.0
