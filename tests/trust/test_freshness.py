"""Freshness envelopes and the bounded replay window.

ReplayGuard takes an injectable clock.  EnvelopeMinter stamps real
``time.time()``, so the fake clock anchors to real time and the tests
advance it (or back-date envelopes) relative to that anchor —
deterministic without sleeping."""

import time

import pytest

from repro.trust.errors import ReplayError, StaleRequestError
from repro.trust.freshness import (EnvelopeMinter, FreshnessEnvelope,
                                   ReplayGuard)


class FakeClock:
    def __init__(self):
        self.now = time.time()

    def __call__(self):
        return self.now


class TestEnvelope:
    def test_minter_unique_nonces_and_increasing_seq(self):
        minter = EnvelopeMinter(sender="router")
        envs = [minter.mint() for _ in range(100)]
        assert len({e.nonce for e in envs}) == 100
        seqs = [e.seq for e in envs]
        assert seqs == sorted(seqs) and len(set(seqs)) == 100
        assert all(e.sender == "router" for e in envs)

    def test_header_roundtrip(self):
        env = EnvelopeMinter(sender="w0").mint()
        header = {"kind": "submit", **env.as_header_fields()}
        back = FreshnessEnvelope.from_header(header)
        assert back == env

    def test_missing_header_fields_is_none(self):
        assert FreshnessEnvelope.from_header({"kind": "submit"}) is None


class TestReplayGuard:
    def test_fresh_envelopes_pass(self):
        guard = ReplayGuard(clock=FakeClock())
        minter = EnvelopeMinter(sender="a")
        for _ in range(10):
            guard.check(minter.mint())
        assert guard.stats()["checked"] == 10
        assert guard.stats()["rejected"] == {
            "nonce-reuse": 0, "sequence-reorder": 0, "stale": 0}

    def test_nonce_reuse_rejected(self):
        guard = ReplayGuard(clock=FakeClock())
        env = EnvelopeMinter(sender="a").mint()
        guard.check(env)
        with pytest.raises(ReplayError) as info:
            guard.check(env)
        assert info.value.reason == "nonce-reuse"
        assert guard.stats()["rejected"]["nonce-reuse"] == 1

    def test_sequence_reorder_rejected(self):
        guard = ReplayGuard(clock=FakeClock())
        minter = EnvelopeMinter(sender="a")
        first, second = minter.mint(), minter.mint()
        guard.check(second)
        with pytest.raises(ReplayError) as info:
            guard.check(first)
        assert info.value.reason == "sequence-reorder"

    def test_senders_have_independent_sequences(self):
        guard = ReplayGuard(clock=FakeClock())
        a, b = EnvelopeMinter(sender="a"), EnvelopeMinter(sender="b")
        a1, a2 = a.mint(), a.mint()
        b1 = b.mint()
        guard.check(a1)
        guard.check(a2)
        guard.check(b1)  # must not be compared against sender a's seq

    def test_stale_request_rejected(self):
        clock = FakeClock()
        guard = ReplayGuard(window_s=30.0, clock=clock)
        env = FreshnessEnvelope(nonce="n1", issued_unix=clock.now - 40.0,
                                seq=1, sender="a")
        with pytest.raises(StaleRequestError):
            guard.check(env)
        assert guard.stats()["rejected"]["stale"] == 1

    def test_future_skew_rejected(self):
        clock = FakeClock()
        guard = ReplayGuard(skew_s=5.0, clock=clock)
        env = FreshnessEnvelope(nonce="n1", issued_unix=clock.now + 20.0,
                                seq=1, sender="a")
        with pytest.raises(StaleRequestError):
            guard.check(env)

    def test_window_prunes_old_nonces(self):
        clock = FakeClock()
        guard = ReplayGuard(window_s=30.0, clock=clock)
        minter = EnvelopeMinter(sender="a")
        for _ in range(5):
            guard.check(minter.mint())
        assert guard.stats()["tracked_nonces"] == 5
        clock.now += 1_000.0  # everything tracked falls out of the window
        late = FreshnessEnvelope(nonce="late", issued_unix=clock.now,
                                 seq=100, sender="a")
        guard.check(late)
        assert guard.stats()["tracked_nonces"] == 1

    def test_nonce_table_is_bounded(self):
        guard = ReplayGuard(max_nonces=16, clock=FakeClock())
        minter = EnvelopeMinter(sender="a")
        for _ in range(64):
            guard.check(minter.mint())
        assert guard.stats()["tracked_nonces"] <= 16

    def test_seen_is_a_passive_probe(self):
        guard = ReplayGuard(clock=FakeClock())
        env = EnvelopeMinter(sender="a").mint()
        assert guard.seen(env.nonce) is False
        guard.check(env)
        assert guard.seen(env.nonce) is True
