"""Evaluation-key lifecycle: versioned rotation, grace windows, revocation,
and signed manifest replication."""

import pytest

from repro.trust.errors import (ManifestSignatureError, StaleKeyError,
                                UnknownKeyError)
from repro.trust.keyvault import ACTIVE, RETIRED, REVOKED, KeyVault


class TestLifecycle:
    def test_issue_is_idempotent(self):
        vault = KeyVault()
        first = vault.issue("tenant-a")
        second = vault.issue("tenant-a")
        assert first.version == second.version == 1
        assert vault.active_version("tenant-a") == 1

    @staticmethod
    def statuses(vault, tenant):
        return {r["version"]: r["status"]
                for r in vault.manifest()["records"]
                if r["tenant"] == tenant}

    def test_rotate_retires_the_predecessor(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        record = vault.rotate("tenant-a")
        assert record.version == 2 and record.status == ACTIVE
        assert self.statuses(vault, "tenant-a") == {1: RETIRED, 2: ACTIVE}

    def test_revoke(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        vault.rotate("tenant-a")
        vault.revoke("tenant-a", 1)
        assert self.statuses(vault, "tenant-a")[1] == REVOKED
        # Active key is the newest non-revoked one.
        assert vault.active("tenant-a").version == 2


class TestValidate:
    def test_none_version_resolves_to_active(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        assert vault.validate("tenant-a", None).version == 1

    def test_unknown_tenant_and_version(self):
        vault = KeyVault()
        with pytest.raises(UnknownKeyError):
            vault.validate("nobody", None)
        vault.issue("tenant-a")
        with pytest.raises(UnknownKeyError):
            vault.validate("tenant-a", 99)

    def test_revoked_key_is_stale_with_revoked_status(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        vault.rotate("tenant-a")
        vault.revoke("tenant-a", 1)
        with pytest.raises(StaleKeyError) as info:
            vault.validate("tenant-a", 1)
        assert info.value.status == REVOKED
        assert info.value.active == 2

    def test_grace_window(self):
        vault = KeyVault(grace_versions=1)
        vault.issue("tenant-a")
        vault.rotate("tenant-a")   # v1 retired, within grace of v2
        assert vault.validate("tenant-a", 1).version == 1
        vault.rotate("tenant-a")   # v1 now two behind v3
        with pytest.raises(StaleKeyError) as info:
            vault.validate("tenant-a", 1)
        assert info.value.status == RETIRED

    def test_no_grace_rejects_retired_immediately(self):
        vault = KeyVault(grace_versions=0)
        vault.issue("tenant-a")
        vault.rotate("tenant-a")
        with pytest.raises(StaleKeyError):
            vault.validate("tenant-a", 1)


class TestReplication:
    def test_manifest_roundtrip(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        vault.rotate("tenant-a")
        vault.issue("tenant-b")
        doc = vault.manifest()
        replica = KeyVault()
        assert replica.install_manifest(doc) == 3
        assert replica.active_version("tenant-a") == 2
        assert replica.active_version("tenant-b") == 1
        # Revocations propagate on the next replication.
        vault.revoke("tenant-a", 1)
        replica.install_manifest(vault.manifest())
        with pytest.raises(StaleKeyError):
            replica.validate("tenant-a", 1)

    def test_manifest_carries_no_secrets(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        doc = vault.manifest()
        # Metadata only: ids, fingerprints, status — never key material
        # or seeds.
        assert set(doc["records"][0]) == {
            "tenant", "version", "key_id", "fingerprint", "status",
            "created_unix"}
        assert str(vault._seed) not in repr(doc["records"])

    def test_forged_manifest_rejected_and_vault_untouched(self):
        vault = KeyVault()
        vault.issue("tenant-a")
        doc = vault.manifest()
        doc["records"][0]["tenant"] = "mallory"
        replica = KeyVault()
        replica.issue("tenant-b")
        with pytest.raises(ManifestSignatureError):
            replica.install_manifest(doc)
        # Verify-then-install: the forgery changed nothing.
        assert replica.tenants() == ["tenant-b"]

    def test_wrong_signing_key_rejected(self):
        vault = KeyVault(signing_key=b"router-key")
        vault.issue("tenant-a")
        replica = KeyVault(signing_key=b"other-key")
        with pytest.raises(ManifestSignatureError):
            replica.install_manifest(vault.manifest())
