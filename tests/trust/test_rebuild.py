"""Reproducibility gate: cold rebuilds must produce bit-identical
content digests."""

import pytest

from repro.trust.rebuild import rebuild_check, verify_cache_dir
from repro.workloads.serving import serving_mix


@pytest.fixture(scope="module")
def small_mix():
    # Two workload classes keep the double-compile fast while still
    # exercising distinct program shapes.
    mix = serving_mix("small")
    return dict(sorted(mix.items())[:2])


def test_cold_rebuild_is_reproducible(small_mix, tmp_path):
    report = rebuild_check(small_mix, machine="cinnamon_4",
                           workdir=tmp_path)
    assert report["ok"], report["mismatched"]
    assert report["artifacts"] == len(small_mix)
    assert report["warm"] == report["cold"]
    # Digests are real sha256 hex, keyed by cache fingerprint.
    assert all(len(d) == 64 for d in report["warm"].values())


def test_reference_drift_detected(small_mix, tmp_path):
    baseline = rebuild_check(small_mix, workdir=tmp_path)
    reference = dict(baseline["warm"])
    key = next(iter(reference))
    reference[key] = "0" * 64  # simulate a drifted committed digest
    report = rebuild_check(small_mix, workdir=tmp_path,
                           reference=reference)
    assert report["reference_drift"] == [key]
    assert report["ok"] is False


def test_verify_cache_dir_audits_real_session_output(small_mix, tmp_path):
    from repro.runtime.session import CinnamonSession

    cache_dir = tmp_path / "cache"
    session = CinnamonSession(cache_dir=cache_dir)
    name, entry = next(iter(small_mix.items()))
    session.compile(entry.build(), entry.params, machine="cinnamon_4",
                    job=name)
    report = verify_cache_dir(cache_dir)
    assert report["verified"] and not report["tampered"]
    # Flip one artifact byte: the audit reports it without deleting it.
    victim = sorted(cache_dir.glob("*.pkl"))[0]
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0x01
    victim.write_bytes(bytes(data))
    report = verify_cache_dir(cache_dir)
    assert victim.name in report["tampered"]
    assert victim.exists()
