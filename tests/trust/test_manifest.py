"""Signed artifact manifests: record/verify, tamper quarantine, and the
fail-closed posture when the manifest itself is attacked."""

import hashlib
import json

import pytest

from repro.trust.errors import TamperDetectedError
from repro.trust.manifest import (ArtifactManifest, MANIFEST_FILENAME,
                                  QUARANTINE_DIRNAME, sha256_file)


def put(directory, name, data: bytes):
    path = directory / name
    path.write_bytes(data)
    return path


class TestRecordVerify:
    def test_recorded_bytes_verify(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        put(tmp_path, "a.pkl", b"artifact-a")
        manifest.record("a.pkl", sha256=hashlib.sha256(b"artifact-a")
                        .hexdigest())
        assert manifest.verify_bytes("a.pkl", b"artifact-a") is True
        assert "a.pkl" in manifest
        assert len(manifest) == 1

    def test_record_by_path_hashes_the_file(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        path = put(tmp_path, "b.pkl", b"artifact-b")
        entry = manifest.record("b.pkl", path=path)
        assert entry["sha256"] == sha256_file(path)
        assert entry["size"] == len(b"artifact-b")
        assert manifest.verify_file("b.pkl", path) is True

    def test_unrecorded_is_false_not_an_error(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        assert manifest.verify_bytes("ghost.pkl", b"whatever") is False

    def test_mismatch_raises_typed_error_and_fires_hook(self, tmp_path):
        seen = []
        manifest = ArtifactManifest(tmp_path, target="cache",
                                    on_tamper=seen.append)
        manifest.record("c.pkl", sha256=hashlib.sha256(b"good").hexdigest())
        with pytest.raises(TamperDetectedError) as info:
            manifest.verify_bytes("c.pkl", b"evil")
        assert info.value.target == "cache"
        assert info.value.name == "c.pkl"
        assert seen and seen[0] is info.value

    def test_forget_and_clear(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        manifest.record("a.pkl", sha256="0" * 64)
        manifest.record("b.pkl", sha256="1" * 64)
        manifest.forget("a.pkl")
        assert "a.pkl" not in manifest and "b.pkl" in manifest
        manifest.clear()
        assert len(manifest) == 0

    def test_digests_view(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        manifest.record("a.pkl", sha256="0" * 64, digest="d" * 64)
        manifest.record("b.pkl", sha256="1" * 64)  # no content digest
        assert manifest.digests() == {"a.pkl": "d" * 64}


class TestQuarantine:
    def test_tampered_file_moves_to_quarantine(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        path = put(tmp_path, "a.pkl", b"payload")
        manifest.record("a.pkl", path=path)
        path.write_bytes(b"tampered")
        with pytest.raises(TamperDetectedError):
            manifest.verify_file("a.pkl", path)
        dest = manifest.quarantine("a.pkl")
        assert dest is not None and dest.exists()
        assert dest.parent.name == QUARANTINE_DIRNAME
        assert not path.exists()          # moved, not copied
        assert "a.pkl" not in manifest    # row dropped

    def test_quarantine_of_missing_file_is_none(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        assert manifest.quarantine("never-existed.pkl") is None


class TestManifestItselfAttacked:
    def test_forged_signature_fails_closed(self, tmp_path):
        """Editing the manifest (rows or sig) voids everything in it:
        every artifact becomes unrecorded — a miss, never unpickled."""
        manifest = ArtifactManifest(tmp_path)
        put(tmp_path, "a.pkl", b"payload")
        manifest.record("a.pkl", sha256=hashlib.sha256(b"payload")
                        .hexdigest())
        doc = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        doc["entries"]["evil.pkl"] = {"sha256": "f" * 64}
        (tmp_path / MANIFEST_FILENAME).write_text(json.dumps(doc))
        assert manifest.entries() == {}
        # The forged manifest is itself quarantined as evidence.
        assert list(manifest.quarantine_dir.glob(
            f"{MANIFEST_FILENAME}.*"))

    def test_deleting_manifest_means_all_unrecorded(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        put(tmp_path, "a.pkl", b"payload")
        manifest.record("a.pkl", sha256=hashlib.sha256(b"payload")
                        .hexdigest())
        (tmp_path / MANIFEST_FILENAME).unlink()
        # No row -> unrecorded -> miss; the bytes must never be trusted.
        assert manifest.verify_bytes("a.pkl", b"payload") is False

    def test_key_mismatch_voids_the_manifest(self, tmp_path):
        ArtifactManifest(tmp_path, key=b"key-one").record(
            "a.pkl", sha256="0" * 64)
        other = ArtifactManifest(tmp_path, key=b"key-two")
        assert other.entries() == {}


class TestDirectoryAudit:
    def test_verify_directory_classifies(self, tmp_path):
        manifest = ArtifactManifest(tmp_path)
        ok = put(tmp_path, "ok.pkl", b"fine")
        manifest.record("ok.pkl", path=ok)
        bad = put(tmp_path, "bad.pkl", b"fine-too")
        manifest.record("bad.pkl", path=bad)
        bad.write_bytes(b"flipped")
        manifest.record("gone.pkl", sha256="0" * 64)
        report = manifest.verify_directory()
        assert report["verified"] == ["ok.pkl"]
        assert report["tampered"] == ["bad.pkl"]
        assert report["missing"] == ["gone.pkl"]
        # Read-only audit: nothing was quarantined or forgotten.
        assert bad.exists() and len(manifest) == 3
