"""Cross-process stability of the compile fingerprint.

The on-disk cache only survives interpreter restarts if
:func:`repro.runtime.fingerprint.fingerprint` is a pure function of the
request *content* — in particular it must not depend on Python's
per-process string-hash randomization.  These tests spawn subprocesses
under different ``PYTHONHASHSEED`` values and require identical keys.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

# Builds a canonical request (program with dict-ordered attrs, params,
# options) and prints its fingerprint.  Sets/dicts in the signature are
# where hash randomization would leak in.
SCRIPT = """
from repro.core.compiler import CompilerOptions
from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.runtime import fingerprint

prog = CinnamonProgram("hashseed-probe", level=6)
a, b = prog.input("alpha"), prog.input("beta")
c = a * b + a.rotate(3)
d = c * prog.plaintext("weights") + b
prog.output("out", d)
opts = CompilerOptions(num_chips=2, keyswitch_policy="cinnamon")
print(fingerprint(prog, ArchParams(max_level=6), opts))
"""


def fingerprint_under_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", SCRIPT], env=env, text=True,
        capture_output=True, timeout=120)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


class TestFingerprintStability:
    def test_identical_across_hash_seeds(self):
        keys = {seed: fingerprint_under_hashseed(seed)
                for seed in ("0", "1", "4242")}
        assert len(set(keys.values())) == 1, keys
        key = next(iter(keys.values()))
        assert len(key) == 64 and int(key, 16) >= 0  # sha256 hex

    def test_matches_in_process_fingerprint(self):
        """The subprocess key equals this process's key for the same
        request, whatever hash seed the test runner happens to use."""
        from repro.core.compiler import CompilerOptions
        from repro.core.dsl.program import CinnamonProgram
        from repro.fhe import ArchParams
        from repro.runtime import fingerprint

        prog = CinnamonProgram("hashseed-probe", level=6)
        a, b = prog.input("alpha"), prog.input("beta")
        c = a * b + a.rotate(3)
        d = c * prog.plaintext("weights") + b
        prog.output("out", d)
        opts = CompilerOptions(num_chips=2, keyswitch_policy="cinnamon")
        local = fingerprint(prog, ArchParams(max_level=6), opts)
        assert local == fingerprint_under_hashseed("7")
