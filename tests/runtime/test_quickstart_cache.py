"""CI gate: the quickstart program through the session twice.

The second run must be a cache hit (no IR passes re-run, byte-identical
ISA), and the merged trace JSON is written where CI can pick it up as a
build artifact (``RUNTIME_TRACE_DIR``, defaulting to the pytest tmp dir).
"""

import json
import os
from pathlib import Path

from repro.core.isa.encoding import disassemble
from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.runtime import CinnamonSession


def quickstart_program():
    """The datacenter-scale program from ``examples/quickstart.py``."""
    program = CinnamonProgram("quickstart-64k", level=16)
    a = program.input("x")
    b = program.input("y")
    program.output("out", a * b + a.rotate(1))
    return program


def test_quickstart_twice_is_cache_hit_with_trace_artifact(tmp_path):
    artifact_dir = Path(os.environ.get("RUNTIME_TRACE_DIR", tmp_path))
    params = ArchParams(max_level=16)
    session = CinnamonSession(cache_dir=tmp_path / "cache")

    first = session.compile(quickstart_program(), params,
                            machine="cinnamon_4", job="quickstart")
    session.simulate(first, "cinnamon_4", job="quickstart")
    second = session.compile(quickstart_program(), params,
                             machine="cinnamon_4", job="quickstart")

    # Second run served from cache: same artifact, byte-identical ISA.
    assert second is first
    assert disassemble(second.isa) == disassemble(first.isa)

    jobs = session.trace()["jobs"]
    compiles = [j for j in jobs if j["kind"] == "compile"]
    assert [j["cache"] for j in compiles] == ["miss", "memory"]
    assert compiles[0]["compile"]["passes"]  # instrumented miss
    assert compiles[1]["compile"] is None    # hit ran no passes

    trace_path = session.export_trace(artifact_dir / "quickstart_trace.json")
    doc = json.loads(trace_path.read_text())
    assert doc["cache"]["memory_hits"] >= 1
    assert any(j["kind"] == "simulate" and j["simulate"] for j in doc["jobs"])
