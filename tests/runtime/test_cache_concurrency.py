"""Thread-safety of :class:`CompileCache` and invalidate() semantics.

``run_batch`` workers and the serving layer's shard pool all hit one
cache instance concurrently; the LRU's OrderedDict mutations must hold
under that load (satellite of the serving PR).
"""

import threading

import pytest

from repro.runtime import CompileCache


class FakeArtifact:
    """Stands in for a CompiledProgram: the cache never inspects it."""

    def __init__(self, token):
        self.token = token


class TestConcurrentAccess:
    def test_hammer_mixed_get_put_invalidate(self):
        """8 threads x 100 mixed operations: no exceptions, no corruption."""
        cache = CompileCache(capacity=16)
        keys = [f"key-{i:02d}" for i in range(32)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_id):
            try:
                barrier.wait()
                for i in range(100):
                    key = keys[(worker_id * 7 + i) % len(keys)]
                    op = (worker_id + i) % 5
                    if op in (0, 1):
                        cache.put(key, FakeArtifact((worker_id, i)))
                    elif op in (2, 3):
                        compiled, source = cache.get(key)
                        assert source in ("memory", "miss")
                        if compiled is not None:
                            assert isinstance(compiled, FakeArtifact)
                    elif i % 25 == 0:
                        cache.invalidate()  # occasional clear-all
                    else:
                        cache.invalidate(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # LRU invariant survives the hammer.
        assert len(cache) <= 16
        stats = cache.stats
        total_lookups = stats.memory_hits + stats.disk_hits + stats.misses
        assert total_lookups > 0 and stats.stores > 0
        # Every surviving entry is retrievable and consistent.
        for key in keys:
            compiled, source = cache.get(key)
            assert (compiled is None) == (source == "miss")

    def test_hammer_with_disk_layer(self, tmp_path):
        """Same hammer against the write-through disk layer."""
        cache = CompileCache(capacity=8, cache_dir=tmp_path)
        errors = []

        def worker(worker_id):
            try:
                for i in range(50):
                    key = f"key-{(worker_id + i) % 6}"
                    if i % 2 == 0:
                        cache.put(key, FakeArtifact(i))
                    else:
                        cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestInvalidate:
    def fill(self, cache):
        for i in range(4):
            cache.put(f"key-{i}", FakeArtifact(i))

    def test_invalidate_single_key_memory(self):
        cache = CompileCache()
        self.fill(cache)
        cache.invalidate("key-1")
        assert "key-1" not in cache
        assert "key-0" in cache and len(cache) == 3

    def test_invalidate_all_memory(self):
        cache = CompileCache()
        self.fill(cache)
        cache.invalidate()
        assert len(cache) == 0
        for i in range(4):
            assert f"key-{i}" not in cache

    def test_invalidate_single_key_disk(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        self.fill(cache)
        assert (tmp_path / "key-2.pkl").exists()
        cache.invalidate("key-2")
        assert not (tmp_path / "key-2.pkl").exists()
        assert (tmp_path / "key-0.pkl").exists()
        # A fresh cache over the same directory no longer sees the key.
        fresh = CompileCache(cache_dir=tmp_path)
        assert "key-2" not in fresh and "key-0" in fresh

    def test_invalidate_all_disk(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        self.fill(cache)
        cache.invalidate()
        assert not list(tmp_path.glob("*.pkl"))
        assert len(cache) == 0

    def test_invalidate_missing_key_is_noop(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        self.fill(cache)
        cache.invalidate("no-such-key")
        assert len(cache) == 4
