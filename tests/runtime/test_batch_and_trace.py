"""Batch execution through the worker pool and the merged JSON trace."""

import json

from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.runtime import CinnamonSession, CompileJob
from repro.runtime.trace import TRACE_SCHEMA_VERSION

PARAMS = ArchParams(max_level=6)


def make_program(name, rotation):
    prog = CinnamonProgram(name, level=6)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", a * b + a.rotate(rotation))
    return prog


def make_jobs():
    """Four structurally distinct programs (the acceptance batch)."""
    return [
        CompileJob(make_program(f"batch-{i}", rotation=i + 1), PARAMS,
                   machine=2, name=f"batch-{i}")
        for i in range(4)
    ]


class TestBatch:
    def test_batch_compiles_and_simulates_concurrently(self):
        session = CinnamonSession()
        results = session.run_batch(make_jobs(), max_workers=4)
        assert len(results) == 4
        assert [r.job for r in results] == [f"batch-{i}" for i in range(4)]
        for result in results:
            assert result.cache == "miss"
            assert result.compiled.instruction_count > 0
            assert result.result is not None and result.result.cycles > 0

    def test_batch_results_keep_input_order_with_one_worker(self):
        session = CinnamonSession()
        results = session.run_batch(make_jobs(), max_workers=1)
        assert [r.job for r in results] == [f"batch-{i}" for i in range(4)]

    def test_duplicate_jobs_coalesce_to_one_compile(self):
        session = CinnamonSession()
        jobs = [CompileJob(make_program("dup", 1), PARAMS, machine=2,
                           name=f"dup-{i}") for i in range(6)]
        results = session.run_batch(jobs, max_workers=3)
        stats = session.cache_stats
        assert stats.stores == 1  # exactly one real compile
        assert len({id(r.compiled) for r in results}) == 1

    def test_rerun_batch_is_all_hits(self):
        session = CinnamonSession()
        session.run_batch(make_jobs(), max_workers=2)
        session.clear_trace()
        session.run_batch(make_jobs(), max_workers=2)
        compiles = [j for j in session.trace()["jobs"]
                    if j["kind"] == "compile"]
        assert len(compiles) == 4
        assert all(j["cache"] == "memory" for j in compiles)


class TestMergedTrace:
    def test_one_trace_covers_every_job(self):
        """Acceptance: a >=4 job batch produces one merged JSON trace with
        per-pass compile timings and per-FU utilization for every job."""
        session = CinnamonSession()
        session.run_batch(make_jobs(), max_workers=4)
        doc = session.trace()
        assert doc["schema"] == TRACE_SCHEMA_VERSION
        assert set(doc["cache"]) >= {"memory_hits", "disk_hits", "misses"}

        by_job = {}
        for entry in doc["jobs"]:
            by_job.setdefault(entry["job"], {})[entry["kind"]] = entry
        assert set(by_job) == {f"batch-{i}" for i in range(4)}
        for kinds in by_job.values():
            compile_entry = kinds["compile"]
            pass_names = [p["name"] for p in
                          compile_entry["compile"]["passes"]]
            assert "lower_to_limb" in pass_names
            assert "codegen" in pass_names
            assert all(p["seconds"] >= 0 for p in
                       compile_entry["compile"]["passes"])
            sim_entry = kinds["simulate"]
            fu_util = sim_entry["simulate"]["fu_utilization"]
            assert {"ntt", "add", "mul", "bconv"} <= set(fu_util)
            assert sim_entry["simulate"]["cycles"] > 0

    def test_trace_is_valid_json_on_disk(self, tmp_path):
        session = CinnamonSession()
        session.run_batch(make_jobs(), max_workers=2)
        path = session.export_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRACE_SCHEMA_VERSION
        assert len(doc["jobs"]) == 8  # 4 compiles + 4 simulations

    def test_simulation_results_are_memoized(self):
        session = CinnamonSession()
        compiled = session.compile(make_program("sim", 1), PARAMS, machine=2)
        first = session.simulate(compiled, 2)
        second = session.simulate(compiled, 2)
        assert second is first
        sims = [j for j in session.trace()["jobs"] if j["kind"] == "simulate"]
        assert [s["cache"] for s in sims] == ["miss", "memory"]
        # The memoized entry does not repeat the metrics payload.
        assert sims[1]["simulate"] is None
