"""Cache behaviour of the runtime session: hit/miss semantics, on-disk
round trips, and schema-version invalidation."""

import pytest

from repro.core.compiler import CompilerOptions
from repro.core.dsl.program import CinnamonProgram
from repro.core.isa.encoding import disassemble
from repro.fhe import ArchParams
from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    CinnamonSession,
    CompileCache,
    fingerprint,
)

PARAMS = ArchParams(max_level=6)


def build_program(name="cachetest", rotation=1, extra_op=False):
    prog = CinnamonProgram(name, level=6)
    a, b = prog.input("a"), prog.input("b")
    c = a * b + a.rotate(rotation)
    if extra_op:
        c = c + b
    prog.output("y", c)
    return prog


class TestFingerprint:
    def test_identical_programs_same_key(self):
        opts = CompilerOptions(num_chips=2)
        assert fingerprint(build_program(), PARAMS, opts) == \
            fingerprint(build_program(), PARAMS, opts)

    def test_program_structure_changes_key(self):
        opts = CompilerOptions(num_chips=2)
        base = fingerprint(build_program(), PARAMS, opts)
        assert fingerprint(build_program(rotation=2), PARAMS, opts) != base
        assert fingerprint(build_program(extra_op=True), PARAMS, opts) != base

    def test_options_change_key(self):
        base = fingerprint(build_program(), PARAMS, CompilerOptions(num_chips=2))
        for perturbed in (
            CompilerOptions(num_chips=4),
            CompilerOptions(num_chips=2, keyswitch_policy="cifher"),
            CompilerOptions(num_chips=2, enable_batching=False),
            CompilerOptions(num_chips=2, registers_per_chip=128),
        ):
            assert fingerprint(build_program(), PARAMS, perturbed) != base

    def test_params_change_key(self):
        opts = CompilerOptions(num_chips=2)
        assert fingerprint(build_program(), ArchParams(max_level=8), opts) != \
            fingerprint(build_program(), PARAMS, opts)

    def test_machine_spec_normalizes_into_key(self):
        # "cinnamon_4" and num_chips=4 resolve to the same machine layout.
        named = CompilerOptions(machine="cinnamon_4")
        assert named.num_chips == 4
        assert fingerprint(build_program(), PARAMS, named) == \
            fingerprint(build_program(), PARAMS,
                        CompilerOptions(machine="Cinnamon-4"))


class TestMemoryCache:
    def test_identical_program_is_memory_hit(self):
        session = CinnamonSession()
        first = session.compile(build_program(), PARAMS, machine=2)
        second = session.compile(build_program(), PARAMS, machine=2)
        assert second is first
        assert session.cache_stats.memory_hits == 1
        assert session.cache_stats.misses == 1

    def test_hit_runs_no_passes(self):
        """The acceptance check: a cache hit re-runs no IR passes,
        verified through the pass-timing trace."""
        session = CinnamonSession()
        session.compile(build_program(), PARAMS, machine=2)
        session.compile(build_program(), PARAMS, machine=2)
        miss, hit = session.trace()["jobs"]
        assert miss["cache"] == "miss"
        assert [p["name"] for p in miss["compile"]["passes"]] and \
            miss["compile"]["counters"]["isa_instructions"] > 0
        assert hit["cache"] == "memory"
        assert hit["compile"] is None  # no passes ran

    def test_perturbed_program_is_miss(self):
        session = CinnamonSession()
        session.compile(build_program(), PARAMS, machine=2)
        session.compile(build_program(rotation=3), PARAMS, machine=2)
        assert session.cache_stats.misses == 2
        assert session.cache_stats.memory_hits == 0

    def test_perturbed_options_is_miss(self):
        session = CinnamonSession()
        session.compile(build_program(), PARAMS, machine=2)
        session.compile(build_program(), PARAMS, machine=2,
                        keyswitch_policy="cifher")
        assert session.cache_stats.misses == 2

    def test_lru_capacity_evicts(self):
        session = CinnamonSession(capacity=1)
        session.compile(build_program(), PARAMS, machine=2)
        session.compile(build_program(rotation=2), PARAMS, machine=2)
        session.compile(build_program(), PARAMS, machine=2)  # evicted -> miss
        assert session.cache_stats.evictions >= 1
        assert session.cache_stats.misses == 3


class TestDiskCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        writer = CinnamonSession(cache_dir=tmp_path)
        original = writer.compile(build_program(), PARAMS, machine=2)

        reader = CinnamonSession(cache_dir=tmp_path)
        restored = reader.compile(build_program(), PARAMS, machine=2)
        assert restored is not original
        assert reader.cache_stats.disk_hits == 1
        # The ISA schedule survives the pickle round trip byte-for-byte.
        assert disassemble(restored.isa) == disassemble(original.isa)
        assert reader.trace()["jobs"][0]["cache"] == "disk"

    def test_simulation_of_restored_artifact_matches(self, tmp_path):
        writer = CinnamonSession(cache_dir=tmp_path)
        original = writer.compile(build_program(), PARAMS, machine=2)
        reader = CinnamonSession(cache_dir=tmp_path)
        restored = reader.compile(build_program(), PARAMS, machine=2)
        assert restored.simulate(2).cycles == original.simulate(2).cycles

    def test_schema_version_bump_invalidates(self, tmp_path):
        writer = CinnamonSession(cache_dir=tmp_path)
        writer.compile(build_program(), PARAMS, machine=2)

        bumped = CinnamonSession(cache_dir=tmp_path,
                                 schema_version=CACHE_SCHEMA_VERSION + 1)
        bumped.compile(build_program(), PARAMS, machine=2)
        assert bumped.cache_stats.disk_hits == 0
        assert bumped.cache_stats.misses == 1

    def test_unrecorded_payload_is_a_miss_never_unpickled(self, tmp_path):
        """A file with no signed-manifest row (dropped out-of-band into
        the cache dir) is a plain miss: its bytes never reach pickle, and
        it is left in place — a racing writer's manifest row may simply
        not have landed yet."""
        cache = CompileCache(cache_dir=tmp_path)
        key = "0" * 64
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        compiled, source = cache.get(key)
        assert compiled is None and source == "miss"
        assert cache.stats.invalidated == 0
        assert cache.stats.tampered == 0
        assert (tmp_path / f"{key}.pkl").exists()

    def test_bitflipped_payload_degrades_to_miss_and_quarantine(
            self, tmp_path):
        """An attacker flipping one bit of an on-disk pickle gets a
        recompile, not a crash — and never an unpickle: the signed
        manifest catches the hash mismatch first, the evidence moves to
        quarantine/, and the tamper is journaled as a trust row."""
        writer = CinnamonSession(cache_dir=tmp_path)
        original = writer.compile(build_program(), PARAMS, machine=2)
        victim = tmp_path / f"{original.cache_key}.pkl"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))

        reader = CinnamonSession(cache_dir=tmp_path)
        restored = reader.compile(build_program(), PARAMS, machine=2)
        # Degraded to a miss: recompiled from source, same semantics.
        assert reader.cache_stats.disk_hits == 0
        assert reader.cache_stats.misses == 1
        assert reader.cache_stats.tampered == 1
        assert reader.cache_stats.quarantined == 1
        assert disassemble(restored.isa) == disassemble(original.isa)
        # Evidence preserved; the path itself holds the freshly
        # recompiled (re-recorded) artifact, not the poisoned bytes.
        quarantined = list((tmp_path / "quarantine")
                           .glob(f"{victim.name}.*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == bytes(data)
        assert victim.read_bytes() != bytes(data)
        # The detection is journaled (trace schema 7 trust rows).
        trust_rows = [row for row in reader.trace()["jobs"]
                      if row.get("kind") == "trust"]
        assert any(row.get("event") == "tamper_detected"
                   for row in trust_rows)
        # The recompile healed the cache: next session disk-hits again.
        healed = CinnamonSession(cache_dir=tmp_path)
        healed.compile(build_program(), PARAMS, machine=2)
        assert healed.cache_stats.disk_hits == 1
        assert healed.cache_stats.tampered == 0

    def test_invalidate_clears_both_layers(self, tmp_path):
        session = CinnamonSession(cache_dir=tmp_path)
        compiled = session.compile(build_program(), PARAMS, machine=2)
        session.invalidate(compiled.cache_key)
        session.compile(build_program(), PARAMS, machine=2)
        assert session.cache_stats.disk_hits == 0
        assert session.cache_stats.misses == 2


class TestEmitIsaKeying:
    def test_emit_isa_distinguishes_artifacts(self):
        session = CinnamonSession()
        without = session.compile(build_program(), PARAMS, machine=2,
                                  emit_isa=False)
        with_isa = session.compile(build_program(), PARAMS, machine=2)
        assert without.isa is None and with_isa.isa is not None

    def test_simulate_without_isa_raises(self):
        session = CinnamonSession()
        compiled = session.compile(build_program(), PARAMS, machine=2,
                                   emit_isa=False)
        with pytest.raises(ValueError, match="emit_isa"):
            compiled.simulate(2)
