"""Cross-*process* safety of the CompileCache disk layer.

A :mod:`repro.cluster` deployment points every worker process at one
``cache_dir``.  Artifact writes are temp+``os.replace`` atomic, and the
``index.json`` read-modify-write cycle runs under an advisory ``flock``
(:class:`repro.runtime.locking.FileLock`) — so N processes hammering one
directory must end with every artifact loadable, the index consistent
with the artifacts on disk, and no leaked ``*.tmp`` files.
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.runtime import CompileCache
from repro.runtime.cache import INDEX_FILENAME
from repro.runtime.locking import FileLock, FileLockTimeout

N_PROCS = 4
OPS_PER_PROC = 40
KEYS = [f"key-{i:02d}" for i in range(12)]


class FakeArtifact:
    """Stands in for a CompiledProgram: the cache never inspects it."""

    def __init__(self, token):
        self.token = token

    def __eq__(self, other):
        return isinstance(other, FakeArtifact) and other.token == self.token


def _hammer(cache_dir, proc_id, error_queue):
    """One worker process: interleaved puts/gets/invalidates."""
    try:
        cache = CompileCache(capacity=4, cache_dir=cache_dir)
        for i in range(OPS_PER_PROC):
            key = KEYS[(proc_id * 5 + i) % len(KEYS)]
            op = (proc_id + i) % 4
            if op in (0, 1):
                cache.put(key, FakeArtifact((proc_id, i)))
            elif op == 2:
                compiled, source = cache.get(key)
                if compiled is not None:
                    assert isinstance(compiled, FakeArtifact), source
            else:
                cache.invalidate(key)
    except Exception as exc:  # pragma: no cover - failure path
        error_queue.put(f"proc {proc_id}: {exc!r}")


@pytest.fixture
def mp_ctx():
    # fork is cheap and inherits sys.path; the test module itself is
    # importable either way because it lives in a package.
    return multiprocessing.get_context("fork")


class TestMultiProcessHammer:
    def test_hammer_four_processes(self, tmp_path, mp_ctx):
        error_queue = mp_ctx.SimpleQueue()
        procs = [
            mp_ctx.Process(target=_hammer, args=(tmp_path, p, error_queue))
            for p in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        errors = []
        while not error_queue.empty():
            errors.append(error_queue.get())
        assert not errors

        # No torn temp files survive the hammer.
        assert not list(tmp_path.glob("*.tmp"))

        # Every artifact on disk unpickles cleanly and is self-consistent.
        fresh = CompileCache(cache_dir=tmp_path)
        for path in tmp_path.glob("*.pkl"):
            key = path.stem
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            assert payload["key"] == key
            compiled, source = fresh.get(key)
            assert source == "disk" or compiled is not None

        # Index rows describe exactly the artifacts that exist.
        index = fresh.disk_entries()
        on_disk = {p.stem for p in tmp_path.glob("*.pkl")}
        assert set(index) == on_disk
        for key, row in index.items():
            assert row["size"] == (tmp_path / f"{key}.pkl").stat().st_size

    def test_concurrent_writers_keep_each_others_index_rows(
            self, tmp_path, mp_ctx):
        """Two processes storing disjoint keys: neither write is lost."""

        def store(lo, hi):
            cache = CompileCache(cache_dir=tmp_path)
            for i in range(lo, hi):
                cache.put(f"disjoint-{i:02d}", FakeArtifact(i))

        procs = [mp_ctx.Process(target=store, args=(lo, lo + 10))
                 for lo in (0, 10)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)

        index = CompileCache(cache_dir=tmp_path).disk_entries()
        assert set(index) == {f"disjoint-{i:02d}" for i in range(20)}


class TestIndexMaintenance:
    def test_put_and_invalidate_update_index(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        cache.put("a", FakeArtifact(1))
        cache.put("b", FakeArtifact(2))
        assert set(cache.disk_entries()) == {"a", "b"}
        cache.invalidate("a")
        assert set(cache.disk_entries()) == {"b"}
        cache.invalidate()
        assert cache.disk_entries() == {}
        assert not list(tmp_path.glob("*.pkl"))

    def test_index_visible_to_other_instances(self, tmp_path):
        CompileCache(cache_dir=tmp_path).put("shared", FakeArtifact(7))
        other = CompileCache(cache_dir=tmp_path)
        assert "shared" in other.disk_entries()
        compiled, source = other.get("shared")
        assert source == "disk" and compiled == FakeArtifact(7)

    def test_corrupt_index_is_tolerated(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        cache.put("x", FakeArtifact(0))
        (tmp_path / INDEX_FILENAME).write_text("{ not json")
        assert cache.disk_entries() == {}
        cache.put("y", FakeArtifact(1))  # rebuilds from empty
        assert "y" in cache.disk_entries()

    def test_stale_schema_load_drops_index_row(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        cache.put("old", FakeArtifact(0))
        stale = CompileCache(cache_dir=tmp_path,
                             schema_version=cache.schema_version + 1)
        compiled, source = stale.get("old")
        assert compiled is None and source == "miss"
        assert "old" not in stale.disk_entries()
        assert not (tmp_path / "old.pkl").exists()

    def test_memory_only_cache_has_no_index(self):
        cache = CompileCache()
        cache.put("k", FakeArtifact(1))
        assert cache.disk_entries() == {}


class TestFileLock:
    def test_exclusion_across_processes(self, tmp_path, mp_ctx):
        """While the parent holds the flock, a child cannot acquire it."""
        lock = FileLock(tmp_path / "test.lock")

        def try_lock(result_queue):
            child = FileLock(tmp_path / "test.lock", timeout_s=0.2)
            try:
                with child:
                    result_queue.put("acquired")
            except FileLockTimeout:
                result_queue.put("timeout")

        result_queue = mp_ctx.SimpleQueue()
        with lock:
            proc = mp_ctx.Process(target=try_lock, args=(result_queue,))
            proc.start()
            proc.join(timeout=30)
        assert result_queue.get() == "timeout"
        # After release, the same child path succeeds.
        proc = mp_ctx.Process(target=try_lock, args=(result_queue,))
        proc.start()
        proc.join(timeout=30)
        assert result_queue.get() == "acquired"

    def test_reentrant_use_as_context_manager(self, tmp_path):
        lock = FileLock(tmp_path / "cm.lock")
        with lock:
            assert lock.held
        assert not lock.held

    def test_index_written_atomically(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        cache.put("k", FakeArtifact(1))
        doc = json.loads((tmp_path / INDEX_FILENAME).read_text())
        assert doc["schema"] == cache.schema_version
        assert "k" in doc["entries"]
