"""The `repro.compile()` facade, machine-spec unification, and the
deprecated legacy entry points."""

import warnings

import numpy as np
import pytest

import repro
from repro.core.compiler import CompilerOptions
from repro.core.dsl.program import CinnamonProgram
from repro.fhe import ArchParams
from repro.sim.config import (
    CINNAMON_4,
    CINNAMON_M,
    MachineConfig,
    resolve_machine,
)

PARAMS = ArchParams(max_level=6)


def build_program(name="facade"):
    prog = CinnamonProgram(name, level=6)
    a, b = prog.input("a"), prog.input("b")
    prog.output("y", a * b + a.rotate(1))
    return prog


class TestResolveMachine:
    def test_passthrough_and_int(self):
        assert resolve_machine(CINNAMON_4) is CINNAMON_4
        assert resolve_machine(4) is CINNAMON_4
        assert resolve_machine(None, default_chips=4) is CINNAMON_4

    def test_names(self):
        assert resolve_machine("cinnamon_4") is CINNAMON_4
        assert resolve_machine("Cinnamon-4") is CINNAMON_4
        assert resolve_machine("CINNAMON_M") is CINNAMON_M
        assert resolve_machine("4") is CINNAMON_4

    def test_nonstandard_size(self):
        machine = resolve_machine("cinnamon_6")
        assert isinstance(machine, MachineConfig)
        assert machine.num_chips == 6

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine("cinnamon_x")
        with pytest.raises(TypeError):
            resolve_machine(3.5)
        with pytest.raises(ValueError):
            resolve_machine(None)

    def test_options_machine_replaces_numchips_duplication(self):
        opts = CompilerOptions(machine="cinnamon_8")
        assert opts.num_chips == 8
        assert opts.registers_per_chip == CINNAMON_4.chip.registers
        assert opts.machine.name == "Cinnamon-8"


class TestFacade:
    def test_compile_and_simulate_by_name(self):
        compiled = repro.compile(build_program("facade-name"), PARAMS,
                                 machine="cinnamon_4")
        assert compiled.options.num_chips == 4
        result = compiled.simulate("cinnamon_4")
        assert result.machine == "Cinnamon-4"
        assert result.cycles > 0

    def test_simulate_defaults_to_compile_machine(self):
        compiled = repro.compile(build_program("facade-default"), PARAMS,
                                 machine=2)
        assert compiled.simulate().machine == "Cinnamon-2"

    def test_facade_uses_default_session_cache(self):
        before = repro.default_session().cache_stats.memory_hits
        repro.compile(build_program("facade-cached"), PARAMS, machine=2)
        repro.compile(build_program("facade-cached"), PARAMS, machine=2)
        assert repro.default_session().cache_stats.memory_hits > before

    def test_explicit_session_is_honoured(self):
        session = repro.CinnamonSession()
        compiled = repro.compile(build_program("facade-own"), PARAMS,
                                 machine=2, session=session)
        assert session.cache_stats.stores == 1
        assert compiled.cache_key is not None

    def test_emulate_convenience_matches_evaluator(self, small_context,
                                                   small_evaluator, rng):
        params = small_context.params
        prog = CinnamonProgram("facade-emulate", level=params.max_level)
        a, b = prog.input("x"), prog.input("y")
        prog.output("out", a * b + a.rotate(1))
        compiled = repro.compile(prog, params, machine=2)

        x = rng.uniform(-1, 1, params.slot_count)
        y = rng.uniform(-1, 1, params.slot_count)
        ct_x = small_context.encrypt_values(x)
        ct_y = small_context.encrypt_values(y)
        outputs = compiled.emulate({"x": ct_x, "y": ct_y},
                                   context=small_context)
        decrypted = small_context.decrypt_values(outputs["out"]).real
        expected = x * y + np.roll(x, -1)
        assert np.max(np.abs(decrypted - expected)) < 1e-3


class TestDeprecatedEntryPoints:
    def test_cinnamon_compiler_warns_but_works(self):
        from repro.core import CinnamonCompiler

        with pytest.warns(DeprecationWarning, match="CinnamonCompiler"):
            compiler = CinnamonCompiler(PARAMS, CompilerOptions(num_chips=2))
        compiled = compiler.compile(build_program("legacy"))
        assert compiled.instruction_count > 0
        assert compiled.compile_stats is not None  # instrumented either way

    def test_cycle_simulator_warns_but_works(self):
        from repro.sim import CycleSimulator

        compiled = repro.compile(build_program("legacy-sim"), PARAMS,
                                 machine=2)
        with pytest.warns(DeprecationWarning, match="CycleSimulator"):
            simulator = CycleSimulator(2)
        assert simulator.run(compiled.isa).cycles > 0

    def test_engine_does_not_warn(self):
        from repro.sim import SimulatorEngine

        compiled = repro.compile(build_program("engine-sim"), PARAMS,
                                 machine=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SimulatorEngine("cinnamon_2").run(compiled.isa)
