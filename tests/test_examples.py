"""Smoke tests: every example script runs to completion.

The heavyweight ones (bootstrap, the N=64K simulations) are marked slow.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["keyswitch_comparison.py", "nn_quickstart.py"]
SLOW = [
    "quickstart.py",
    "encrypted_logreg.py",
    "private_analytics.py",
    "bootstrap_demo.py",
    "bert_attention_streams.py",
]


def _run(name: str):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name):
    out = _run(name)
    assert out.strip()


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_examples(name):
    out = _run(name)
    assert "error" not in out.lower() or "err" in out.lower()  # error fields ok
    assert out.strip()


def test_all_examples_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
