"""Tests for the area, yield, and cost models (Tables 1 & 3, Fig 12)."""

import pytest

from repro.arch import (
    ACCELERATOR_DIES,
    CINNAMON_AREA,
    CINNAMON_M_AREA,
    ChipAreaModel,
    YieldModel,
    craterlake_bcu_comparison,
    die_yield,
    dies_per_wafer,
    performance_per_dollar,
    tapeout_cost,
)
from repro.arch.yield_model import TABLE3_TAPEOUT_COST


class TestAreaModel:
    def test_reproduces_table1_total(self):
        assert abs(CINNAMON_AREA.total_area() - 223.18) < 0.5

    def test_reproduces_table1_fu_total(self):
        assert abs(CINNAMON_AREA.functional_unit_area() - 82.55) < 0.1

    def test_monolithic_close_to_paper(self):
        assert abs(CINNAMON_M_AREA.total_area() - 719.78) < 60

    def test_register_file_dominates_sram(self):
        b = CINNAMON_AREA.breakdown()
        assert b["register_file"] > b["bcu_buffers"]

    def test_area_scales_with_lanes(self):
        wide = ChipAreaModel(lanes_per_cluster=512)
        assert wide.functional_unit_area() > \
            CINNAMON_AREA.functional_unit_area() * 1.8

    def test_area_scales_with_cache(self):
        big = ChipAreaModel(register_file_mb=224.0)
        delta = big.total_area() - CINNAMON_AREA.total_area()
        assert delta == pytest.approx((224 - 56) * 80.9 / 56, rel=1e-6)

    def test_bcu_comparison_ratios(self):
        cmp = craterlake_bcu_comparison()
        mult_ratio = cmp["craterlake"]["multipliers"] / \
            cmp["cinnamon"]["multipliers"]
        buf_ratio = cmp["craterlake"]["buffer_mb"] / cmp["cinnamon"]["buffer_mb"]
        assert mult_ratio > 9          # 15K -> 1.6K
        assert 4 < buf_ratio < 5       # 3.31 MB -> 0.71 MB


class TestYieldModel:
    @pytest.mark.parametrize("design,expected", [
        ("ARK", 48), ("CiFHER", 90), ("CraterLake", 44),
        ("Cinnamon-M", 31), ("Cinnamon", 66),
    ])
    def test_reproduces_table3_yields(self, design, expected):
        got = 100 * ACCELERATOR_DIES[design].yield_fraction
        assert abs(got - expected) < 2.0

    def test_yield_decreases_with_area(self):
        assert die_yield(100) > die_yield(400) > die_yield(800)

    def test_yield_bounds(self):
        assert 0 < die_yield(1.0) <= 1.0
        with pytest.raises(ValueError):
            die_yield(0)

    def test_dies_per_wafer_decreases(self):
        assert dies_per_wafer(50) > dies_per_wafer(500)

    def test_dies_per_wafer_huge_die(self):
        assert dies_per_wafer(300 * 300 * 4) == 0

    def test_yielded_cost_exceeds_raw(self):
        die = ACCELERATOR_DIES["CraterLake"]
        raw = die.area_mm2 * die.price_per_mm2
        assert die.yielded_die_cost() > raw

    def test_table_has_all_rows(self):
        table = YieldModel().table()
        assert set(table) == set(ACCELERATOR_DIES)


class TestCostModel:
    def test_tapeout_lookup(self):
        assert tapeout_cost("Cinnamon") == 3.5e6
        with pytest.raises(KeyError):
            tapeout_cost("TPUv9")

    def test_perf_per_dollar_normalization(self):
        times = {"CraterLake": 6.33e-3, "Cinnamon": 1.98e-3}
        rel = performance_per_dollar(times, baseline="CraterLake")
        assert rel["CraterLake"] == pytest.approx(1.0)
        # 3.2x faster and ~7x cheaper -> >> 1.
        assert rel["Cinnamon"] > 10

    def test_paper_headline_magnitude(self):
        """Cinnamon-4 ~5x CraterLake perf/$ on bootstrap (Figure 12)."""
        times = {"CraterLake": 6.33e-3, "Cinnamon": 1.98e-3}
        costs = {"CraterLake": TABLE3_TAPEOUT_COST["CraterLake"],
                 "Cinnamon": TABLE3_TAPEOUT_COST["Cinnamon"]}
        rel = performance_per_dollar(times, costs, baseline="CraterLake")
        # time ratio 3.2 x cost ratio 7.1 = ~22.8; the paper's "5x on
        # average" folds in workloads where the gap is smaller -- here we
        # just pin the direction and magnitude ordering.
        assert rel["Cinnamon"] > 5

    def test_invalid_time_rejected(self):
        with pytest.raises(ValueError):
            performance_per_dollar({"Cinnamon": 0.0})

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            performance_per_dollar({"Mystery": 1.0})


class TestPowerModel:
    def test_calibrated_to_paper(self):
        from repro.arch.power import PAPER_CHIP_WATTS, PowerModel

        watts = PowerModel().total_watts()
        assert abs(watts - PAPER_CHIP_WATTS) / PAPER_CHIP_WATTS < 0.01

    def test_idle_chip_draws_less(self):
        from repro.arch.power import PowerModel

        idle = PowerModel().total_watts(
            {"compute": 0.0, "memory": 0.0, "network": 0.0})
        busy = PowerModel().total_watts(
            {"compute": 1.0, "memory": 1.0, "network": 1.0})
        assert idle < 190 < busy

    def test_machine_power_scales_with_chips(self):
        from repro.arch.power import machine_watts

        assert machine_watts(8) == pytest.approx(2 * machine_watts(4))

    def test_breakdown_components(self):
        from repro.arch.power import PowerModel

        parts = PowerModel().breakdown()
        assert set(parts) == {"logic", "sram", "hbm", "network"}
        assert parts["logic"] > parts["network"]
