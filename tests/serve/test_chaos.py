"""Chaos: chip crashes and watchdog timeouts against a live server."""

import json

from repro.resilience import WatchdogTimeout
from repro.runtime import CinnamonSession
from repro.runtime.trace import TRACE_SCHEMA_VERSION
from repro.serve import CinnamonServer, FaultInjector, RequestStatus, \
    serve_requests
from repro.serve.loadgen import main as loadgen_main

from .conftest import PARAMS, make_program, make_request


def counter(server, name):
    snap = server.metrics_snapshot()[name]
    return sum(series["value"] for series in snap["series"])


class TestChipCrashRecovery:
    def test_mid_flight_chip_crash_loses_zero_requests(self):
        faults = FaultInjector().chip_crash(chip=1, cycle=1000)
        server = CinnamonServer(num_workers=1, queue_depth=0,
                                faults=faults, max_recoveries=2)
        with server:
            handles = server.submit_many(
                [make_request(f"chaos-{i}") for i in range(3)])
            server.drain()
            results = [h.result(timeout=600) for h in handles]
            assert all(r.status is RequestStatus.OK for r in results)
            assert faults.injected["chip_crash"] == 1
            assert counter(server, "serve_chip_failures_total") == 1
            assert counter(server, "serve_recoveries_total") == 1
            failed = counter(server, "serve_requests_total") - len(results)
            assert failed == 0
            trace = server.trace()
            assert trace["schema"] == TRACE_SCHEMA_VERSION
            recoveries = [e for e in trace["jobs"]
                          if e.get("kind") == "recovery"]
            assert len(recoveries) == 1
            entry = recoveries[0]
            assert entry["fault"] == "chip_crash"
            assert entry["chip"] == 1
            assert entry["machine_from"] == "Cinnamon-2"
            assert entry["machine_to"] == "Cinnamon-1"
            assert entry["replay_s"] is not None

    def test_recovery_does_not_consume_retries(self):
        faults = FaultInjector().chip_crash(chip=1, cycle=1000)
        results = serve_requests([make_request("no-retry")],
                                 num_workers=1, faults=faults,
                                 max_retries=0)
        assert results[0].status is RequestStatus.OK

    def test_recovery_budget_zero_fails_over_to_retries(self):
        # With recoveries disabled, the crash burns one regular retry and
        # the second (clean) attempt succeeds: the injector is drained.
        faults = FaultInjector().chip_crash(chip=1, cycle=1000)
        server = CinnamonServer(num_workers=1, faults=faults,
                                max_recoveries=0, max_retries=1,
                                retry_backoff_s=0.001)
        with server:
            handle = server.submit(make_request("budget-zero"))
            result = handle.result(timeout=600)
        assert result.status is RequestStatus.OK
        assert result.attempts == 2
        assert counter(server, "serve_chip_failures_total") == 1
        assert counter(server, "serve_recoveries_total") == 0

    def test_single_chip_crash_cannot_degrade(self):
        # A 1-chip machine has no rung below it: the fault falls through
        # to the retry path, and the drained injector lets a retry pass.
        faults = FaultInjector().chip_crash(chip=0, cycle=1000)
        server = CinnamonServer(num_workers=1, faults=faults,
                                max_retries=1, retry_backoff_s=0.001)
        with server:
            handle = server.submit(make_request("one-chip", machine=1))
            result = handle.result(timeout=600)
        assert result.status is RequestStatus.OK
        assert counter(server, "serve_recoveries_total") == 0


class TestWatchdog:
    def test_session_watchdog_raises(self):
        session = CinnamonSession(watchdog_s=0.0)
        compiled = session.compile(make_program("wd-prog"), PARAMS,
                                   machine=2)
        try:
            session.simulate(compiled, 2)
        except WatchdogTimeout as exc:
            assert exc.deadline_s == 0.0
            assert exc.elapsed_s >= 0.0
        else:
            raise AssertionError("expected WatchdogTimeout")

    def test_server_watchdog_counts_and_fails(self):
        server = CinnamonServer(num_workers=1, watchdog_s=0.0,
                                max_retries=0)
        with server:
            handle = server.submit(make_request("wd-req"))
            result = handle.result(timeout=600)
        assert result.status is RequestStatus.FAILED
        assert "WatchdogTimeout" in (result.error or "")
        assert counter(server, "serve_watchdog_timeouts_total") >= 1


class TestLoadgenChaos:
    def test_cli_chaos_run_serves_everything(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = loadgen_main([
            "--requests", "6", "--workers", "2", "--concurrency", "2",
            "--machine", "cinnamon_4", "--scale", "small",
            "--mix", "bootstrap=0,resnet-block=1,helr-step=0,bert-layer=0",
            "--chaos-chip-crash", "1", "--chaos-cycle", "2000",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--fail-on-errors",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        snapshot = json.loads(metrics_path.read_text())
        chaos = snapshot["loadgen"]["chaos"]
        assert chaos["chip_failures"] == 1
        assert chaos["recoveries"] == 1
        assert snapshot["loadgen"]["counts"].get("ok") == 6
        trace = json.loads(trace_path.read_text())
        assert trace["schema"] == TRACE_SCHEMA_VERSION
        recoveries = [e for e in trace["jobs"]
                      if e.get("kind") == "recovery"]
        assert len(recoveries) == 1
        assert recoveries[0]["machine_to"] == "Cinnamon-2"
