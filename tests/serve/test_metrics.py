"""Metrics registry: counters/gauges/histograms, exposition, snapshots."""

import json
import threading

import pytest

from repro.serve import MetricsRegistry


class TestCounterGauge:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Total requests.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", labels={"s": "ok"}) is not \
            registry.counter("a", labels={"s": "bad"})

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_quantiles_over_known_distribution(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1, 10, 100))
        for v in range(1, 101):  # 1..100 uniformly
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.sum == 5050
        assert abs(hist.quantile(0.50) - 50) <= 2
        assert abs(hist.quantile(0.95) - 95) <= 2
        assert abs(hist.quantile(0.99) - 99) <= 2
        snap = hist.snapshot_value()
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["max"] == 100
        assert {"p50", "p95", "p99"} <= set(snap)

    def test_reservoir_bounded(self):
        from repro.serve.metrics import RESERVOIR_SIZE

        hist = MetricsRegistry().histogram("big", buckets=(1.0,))
        for v in range(RESERVOIR_SIZE * 2):
            hist.observe(float(v))
        assert len(hist._reservoir) == RESERVOIR_SIZE
        assert hist.count == RESERVOIR_SIZE * 2

    def test_thread_safety_smoke(self):
        hist = MetricsRegistry().histogram("conc", buckets=(0.5, 1.0))

        def observe():
            for _ in range(500):
                hist.observe(0.7)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 2000
        assert hist.sum == pytest.approx(1400.0)


class TestExposition:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", "Requests.",
                         labels={"status": "ok"}).inc(3)
        registry.counter("serve_requests_total",
                         labels={"status": "failed"}).inc()
        registry.gauge("serve_queue_depth", "Depth.").set(7)
        hist = registry.histogram("serve_latency_seconds", "Latency.",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_prometheus_text_format(self):
        text = self.make_registry().render_prometheus()
        assert "# HELP serve_requests_total Requests." in text
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{status="ok"} 3' in text
        assert 'serve_requests_total{status="failed"} 1' in text
        assert "serve_queue_depth 7" in text
        assert 'serve_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_latency_seconds_bucket{le="1"} 2' in text
        assert 'serve_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "serve_latency_seconds_count 3" in text
        # HELP/TYPE emitted once per metric name, not per label series.
        assert text.count("# TYPE serve_requests_total counter") == 1

    def test_snapshot_is_json_serializable(self):
        snap = self.make_registry().snapshot()
        parsed = json.loads(json.dumps(snap))
        ok_series = [s for s in parsed["serve_requests_total"]["series"]
                     if s["labels"] == {"status": "ok"}]
        assert ok_series[0]["value"] == 3
        assert parsed["serve_latency_seconds"]["series"][0]["value"][
            "count"] == 3
