"""CinnamonServer behaviour: serving, batching, backpressure, deadlines,
drain, metrics, and the repro facade."""

import pytest

import repro
from repro.runtime.trace import TRACE_SCHEMA_VERSION
from repro.serve import (
    CinnamonServer,
    QueueSaturatedError,
    RequestStatus,
    ServerClosedError,
    serve_requests,
)

from .conftest import make_request


class TestBasicServing:
    def test_single_request_round_trip(self):
        with CinnamonServer(num_workers=1) as server:
            handle = server.submit(make_request("solo"))
            result = handle.result(timeout=60)
        assert result.ok and result.status is RequestStatus.OK
        assert result.cache == "miss" and result.attempts == 1
        assert result.cycles and result.cycles > 0
        assert result.latency.total_s > 0
        assert result.latency.total_s >= result.latency.execute_s

    def test_repeat_requests_hit_cache(self):
        with CinnamonServer(num_workers=1, max_wait_s=0.0) as server:
            first = server.submit(make_request("a1")).result(60)
            second = server.submit(make_request("a2")).result(60)
        assert first.cache == "miss"
        assert second.cache == "memory"

    def test_results_in_submission_order_via_facade(self):
        requests = [make_request(f"r{i}", rotation=(i % 3) + 1)
                    for i in range(9)]
        results = serve_requests(requests, num_workers=2)
        assert [r.name for r in results] == [f"r{i}" for i in range(9)]
        assert all(r.ok for r in results)
        # 3 distinct fingerprints -> exactly 3 misses, rest cache hits.
        assert sum(1 for r in results if r.cache == "miss") == 3

    def test_top_level_facade(self):
        results = repro.serve_requests(
            [make_request("f1"), make_request("f2")], num_workers=1)
        assert [r.status for r in results] == [RequestStatus.OK] * 2

    def test_simulate_false_skips_simulation(self):
        with CinnamonServer(num_workers=1) as server:
            result = server.submit(
                make_request("nosim", simulate=False)).result(60)
        assert result.ok and result.sim is None and result.cycles is None


class TestAdaptiveBatching:
    def test_same_fingerprint_requests_coalesce(self):
        with CinnamonServer(num_workers=1, max_batch=8,
                            max_wait_s=0.25) as server:
            handles = [server.submit(make_request(f"b{i}"))
                       for i in range(6)]
            results = [h.result(60) for h in handles]
        assert all(r.ok for r in results)
        # All six rode one coalesced batch through one compile.
        assert {r.batch_size for r in results} == {6}
        assert sum(1 for r in results if r.cache == "miss") == 1

    def test_full_bucket_flushes_before_max_wait(self):
        with CinnamonServer(num_workers=1, max_batch=2,
                            max_wait_s=30.0) as server:
            handles = [server.submit(make_request(f"b{i}"))
                       for i in range(4)]
            # max_wait is 30 s: only the size trigger can flush in time.
            results = [h.result(20) for h in handles]
        assert all(r.ok and r.batch_size == 2 for r in results)

    def test_distinct_fingerprints_not_batched_together(self):
        with CinnamonServer(num_workers=2, max_batch=8,
                            max_wait_s=0.05) as server:
            handles = [server.submit(make_request(f"d{i}", rotation=i + 1))
                       for i in range(3)]
            results = [h.result(60) for h in handles]
        assert all(r.ok and r.batch_size == 1 for r in results)

    def test_cache_affinity_routes_key_to_one_shard(self):
        with CinnamonServer(num_workers=4, max_batch=1) as server:
            results = [server.submit(make_request(f"s{i}")).result(60)
                       for i in range(6)]
        assert len({r.shard for r in results}) == 1


class TestBackpressure:
    def test_saturated_queue_rejects_not_hangs(self):
        """Acceptance: saturation is an immediate, explicit rejection."""
        with CinnamonServer(num_workers=1, queue_depth=2, max_batch=64,
                            max_wait_s=1.0) as server:
            accepted, rejected = [], 0
            for i in range(40):
                try:
                    accepted.append(server.submit(make_request(f"p{i}")))
                except QueueSaturatedError:
                    rejected += 1
            assert rejected > 0
            server.drain()
            results = [h.result(30) for h in accepted]
        assert all(r.ok for r in results)
        snapshot = server.metrics_snapshot()
        series = snapshot["serve_requests_total"]["series"]
        by_status = {s["labels"]["status"]: s["value"] for s in series}
        assert by_status["rejected"] == rejected
        assert by_status["ok"] == len(accepted)

    def test_submit_after_shutdown_raises(self):
        server = CinnamonServer(num_workers=1)
        server.start()
        server.shutdown()
        with pytest.raises(ServerClosedError):
            server.submit(make_request("late"))


class TestDeadlines:
    def test_expired_deadline_resolves_timeout(self):
        with CinnamonServer(num_workers=1) as server:
            result = server.submit(
                make_request("dead", deadline_s=0.0)).result(30)
        assert result.status is RequestStatus.TIMEOUT
        assert "deadline" in result.error

    def test_server_default_timeout_applies(self):
        with CinnamonServer(num_workers=1,
                            request_timeout_s=0.0) as server:
            result = server.submit(make_request("dflt")).result(30)
        assert result.status is RequestStatus.TIMEOUT

    def test_generous_deadline_succeeds(self):
        with CinnamonServer(num_workers=1) as server:
            result = server.submit(
                make_request("alive", deadline_s=60.0)).result(60)
        assert result.ok


class TestDrainAndShutdown:
    def test_drain_completes_accepted_work(self):
        server = CinnamonServer(num_workers=2)
        server.start()
        handles = [server.submit(make_request(f"g{i}", rotation=i + 1))
                   for i in range(4)]
        assert server.drain(timeout=60)
        assert all(h.done() for h in handles)
        server.shutdown()
        assert all(h.result(0).ok for h in handles)

    def test_shutdown_without_drain_rejects_queued(self):
        server = CinnamonServer(num_workers=1, max_wait_s=5.0,
                                max_batch=64)
        server.start()
        handles = [server.submit(make_request(f"q{i}")) for i in range(8)]
        server.shutdown(drain=False)
        statuses = {h.result(30).status for h in handles if h.done()}
        assert statuses <= {RequestStatus.OK, RequestStatus.REJECTED}


class TestObservability:
    def test_metrics_and_trace_cover_requests(self):
        with CinnamonServer(num_workers=1) as server:
            for i in range(3):
                server.submit(make_request(f"m{i}")).result(60)
            text = server.metrics_prometheus()
            snapshot = server.metrics_snapshot()
            doc = server.trace()
        assert 'serve_requests_total{status="ok"} 3' in text
        assert "serve_request_latency_seconds_bucket" in text
        latency = snapshot["serve_request_latency_seconds"]["series"][0][
            "value"]
        assert latency["count"] == 3
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        hit_rate = snapshot["serve_compile_cache_hit_rate"]["series"][0][
            "value"]
        assert hit_rate == pytest.approx(2 / 3)

        assert doc["schema"] == TRACE_SCHEMA_VERSION
        serves = [j for j in doc["jobs"] if j["kind"] == "serve"]
        assert len(serves) == 3
        assert all(j["status"] == "ok" and j["machine"] == "Cinnamon-2"
                   and j["seconds"] > 0 for j in serves)

    def test_export_trace(self, tmp_path):
        with CinnamonServer(num_workers=1) as server:
            server.submit(make_request("t0")).result(60)
            path = server.export_trace(tmp_path / "serve_trace.json")
        import json

        doc = json.loads(path.read_text())
        assert doc["jobs"][0]["kind"] == "serve"
