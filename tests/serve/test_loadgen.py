"""Load generator: both arrival modes, the workload mix, and the CLI."""

import json

import pytest

from repro.serve import CinnamonServer
from repro.serve.loadgen import (
    LoadGenerator,
    build_report,
    main,
    parse_mix_weights,
)
from repro.workloads.serving import serving_mix


class TestMix:
    def test_small_mix_has_four_paper_workloads(self):
        mix = serving_mix("small")
        assert set(mix) == {"bootstrap", "resnet-block", "helr-step",
                            "bert-layer"}
        prog = mix["bootstrap"].build()
        assert any(op.opcode == "bootstrap" for op in prog.ops)

    def test_paper_mix_same_classes(self):
        assert set(serving_mix("paper")) == set(serving_mix("small"))

    def test_weights_reweight_and_drop(self):
        mix = serving_mix("small", weights={"bootstrap": 0,
                                            "bert-layer": 3.5})
        assert "bootstrap" not in mix
        assert mix["bert-layer"].weight == 3.5

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            serving_mix("small", weights={"gpt": 1})
        with pytest.raises(ValueError):
            serving_mix("huge")

    def test_parse_mix_weights(self):
        assert parse_mix_weights("bootstrap=2, helr-step=0.5") == \
            {"bootstrap": 2.0, "helr-step": 0.5}
        assert parse_mix_weights("") == {}


class TestRuns:
    MIX = None  # cached across tests; programs are immutable

    @classmethod
    def mix(cls):
        if cls.MIX is None:
            cls.MIX = serving_mix("small")
        return cls.MIX

    def test_closed_loop_serves_everything(self):
        import time

        with CinnamonServer(num_workers=2, max_wait_s=0.002) as server:
            generator = LoadGenerator(server, self.mix(), seed=7)
            start = time.monotonic()
            results = generator.run_closed_loop(24, concurrency=4,
                                                machine=2)
            server.drain()
            duration = time.monotonic() - start
        assert len(results) == 24
        assert all(r.ok for r in results)
        report = build_report(server, results, duration, mode="closed",
                              machine="2", scale="small", offered=24,
                              per_class=generator._sent_per_class)
        assert report.failed == 0
        assert report.throughput_rps > 0
        assert report.cache["hit_rate"] > 0.5  # 4 compiles, 20 hits
        assert report.latency["p50"] <= report.latency["p99"]
        assert sum(report.per_class.values()) == 24
        json.dumps(report.as_dict())
        assert "throughput" in report.render()

    def test_open_loop_poisson_arrivals(self):
        import time

        with CinnamonServer(num_workers=2) as server:
            generator = LoadGenerator(server, self.mix(), seed=11)
            start = time.monotonic()
            results = generator.run_open_loop(16, rate_rps=400.0,
                                              machine=2)
            server.drain()
            duration = time.monotonic() - start
        assert len(results) == 16
        assert all(r.ok for r in results)
        assert duration >= 16 / 400.0 * 0.5  # arrivals actually paced

    def test_open_loop_counts_rejections(self):
        with CinnamonServer(num_workers=1, queue_depth=1, max_batch=64,
                            max_wait_s=0.5) as server:
            generator = LoadGenerator(server, self.mix(), seed=3)
            results = generator.run_open_loop(30, rate_rps=5000.0,
                                              machine=2)
            server.drain()
        assert len(results) == 30
        statuses = {r.status.value for r in results}
        assert "rejected" in statuses  # overload surfaced, not hidden


class TestCli:
    def test_cli_smoke_writes_metrics_and_trace(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main([
            "--requests", "16", "--mode", "closed", "--concurrency", "4",
            "--workers", "2", "--machine", "cinnamon_2",
            "--scale", "small", "--seed", "1",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--fail-on-errors",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "outcomes      ok=16" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["loadgen"]["counts"] == {"ok": 16}
        assert "serve_request_latency_seconds" in snapshot
        trace = json.loads(trace_path.read_text())
        assert sum(1 for j in trace["jobs"] if j["kind"] == "serve") == 16

    def test_cli_fail_on_errors_exit_code(self, capsys):
        # Impossible deadline: everything times out -> exit 1.
        code = main([
            "--requests", "4", "--mode", "closed", "--concurrency", "2",
            "--workers", "1", "--machine", "cinnamon_2",
            "--scale", "small", "--deadline", "0.0", "--fail-on-errors",
        ])
        assert code == 1
