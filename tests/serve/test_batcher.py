"""Adaptive batcher: coalescing keys, size- and age-triggered flushes."""

from repro.serve import AdaptiveBatcher
from repro.serve.request import InferenceRequest


def request(key, machine="M2", name=None, simulate=True):
    req = InferenceRequest(program=None, params=None, name=name or key,
                           simulate=simulate)
    req.key = key
    req.machine_name = machine
    return req


class TestCoalescing:
    def test_same_key_fills_one_bucket(self):
        batcher = AdaptiveBatcher(max_batch=3, max_wait_s=10)
        assert batcher.add(request("k1"), now=0.0) is None
        assert batcher.add(request("k1"), now=0.1) is None
        full = batcher.add(request("k1"), now=0.2)
        assert full is not None and len(full) == 3
        assert batcher.pending() == 0

    def test_distinct_keys_do_not_coalesce(self):
        batcher = AdaptiveBatcher(max_batch=2, max_wait_s=10)
        assert batcher.add(request("k1"), 0.0) is None
        assert batcher.add(request("k2"), 0.0) is None
        assert batcher.add(request("k1", machine="M4"), 0.0) is None
        assert batcher.add(request("k1", simulate=False), 0.0) is None
        assert batcher.pending() == 4  # four open buckets

    def test_age_triggered_flush(self):
        batcher = AdaptiveBatcher(max_batch=8, max_wait_s=0.05)
        batcher.add(request("k1"), now=1.0)
        batcher.add(request("k2"), now=1.04)
        ready = batcher.ready(now=1.06)
        assert [b.fingerprint for b in ready] == ["k1"]
        assert batcher.pending() == 1  # k2 still aging

    def test_force_flush_empties_everything(self):
        batcher = AdaptiveBatcher(max_batch=8, max_wait_s=100)
        batcher.add(request("k1"), 0.0)
        batcher.add(request("k2"), 0.0)
        ready = batcher.ready(now=0.001, force=True)
        assert sorted(b.fingerprint for b in ready) == ["k1", "k2"]
        assert batcher.pending() == 0


class TestDeadline:
    def test_next_deadline_tracks_oldest_bucket(self):
        batcher = AdaptiveBatcher(max_batch=8, max_wait_s=0.1)
        assert batcher.next_deadline(0.0) is None
        batcher.add(request("k1"), now=1.0)
        batcher.add(request("k2"), now=1.08)
        assert abs(batcher.next_deadline(1.05) - 0.05) < 1e-9
        assert batcher.next_deadline(2.0) == 0.0  # overdue clamps to 0
