"""Fault injection and recovery: the robustness acceptance tests.

Worker crash -> shard restart -> retry succeeds; poisoned cache entry ->
invalidate + recompile; latency spikes absorbed; retries exhausted ->
explicit FAILED, never a hang.
"""

import time

import pytest

from repro.serve import (
    CinnamonServer,
    FaultInjector,
    RequestStatus,
)
from repro.serve.faults import PoisonedArtifact, PoisonedCacheError

from .conftest import make_request


class TestWorkerCrash:
    def test_request_succeeds_after_injected_crash(self):
        """Acceptance: a request survives a worker crash via retry."""
        faults = FaultInjector().crash(count=1)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=2,
                            retry_backoff_s=0.01) as server:
            result = server.submit(make_request("crashy")).result(60)
        assert result.ok
        assert result.attempts == 2  # one crash, one clean attempt
        assert faults.injected["crash"] == 1
        snapshot = server.metrics_snapshot()
        assert snapshot["serve_worker_restarts_total"]["series"][0][
            "value"] == 1
        assert snapshot["serve_retries_total"]["series"][0]["value"] == 1

    def test_crash_restarts_shard_with_cold_cache(self):
        faults = FaultInjector().crash(count=1)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=1,
                            retry_backoff_s=0.01, max_wait_s=0.0) as server:
            warm = server.submit(make_request("warm", rotation=2)).result(60)
            assert warm.cache == "miss"
            # The crash kills the session; the retry recompiles from
            # scratch (no disk layer here).
            crashed = server.submit(make_request("c1")).result(60)
            again = server.submit(make_request("c2")).result(60)
        assert crashed.ok and crashed.cache == "miss"
        assert again.ok and again.cache == "memory"

    def test_crash_restarted_shard_rewarns_from_disk(self, tmp_path):
        warmup = FaultInjector()
        with CinnamonServer(num_workers=1, cache_dir=tmp_path,
                            faults=warmup, max_wait_s=0.0) as server:
            assert server.submit(make_request("w0")).result(60).ok
        faults = FaultInjector().crash(count=1)
        with CinnamonServer(num_workers=1, cache_dir=tmp_path,
                            faults=faults, max_retries=1,
                            retry_backoff_s=0.01) as server:
            result = server.submit(make_request("w1")).result(60)
        # Restarted shard finds the artifact in the shared disk layer.
        assert result.ok and result.cache == "disk"

    def test_retries_exhausted_fails_explicitly(self):
        faults = FaultInjector().crash(count=10)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=1,
                            retry_backoff_s=0.01) as server:
            result = server.submit(make_request("doomed")).result(60)
        assert result.status is RequestStatus.FAILED
        assert result.attempts == 2
        assert "WorkerCrashError" in result.error


class TestPoisonedCache:
    def test_poisoned_artifact_raises_on_use(self):
        poisoned = PoisonedArtifact()
        poisoned.cache_key = "abc"  # writes succeed (session stamps keys)
        with pytest.raises(PoisonedCacheError):
            poisoned.isa

    def test_recovery_invalidates_and_recompiles(self):
        faults = FaultInjector().poison(count=1)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=2,
                            retry_backoff_s=0.01) as server:
            result = server.submit(make_request("venom")).result(60)
        assert result.ok and result.attempts >= 2
        assert faults.injected["poison"] == 1
        snapshot = server.metrics_snapshot()
        assert snapshot["serve_cache_poisoned_total"]["series"][0][
            "value"] >= 1


class TestLatencySpike:
    def test_spike_absorbed_within_deadline(self):
        faults = FaultInjector().latency(seconds=0.2, count=1)
        with CinnamonServer(num_workers=1, faults=faults) as server:
            started = time.monotonic()
            result = server.submit(
                make_request("slow", deadline_s=30.0)).result(60)
            elapsed = time.monotonic() - started
        assert result.ok
        assert elapsed >= 0.2  # the spike really happened
        assert faults.injected["latency"] == 1

    def test_spike_past_deadline_times_out(self):
        faults = FaultInjector().latency(seconds=0.3, count=1)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=0,
                            max_wait_s=0.0) as server:
            result = server.submit(
                make_request("late", deadline_s=0.15)).result(60)
        assert result.status is RequestStatus.TIMEOUT


class TestScoping:
    def test_match_scopes_faults_to_request_names(self):
        faults = FaultInjector().crash(count=5, match="target")
        with CinnamonServer(num_workers=1, faults=faults, max_retries=0,
                            max_wait_s=0.0) as server:
            clean = server.submit(
                make_request("bystander", rotation=2)).result(60)
            hit = server.submit(make_request("target-1")).result(60)
        assert clean.ok
        assert hit.status is RequestStatus.FAILED

    def test_drained_injector_is_inert(self):
        faults = FaultInjector().crash(count=1)
        with CinnamonServer(num_workers=1, faults=faults, max_retries=1,
                            retry_backoff_s=0.01, max_wait_s=0.0) as server:
            assert server.submit(make_request("x1")).result(60).ok
            assert faults.remaining() == 0
            follow_up = server.submit(make_request("x2")).result(60)
        assert follow_up.ok and follow_up.attempts == 1
