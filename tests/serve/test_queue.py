"""Admission queue semantics: priority, backpressure, drain."""

import threading

import pytest

from repro.serve import AdmissionQueue, Priority, QueueSaturatedError
from repro.serve.queue import Empty, QueueClosedError
from repro.serve.request import InferenceRequest


def request(name, priority=Priority.NORMAL):
    return InferenceRequest(program=None, params=None, name=name,
                            priority=priority)


class TestOrdering:
    def test_fifo_within_priority(self):
        queue = AdmissionQueue()
        for i in range(5):
            queue.put(request(f"r{i}"))
        assert [queue.get(0).name for _ in range(5)] == \
            [f"r{i}" for i in range(5)]

    def test_priority_classes(self):
        queue = AdmissionQueue()
        queue.put(request("low", Priority.LOW))
        queue.put(request("normal", Priority.NORMAL))
        queue.put(request("high", Priority.HIGH))
        queue.put(request("high2", Priority.HIGH))
        order = [queue.get(0).name for _ in range(4)]
        assert order == ["high", "high2", "normal", "low"]


class TestBackpressure:
    def test_saturation_raises_not_blocks(self):
        queue = AdmissionQueue(maxsize=2)
        queue.put(request("a"))
        queue.put(request("b"))
        with pytest.raises(QueueSaturatedError) as exc:
            queue.put(request("c"))
        assert exc.value.depth == 2 and exc.value.maxsize == 2
        # Room frees up after a get.
        queue.get(0)
        queue.put(request("c"))
        assert queue.depth() == 2

    def test_unbounded_never_saturates(self):
        queue = AdmissionQueue(maxsize=0)
        for i in range(1000):
            queue.put(request(f"r{i}"))
        assert len(queue) == 1000

    def test_get_timeout_raises_empty(self):
        queue = AdmissionQueue()
        with pytest.raises(Empty):
            queue.get(timeout=0.01)


class TestCloseAndDrain:
    def test_put_after_close_raises(self):
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(request("late"))

    def test_queued_work_survives_close(self):
        queue = AdmissionQueue()
        queue.put(request("a"))
        queue.put(request("b"))
        queue.close()
        assert queue.get(0).name == "a"
        assert queue.get(0).name == "b"
        with pytest.raises(Empty):  # closed + dry: immediate, no timeout
            queue.get(timeout=30)

    def test_close_wakes_blocked_getters(self):
        queue = AdmissionQueue()
        woke = threading.Event()

        def getter():
            with pytest.raises(Empty):
                queue.get(timeout=30)
            woke.set()

        thread = threading.Thread(target=getter)
        thread.start()
        queue.close()
        assert woke.wait(5)
        thread.join()
