"""Tests for the experiment CLI (cheap experiments only)."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig13" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Cinnamon" in out and "yield" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
