"""Tests for the experiment harness (cheap experiments run in full; the
simulation-heavy ones are exercised structurally or via tiny probes —
their full runs live in benchmarks/)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig1_scaling,
    fig12_perf_per_dollar,
    table1_area,
    table3_yield,
)
from repro.experiments.common import compile_bootstrap, geomean, simulate, \
    workload_timer
from repro.sim.config import CINNAMON_4


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {"fig1", "fig6", "fig11", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "table1", "table2", "table3"}
        assert set(ALL_EXPERIMENTS) == expected

    def test_every_module_has_interface(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert hasattr(module, "run"), name
            assert hasattr(module, "format_result"), name


class TestCheapExperiments:
    def test_fig1(self):
        result = fig1_scaling.run()
        assert "BERT-Base" in result["models"]
        text = fig1_scaling.format_result(result)
        assert "Cinnamon" in text

    def test_table1(self):
        result = table1_area.run()
        assert abs(result["total_mm2"] - 223.18) < 0.5
        assert "ntt" in table1_area.format_result(result)

    def test_table3(self):
        result = table3_yield.run()
        assert result["Cinnamon"]["yield_pct"] > result["Cinnamon-M"]["yield_pct"]
        assert "ARK" in table3_yield.format_result(result)


class TestCommonInfra:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_compile_cache_hits(self):
        from repro.core.ir.bootstrap_graph import BootstrapPlan

        # A deliberately tiny plan keeps this test fast.
        plan = BootstrapPlan("test-mini", top_level=12, output_level=2,
                             cts_stages=1, cts_radix=2,
                             eval_mod_degree=3, eval_mod_doublings=0)
        a = compile_bootstrap(2, plan=plan)
        b = compile_bootstrap(2, plan=plan)
        assert a is b

    def test_comm_summary_attached_and_ir_released(self):
        from repro.core.ir.bootstrap_graph import BootstrapPlan

        plan = BootstrapPlan("test-mini2", top_level=12, output_level=2,
                             cts_stages=1, cts_radix=2,
                             eval_mod_degree=3, eval_mod_doublings=0)
        compiled = compile_bootstrap(2, plan=plan)
        assert compiled.comm_summary["limb_ops"] > 0
        assert compiled.limb_program.ops == []

    def test_simulate_cached(self):
        from repro.core.ir.bootstrap_graph import BootstrapPlan

        plan = BootstrapPlan("test-mini3", top_level=12, output_level=2,
                             cts_stages=1, cts_radix=2,
                             eval_mod_degree=3, eval_mod_doublings=0)
        compiled = compile_bootstrap(4, plan=plan)
        r1 = simulate(compiled, CINNAMON_4)
        r2 = simulate(compiled, CINNAMON_4)
        assert r1 is r2

    def test_workload_timer_singleton(self):
        assert workload_timer() is workload_timer()


class TestPerfPerDollarPlumbing:
    def test_cost_multipliers(self):
        from repro.experiments.fig12_perf_per_dollar import COST_KEY

        assert COST_KEY["Cinnamon-8"][1] == 2.0
        assert COST_KEY["Cinnamon-12"][1] == 3.0
        assert COST_KEY["CraterLake"][1] == 1.0
