"""Unit tests for Figure 16's resource-scaling helper."""

import pytest

from repro.experiments.fig16_sensitivity import RESOURCES, _machine_with
from repro.sim.config import CINNAMON_4


class TestMachineScaling:
    def test_register_file(self):
        scaled = _machine_with(CINNAMON_4, "register_file", 2.0)
        assert scaled.chip.register_file_mb == 112.0
        assert CINNAMON_4.chip.register_file_mb == 56.0  # original intact

    def test_link_bandwidth(self):
        scaled = _machine_with(CINNAMON_4, "link_bandwidth", 0.5)
        assert scaled.chip.link_gbps == 256.0

    def test_memory_bandwidth(self):
        scaled = _machine_with(CINNAMON_4, "memory_bandwidth", 2.0)
        assert scaled.chip.hbm_gbps == 4096.0

    def test_vector_width(self):
        scaled = _machine_with(CINNAMON_4, "vector_width", 0.5)
        assert scaled.chip.lanes_per_cluster == 128
        # Halving the lanes doubles each op's occupancy.
        assert scaled.chip.occupancy("ntt") == \
            2 * CINNAMON_4.chip.occupancy("ntt")

    def test_unknown_resource(self):
        with pytest.raises(ValueError):
            _machine_with(CINNAMON_4, "quantumness", 2.0)

    def test_resource_list_complete(self):
        assert set(RESOURCES) == {"register_file", "link_bandwidth",
                                  "memory_bandwidth", "vector_width"}
