"""Unit tests for the resource-scaling helper behind Figure 16.

The helper graduated from a private function in fig16_sensitivity to the
public :func:`repro.sim.config.machine_with` (shared with the autotuner's
machine axis); these tests target the public API and keep the legacy
alias importable.
"""

import pytest

from repro.experiments.fig16_sensitivity import RESOURCES, _machine_with
from repro.sim.config import CINNAMON_4, MACHINE_RESOURCES, machine_with


class TestMachineScaling:
    def test_register_file(self):
        scaled = machine_with(CINNAMON_4, "register_file", 2.0)
        assert scaled.chip.register_file_mb == 112.0
        assert CINNAMON_4.chip.register_file_mb == 56.0  # original intact

    def test_link_bandwidth(self):
        scaled = machine_with(CINNAMON_4, "link_bandwidth", 0.5)
        assert scaled.chip.link_gbps == 256.0

    def test_memory_bandwidth(self):
        scaled = machine_with(CINNAMON_4, "memory_bandwidth", 2.0)
        assert scaled.chip.hbm_gbps == 4096.0

    def test_vector_width(self):
        scaled = machine_with(CINNAMON_4, "vector_width", 0.5)
        assert scaled.chip.lanes_per_cluster == 128
        # Halving the lanes doubles each op's occupancy.
        assert scaled.chip.occupancy("ntt") == \
            2 * CINNAMON_4.chip.occupancy("ntt")

    def test_accepts_named_specs(self):
        scaled = machine_with("cinnamon_4", "link_bandwidth", 2.0)
        assert scaled.num_chips == 4
        assert scaled.chip.link_gbps == 1024.0

    def test_scaled_machine_is_renamed(self):
        scaled = machine_with(CINNAMON_4, "memory_bandwidth", 0.5)
        assert scaled.name == "Cinnamon-4[memory_bandwidthx0.5]"

    def test_identity_factor_returns_stock_config(self):
        assert machine_with(CINNAMON_4, "vector_width", 1.0) is CINNAMON_4

    def test_unknown_resource(self):
        with pytest.raises(ValueError, match="register_file"):
            machine_with(CINNAMON_4, "quantumness", 2.0)

    def test_nonpositive_factor(self):
        with pytest.raises(ValueError):
            machine_with(CINNAMON_4, "link_bandwidth", 0.0)

    def test_legacy_alias(self):
        assert _machine_with is machine_with

    def test_resource_list_complete(self):
        assert set(RESOURCES) == {"register_file", "link_bandwidth",
                                  "memory_bandwidth", "vector_width"}
        assert tuple(RESOURCES) == MACHINE_RESOURCES
