"""Tests for workload generators, schedules, and composition."""

import math

import pytest

from repro.core.ir.bootstrap_graph import BOOTSTRAP_13, BOOTSTRAP_21
from repro.fhe import ArchParams
from repro.core import CinnamonCompiler, CompilerOptions
from repro.sim.config import CINNAMON_4, CINNAMON_8, ChipConfig, MachineConfig
from repro.workloads import (
    KernelSpec,
    WorkloadSchedule,
    WorkloadTimer,
    baselines,
    bert_schedule,
    bootstrap_program,
    helr_schedule,
    resnet20_schedule,
)
from repro.workloads.kernels import (
    activation_kernel,
    bootstrap_kernel,
    elementwise_kernel,
    matmul_kernel,
)


class TestPrograms:
    def test_bootstrap_program_streams(self):
        prog = bootstrap_program(BOOTSTRAP_13, num_streams=2)
        assert prog.num_streams == 2
        assert prog.count("bootstrap") == 2
        assert len(prog.inputs) == 2

    def test_plans_differ(self):
        assert BOOTSTRAP_21.top_level > BOOTSTRAP_13.top_level
        assert BOOTSTRAP_21.output_level - 1 == 21
        assert BOOTSTRAP_13.output_level - 1 == 13

    def test_matmul_kernel_structure(self):
        prog = matmul_kernel("m", 16, 10)
        assert prog.count("rotate") > 0
        assert prog.count("mul_plain") == 16

    def test_activation_kernel_depth(self):
        prog = activation_kernel("act", 31, 12)
        out_level = prog.ops[prog.outputs["y"]].level
        consumed = 12 - out_level
        assert consumed <= 2 * math.ceil(math.log2(32)) + 2

    def test_elementwise_kernel(self):
        prog = elementwise_kernel("e", 3, 8)
        assert prog.count("mul") == 3

    def test_bootstrap_kernel_compiles(self):
        params = ArchParams(max_level=BOOTSTRAP_13.top_level)
        compiled = CinnamonCompiler(
            params, CompilerOptions(num_chips=4,
                                    bootstrap_plan=BOOTSTRAP_13)).compile(
            bootstrap_kernel(BOOTSTRAP_13), emit_isa=False)
        assert compiled.poly_program.keyswitch_count > 20


class TestSchedules:
    def test_resnet_schedule_counts(self):
        sched = resnet20_schedule()
        by_name = {k.name: k for k in sched.kernels}
        assert by_name["resnet-bootstrap"].count == 45
        assert not by_name["resnet-bootstrap"].parallel  # single ciphertext

    def test_helr_schedule_parallel(self):
        sched = helr_schedule()
        assert all(k.parallel for k in sched.kernels)

    def test_bert_schedule_bootstraps(self):
        sched = bert_schedule()
        total = sum(k.count for k in sched.kernels
                    if k.name.startswith("bert-bootstrap"))
        assert abs(total - 1400) <= 5
        by_name = {k.name: k for k in sched.kernels}
        assert by_name["bert-bootstrap-attention"].max_parallel == 6
        assert by_name["bert-bootstrap-gelu"].max_parallel == 12
        assert not by_name["bert-bootstrap-serial"].parallel

    def test_bert_parallel_fraction(self):
        sched = bert_schedule()
        parallel = sum(k.count for k in sched.kernels
                       if k.parallel and "bootstrap" in k.name)
        serial = sum(k.count for k in sched.kernels
                     if not k.parallel and "bootstrap" in k.name)
        assert 0.80 < parallel / (parallel + serial) < 0.90


class TestComposition:
    @pytest.fixture(scope="class")
    def tiny_schedule(self):
        """A cheap schedule using a small matmul kernel only."""
        return WorkloadSchedule(
            name="tiny",
            max_level=10,
            kernels=[
                KernelSpec("tiny-par",
                           lambda: matmul_kernel("tp", 8, 8),
                           count=8, parallel=True),
                KernelSpec("tiny-ser",
                           lambda: matmul_kernel("ts", 8, 8),
                           count=2, parallel=False),
            ],
        )

    def test_estimate_composes(self, tiny_schedule):
        timer = WorkloadTimer()
        est = timer.estimate(tiny_schedule, CINNAMON_4)
        assert est.seconds > 0
        assert set(est.kernel_seconds) == {"tiny-par", "tiny-ser"}
        assert est.seconds == pytest.approx(
            sum(est.kernel_seconds.values()))

    def test_parallel_kernels_scale_with_groups(self, tiny_schedule):
        timer = WorkloadTimer()
        e4 = timer.estimate(tiny_schedule, CINNAMON_4)
        e8 = timer.estimate(tiny_schedule, CINNAMON_8)
        # 8 parallel instances over 2 groups halve the parallel part.
        assert e8.kernel_seconds["tiny-par"] == pytest.approx(
            e4.kernel_seconds["tiny-par"] / 2, rel=0.01)

    def test_max_parallel_caps_concurrency(self):
        capped = WorkloadSchedule(
            name="capped", max_level=10,
            kernels=[KernelSpec("c", lambda: matmul_kernel("c", 8, 8),
                                count=8, parallel=True, max_parallel=1)])
        timer = WorkloadTimer()
        e4 = timer.estimate(capped, CINNAMON_4)
        e8 = timer.estimate(capped, CINNAMON_8)
        assert e8.kernel_seconds["c"] == pytest.approx(
            e4.kernel_seconds["c"], rel=0.01)

    def test_cache_reused(self, tiny_schedule):
        timer = WorkloadTimer()
        timer.estimate(tiny_schedule, CINNAMON_4)
        before = len(timer._cache)
        timer.estimate(tiny_schedule, CINNAMON_4)
        assert len(timer._cache) == before

    def test_utilization_weighted(self, tiny_schedule):
        timer = WorkloadTimer()
        est = timer.estimate(tiny_schedule, CINNAMON_4)
        util = est.utilization()
        assert set(util) == {"compute", "memory", "network"}
        assert all(0 <= v <= 1 for v in util.values())


class TestBaselines:
    def test_reported_lookup(self):
        assert baselines.reported_seconds("bootstrap", "ARK") == 3.5e-3
        assert baselines.reported_seconds("bert-base-128", "CPU") == \
            pytest.approx(62250.0)

    def test_missing_cells_are_none(self):
        assert baselines.reported_seconds("helr", "ARK") is None
        assert baselines.reported_seconds("bert-base-128", "CraterLake") is None

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            baselines.reported_seconds("doom", "CPU")

    @pytest.mark.slow
    def test_cpu_smallscale_measurement(self):
        seconds = baselines.cpu_smallscale_seconds(ring_degree=256, levels=16)
        assert seconds > 0.1  # even a toy bootstrap takes real CPU time


class TestBertScaling:
    def test_layer_scaling(self):
        full = bert_schedule(num_layers=12)
        half = bert_schedule(num_layers=6)
        full_boot = sum(k.count for k in full.kernels if "bootstrap" in k.name)
        half_boot = sum(k.count for k in half.kernels if "bootstrap" in k.name)
        assert abs(half_boot - full_boot / 2) <= 2

    def test_total_instances_positive(self):
        assert bert_schedule().total_kernel_instances() > 1400
