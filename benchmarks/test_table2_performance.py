"""Table 2: execution time of all benchmarks on every configuration.

Shapes pinned (paper vs this reproduction; absolute times are ~2-3x the
paper's testbed, see EXPERIMENTS.md):

* Cinnamon-4 matches the monolithic Cinnamon-M within ~25%;
* every Cinnamon configuration is orders of magnitude faster than the CPU;
* BERT scales with chips; ResNet (single ciphertext) scales weakly.
"""

import pytest

from repro.experiments import table2_performance


@pytest.fixture(scope="module")
def table(fast):
    return table2_performance.run(fast=fast)


def test_table2_performance(once, fast):
    result = once(table2_performance.run, fast=fast)
    print("\n" + table2_performance.format_result(result))


class TestShapes:
    def test_cinnamon4_matches_monolithic(self, table):
        for benchmark in ("bootstrap", "resnet20", "bert-base-128"):
            row = table[benchmark]
            ratio = row["Cinnamon-4"] / row["Cinnamon-M"]
            assert 0.6 < ratio < 1.4, (benchmark, ratio)

    def test_helr_prefers_monolithic_at_four_chips(self, table):
        # Paper: HELR is the one benchmark where Cinnamon-M beats
        # Cinnamon-4 (73.2 vs 87.6 ms).
        row = table["helr"]
        assert row["Cinnamon-M"] < row["Cinnamon-4"]

    def test_more_chips_never_slower(self, table):
        for benchmark, row in table.items():
            assert row["Cinnamon-8"] <= row["Cinnamon-4"] * 1.05, benchmark
            assert row["Cinnamon-12"] <= row["Cinnamon-8"] * 1.05, benchmark

    def test_bert_scales_with_chips(self, table):
        row = table["bert-base-128"]
        assert row["Cinnamon-4"] / row["Cinnamon-8"] > 1.5
        assert row["Cinnamon-4"] / row["Cinnamon-12"] > 2.0

    def test_resnet_scales_weakly(self, table):
        # Single-ciphertext program: extra chips buy < 1.6x.
        row = table["resnet20"]
        assert row["Cinnamon-4"] / row["Cinnamon-12"] < 1.6

    def test_orders_of_magnitude_vs_cpu(self, table):
        for benchmark, row in table.items():
            assert row["CPU"] / row["Cinnamon-4"] > 1e3, benchmark

    def test_reported_baselines_present(self, table):
        assert table["bootstrap"]["CraterLake"] == pytest.approx(6.33e-3)
        assert table["bert-base-128"]["CraterLake"] is None
