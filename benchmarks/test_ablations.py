"""Ablations for the design choices DESIGN.md calls out.

Not a paper figure — these isolate three Cinnamon design decisions on the
bootstrap workload:

* the **space-optimized BCU** (Section 4.7): halved BCU lanes trade some
  throughput for half the logic area — the ablation quantifies the
  throughput side of the trade;
* **on-chip evalkey regeneration** (the PRNG unit): disabling it streams
  both evalkey components from HBM;
* the **digit count** ``d`` of hybrid keyswitching: fewer digits mean
  fewer, larger base conversions.
"""

import pytest

from repro.arch.area import ChipAreaModel
from repro.core.compiler import CinnamonCompiler, CompilerOptions
from repro.core.ir.bootstrap_graph import BootstrapPlan
from repro.fhe.params import ArchParams
from repro.sim import CINNAMON_4, CycleSimulator

# A reduced bootstrap keeps the ablation sweeps affordable; the relative
# effects carry to the full plan.
PLAN = BootstrapPlan("bootstrap-ablate", top_level=24, output_level=2,
                     cts_stages=2, cts_radix=8,
                     eval_mod_degree=15, eval_mod_doublings=1)


def _compile(**overrides):
    params = ArchParams(max_level=PLAN.top_level)
    options = CompilerOptions(num_chips=4, bootstrap_plan=PLAN, **overrides)
    from repro.workloads.kernels import bootstrap_kernel

    return CinnamonCompiler(params, options).compile(bootstrap_kernel(PLAN))


@pytest.fixture(scope="module")
def baseline():
    compiled = _compile()
    return compiled, CycleSimulator(CINNAMON_4).run(compiled.isa)


class TestBcuLanesAblation:
    def test_full_lane_bcu_is_faster_but_larger(self, baseline, once):
        compiled, base = baseline

        def sweep():
            full = CINNAMON_4.scaled(bconv_lanes_per_cluster=256)
            return CycleSimulator(full).run(compiled.isa)

        full_result = once(sweep)
        # Doubling BCU lanes can only help timing...
        assert full_result.cycles <= base.cycles
        # ...but costs twice the BCU logic area (Section 4.7's trade).
        half_area = ChipAreaModel(bconv_lanes_per_cluster=128)
        full_area = ChipAreaModel(bconv_lanes_per_cluster=256)
        delta_area = full_area.total_area() - half_area.total_area()
        assert delta_area > 10  # ~ a BCU's worth of mm^2
        # The paper's call: the speed loss is small relative to the area.
        slowdown = base.cycles / full_result.cycles
        assert slowdown < 1.25


class TestEvalkeyRegenerationAblation:
    def test_streaming_both_components_moves_more_hbm(self, baseline, once):
        _, base = baseline

        def no_regen():
            compiled = _compile(regenerate_evalkeys=False)
            return CycleSimulator(CINNAMON_4).run(compiled.isa)

        streamed = once(no_regen)
        assert streamed.hbm_bytes > base.hbm_bytes * 1.1
        assert streamed.cycles >= base.cycles * 0.98


class TestDigitCountAblation:
    @pytest.mark.parametrize("digits", [2, 4])
    def test_digit_count_tradeoff(self, digits, once):
        def run():
            compiled = _compile(num_digits=digits)
            result = CycleSimulator(CINNAMON_4).run(compiled.isa)
            return compiled, result

        compiled, result = once(run)
        assert result.cycles > 0
        # More digits -> more (smaller) mod-ups; the limb op count grows.
        assert compiled.comm_summary is None or True  # summary optional here
