"""Performance-baseline harness: measure, record, and gate BENCH_*.json.

This is the repo's perf trajectory: the committed baseline files
(``BENCH_kernels.json``, ``BENCH_serving.json``, ``BENCH_sim.json``,
``BENCH_cluster.json``, ``BENCH_nn.json``) pin the headline numbers —
NTT µs/limb per kernel backend, CKKS bootstrap latency, loadgen
throughput, multi-process scale-out speedup, simulator cycles/sec, and
lowered-model (BERT encoder) latency — and CI re-measures
them on every push, failing when a gated metric regresses by more than
:data:`REGRESSION_TOLERANCE` (see ``.github/workflows/bench.yml``).

All BENCH files share one schema (``schema_version``, and the same metric
vocabulary as ``SimulationResult.as_dict()`` /
``repro.obs.analyze.utilization_summary``)::

    {
      "schema_version": 1,
      "suite": "kernels",
      "machine": {...},                  # informational, never gated
      "context": {...},                  # workload shape, never gated
      "metrics": {
        "<name>": {"value": 12.3, "unit": "us/limb", "direction": "lower"}
      }
    }

Usage::

    python benchmarks/baseline.py                  # measure + rewrite files
    python benchmarks/baseline.py --check          # measure + gate, no write
    python benchmarks/baseline.py --quick --suite kernels,sim

Timers use interleaved min-of-N: comparators alternate inside one process
so cache state and machine noise hit them equally, and the minimum is
reported (robust against multi-tenant jitter).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA_VERSION = 1
#: A gated metric may drift this much against its committed baseline
#: before ``--check`` fails (0.20 = 20%).  Load-invariant ratio metrics
#: use this tight default; absolute wall-clock metrics carry the wider
#: per-metric :data:`WALL_TOLERANCE` in their baseline entries.
REGRESSION_TOLERANCE = 0.20
#: Gate for absolute wall-clock metrics (seconds, us/limb, req/s,
#: cycles/s) — these drift with multi-tenant host load even under
#: interleaved min-of-N timing.
WALL_TOLERANCE = 0.50

SUITES = ("kernels", "serving", "sim", "cluster", "nn")


def _metric(value, unit, direction="lower", tolerance=None):
    """One gated metric.  ``tolerance`` overrides the suite-wide gate for
    metrics whose workload is inherently noisier (e.g. thread-scheduling
    sensitive serving bursts on small hosts)."""
    out = {"value": float(value), "unit": unit, "direction": direction}
    if tolerance is not None:
        out["tolerance"] = float(tolerance)
    return out


def _machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "processor": platform.processor() or platform.machine(),
    }


def _interleaved_min(fns: dict, rounds: int) -> dict:
    """Best-of-``rounds`` wall time per labelled thunk, interleaved."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[name]:
                best[name] = elapsed
    return best


# --------------------------------------------------------------------- #
# Suites


def bench_kernels(quick: bool) -> dict:
    """NTT µs/limb per backend at paper shape + small-bootstrap latency."""
    from repro.fhe import CKKSContext, make_params
    from repro.fhe.backend import available_backends, get_backend, use_backend
    from repro.fhe.bootstrap import Bootstrapper
    from repro.fhe.ntt import ntt_batch
    from repro.fhe.primes import generate_primes

    limbs, n = 24, 8192
    primes = generate_primes(limbs, 28, n)
    rng = np.random.default_rng(0)
    stack = rng.integers(0, np.array(primes, dtype=np.uint64)[:, None],
                         size=(limbs, n), dtype=np.uint64)

    backends = available_backends()
    for name in backends:                      # warm tables + plan caches
        with use_backend(name):
            ntt_batch(stack, primes)

    def run_on(name):
        def thunk():
            with use_backend(name):
                ntt_batch(stack, primes)
        return thunk

    rounds = 3 if quick else 7
    best = _interleaved_min({b: run_on(b) for b in backends}, rounds)

    # Absolute wall-clock metrics drift with multi-tenant host load even
    # under interleaved min-of-N, so they carry a 50% gate; the speedup
    # *ratio* is load-invariant and keeps the tight suite-wide gate.
    metrics = {}
    for name, seconds in best.items():
        key = name.replace("-", "_")
        metrics[f"ntt_us_per_limb_{key}"] = _metric(
            seconds * 1e6 / limbs, "us/limb", tolerance=WALL_TOLERANCE)
    default = get_backend().name
    metrics["ntt_us_per_limb"] = _metric(
        best[default] * 1e6 / limbs, "us/limb", tolerance=WALL_TOLERANCE)
    if "numpy" in best:
        metrics["ntt_speedup_vs_numpy"] = _metric(
            best["numpy"] / best[default], "x", direction="higher")

    params = make_params(ring_degree=256, levels=18, prime_bits=28,
                         num_digits=3, secret_hamming_weight=32)
    ctx = CKKSContext(params, seed=5)
    bs = Bootstrapper(ctx)
    z = np.linspace(-0.5, 0.5, params.slot_count)
    ct = bs.encrypt_for_bootstrap(z)
    bs.bootstrap(ct)                           # warm keys + compile caches
    reps = 1 if quick else 2
    best_boot = min(
        _interleaved_min({"boot": lambda: bs.bootstrap(ct)}, reps).values())
    metrics["bootstrap_latency_s"] = _metric(
        best_boot, "s", tolerance=WALL_TOLERANCE)

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "kernels",
        "machine": _machine_info(),
        "context": {
            "ntt_shape": {"limbs": limbs, "ring_degree": n,
                          "prime_bits": 28},
            "bootstrap_params": {"ring_degree": 256, "levels": 18},
            "backends": list(backends),
            "default_backend": default,
        },
        "metrics": metrics,
    }


def bench_serving(quick: bool) -> dict:
    """Loadgen throughput: mixed open-loop burst against a shard server."""
    from repro.runtime import CinnamonSession
    from repro.serve import CinnamonServer
    from repro.serve.loadgen import LoadGenerator, build_report
    from repro.workloads.serving import serving_mix

    num_requests = 32 if quick else 96
    reps = 1 if quick else 3

    def one_burst():
        server = CinnamonServer(
            num_workers=1, max_batch=12, max_wait_s=0.01, queue_depth=0,
            seed=5, session_factory=lambda i: CinnamonSession(capacity=4))
        generator = LoadGenerator(server, serving_mix("small"), seed=5)
        with server:
            start = time.monotonic()
            results = generator.run_open_loop(
                num_requests, 20000.0, machine=2)
            server.drain()
            duration = time.monotonic() - start
            return build_report(
                server, results, duration, mode="open", machine="2",
                scale="small", offered=num_requests,
                per_class=generator._sent_per_class)

    # Thread-scheduling jitter dominates a single burst, so report the
    # best of ``reps`` bursts (same robustness story as _interleaved_min;
    # the first burst additionally pays the compile-cache warmup).
    reports = [one_burst() for _ in range(reps)]
    report = max(reports, key=lambda r: r.throughput_rps)

    metrics = {
        "loadgen_throughput_rps": _metric(
            report.throughput_rps, "req/s", direction="higher",
            tolerance=WALL_TOLERANCE),
        "loadgen_p95_latency_s": _metric(
            min(r.latency.get("p95") or 0.0 for r in reports), "s",
            tolerance=WALL_TOLERANCE),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "serving",
        "machine": _machine_info(),
        "context": {"requests": num_requests, "mode": "open",
                    "machine_sim": "cinnamon_2", "scale": "small",
                    "counts": dict(report.counts)},
        "metrics": metrics,
    }


def bench_cluster(quick: bool) -> dict:
    """Multi-process scale-out: closed-loop rps at 1/2/4 cluster workers
    vs the single-process one-shard server, under a working set larger
    than one shard's artifact cache.

    This is the scale-out regime the cluster exists for: ``VARIANTS``
    distinct programs against ``capacity``-bounded sessions mean a
    single shard recompiles on almost every request, while consistent-
    hash routing gives N workers an aggregate warm cache that holds the
    whole working set (1/N of the key space each).  Both sides run
    memory-only sessions so the comparison isolates aggregate capacity,
    not disk-cache luck.  On a one-core host the 4-worker speedup is
    therefore a cache-architecture effect and reproduces well above the
    2x acceptance line.
    """
    from repro.cluster import ClusterRouter
    from repro.fhe import ArchParams
    from repro.runtime import CinnamonSession
    from repro.serve import CinnamonServer
    from repro.serve.loadgen import LoadGenerator
    from repro.workloads.kernels import matmul_kernel
    from repro.workloads.serving import MixEntry

    params = ArchParams(max_level=16)
    variants = 8 if quick else 12
    capacity = 4
    num_requests = 48 if quick else 96
    concurrency = 8

    def variant_mix():
        return {
            f"qkv-v{i}": MixEntry(
                f"qkv-v{i}",
                (lambda i=i: matmul_kernel(f"qkv{i}", 6 + i, 6)),
                params)
            for i in range(variants)
        }

    def timed_pass(frontend, generator):
        generator.run_closed_loop(num_requests, concurrency, machine=2)
        start = time.monotonic()
        results = generator.run_closed_loop(num_requests, concurrency,
                                            machine=2)
        frontend.drain()
        duration = time.monotonic() - start
        ok = sum(1 for r in results if r.ok)
        return ok / duration, ok

    def cluster_rps(workers: int):
        router = ClusterRouter(num_workers=workers, capacity=capacity,
                               disk_cache=False)
        generator = LoadGenerator(router, variant_mix(), seed=5)
        with router:
            router.wait_ready(timeout=60)
            return timed_pass(router, generator)

    def single_rps():
        server = CinnamonServer(
            num_workers=1, max_batch=12, max_wait_s=0.01, queue_depth=0,
            seed=5,
            session_factory=lambda i: CinnamonSession(capacity=capacity))
        generator = LoadGenerator(server, variant_mix(), seed=5)
        with server:
            return timed_pass(server, generator)

    single, single_ok = single_rps()
    per_workers = {w: cluster_rps(w) for w in (1, 2, 4)}
    speedup = per_workers[4][0] / max(single, 1e-9)

    # Cluster wall-clock numbers swing more than single-process ones
    # (N processes contending for the host + ring-layout sensitivity),
    # and the speedup is a ratio of two noisy measurements.  The wide
    # speedup tolerance still floors the gate near 3x — above the 2x
    # scale-out acceptance line this suite exists to defend.
    metrics = {
        "single_process_rps": _metric(single, "req/s",
                                      direction="higher",
                                      tolerance=WALL_TOLERANCE),
        "cluster_speedup_4w": _metric(speedup, "x", direction="higher",
                                      tolerance=1.5),
    }
    for workers, (rps, _ok) in per_workers.items():
        metrics[f"cluster_rps_{workers}w"] = _metric(
            rps, "req/s", direction="higher", tolerance=0.75)
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "cluster",
        "machine": _machine_info(),
        "context": {
            "requests": num_requests, "mode": "closed",
            "concurrency": concurrency, "machine_sim": "cinnamon_2",
            "variants": variants, "session_capacity": capacity,
            "disk_cache": False,
            "ok": {"single": single_ok,
                   **{f"{w}w": ok for w, (_r, ok) in per_workers.items()}},
        },
        "metrics": metrics,
    }


def bench_sim(quick: bool) -> dict:
    """Simulator throughput on the compiled bootstrap workload."""
    import repro
    from repro.fhe import ArchParams
    from repro.workloads import bootstrap_program

    params = ArchParams(max_level=24)
    compiled = repro.compile(bootstrap_program(), params,
                             machine="cinnamon_4")
    result = compiled.simulate("cinnamon_4")   # warm: decode + plan caches
    rounds = 3 if quick else 5
    best = min(_interleaved_min(
        {"sim": lambda: compiled.simulate("cinnamon_4")}, rounds).values())

    metrics = {
        "sim_cycles_per_sec": _metric(
            result.cycles / best, "cycles/s", direction="higher",
            tolerance=WALL_TOLERANCE),
        "sim_instructions_per_sec": _metric(
            result.instructions / best, "instr/s", direction="higher",
            tolerance=WALL_TOLERANCE),
        "sim_wall_s": _metric(best, "s", tolerance=WALL_TOLERANCE),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "sim",
        "machine": _machine_info(),
        "context": {"workload": "bootstrap", "machine_sim": "cinnamon_4",
                    "cycles": result.cycles,
                    "instructions": result.instructions,
                    "schema": result.as_dict()["schema_version"]},
        "metrics": metrics,
    }


def bench_nn(quick: bool) -> dict:
    """Lowered-model latency: the :mod:`repro.nn` serving classes.

    The headline is the BERT encoder block — lowered by the tensor
    frontend, compiled, and cycle-simulated on cinnamon_4 at the small
    serving scale (the paper-scale BOOTSTRAP_13 build compiles for
    minutes and belongs in an experiment run, not a per-push gate).
    Simulated cycle counts are deterministic, so they keep the tight
    suite-wide gate; compile/simulate wall times carry WALL_TOLERANCE.
    A HELR parity probe (full encrypted forward on real limbs vs the
    numpy reference) guards numeric health: its error is deterministic
    given the seeded keychain, and the wide gate only trips when noise
    grows by an order of magnitude.
    """
    import repro
    from repro.nn import (build_helr, encrypted_forward, lower, nn_params,
                          sample_input)
    from repro.workloads.serving import nn_mix

    mix = nn_mix("small")
    metrics = {}
    context = {"scale": "small", "machine_sim": "cinnamon_4"}

    for name, key in (("nn-bert-encoder", "bert"),
                      ("nn-resnet20", "resnet"),
                      ("nn-helr", "helr")):
        entry = mix[name]
        program = entry.build()
        start = time.perf_counter()
        compiled = repro.compile(program, entry.params,
                                 machine="cinnamon_4")
        compile_wall = time.perf_counter() - start
        result = compiled.simulate("cinnamon_4")   # warm: decode caches
        rounds = 2 if quick else 3
        best = min(_interleaved_min(
            {"sim": lambda c=compiled: c.simulate("cinnamon_4")},
            rounds).values())
        metrics[f"{key}_sim_cycles"] = _metric(result.cycles, "cycles")
        metrics[f"{key}_compile_wall_s"] = _metric(
            compile_wall, "s", tolerance=WALL_TOLERANCE)
        metrics[f"{key}_sim_wall_s"] = _metric(
            best, "s", tolerance=WALL_TOLERANCE)
        context[key] = {"ops": len(program.ops),
                        "max_level": entry.params.max_level,
                        "instructions": result.instructions}

    model = build_helr()
    lowered = lower(model, nn_params(8))
    x = sample_input(model)
    err = float(np.abs(encrypted_forward(lowered, x)
                       - model.reference(x)).max())
    metrics["helr_parity_max_abs_err"] = _metric(
        err, "abs err", tolerance=9.0)

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "nn",
        "machine": _machine_info(),
        "context": context,
        "metrics": metrics,
    }


_RUNNERS = {"kernels": bench_kernels, "serving": bench_serving,
            "sim": bench_sim, "cluster": bench_cluster, "nn": bench_nn}


# --------------------------------------------------------------------- #
# Gate


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Regressions of ``fresh`` vs ``baseline``; empty when within gate.

    Only ``metrics`` entries present in the committed baseline are gated
    (new metrics land ungated until the baseline is refreshed).  A metric
    carrying its own ``tolerance`` in the baseline uses that instead of
    the suite-wide ``tolerance``.
    """
    problems = []
    base_metrics = baseline.get("metrics", {})
    for name, base in base_metrics.items():
        now = fresh.get("metrics", {}).get(name)
        if now is None:
            problems.append(f"{name}: missing from fresh run")
            continue
        old, new = base["value"], now["value"]
        direction = base.get("direction", "lower")
        gate = base.get("tolerance", tolerance)
        if old <= 0:
            continue
        if direction == "lower":
            ratio = new / old
        else:
            ratio = old / max(new, 1e-12)
        if ratio > 1.0 + gate:
            problems.append(
                f"{name}: {new:.4g} vs baseline {old:.4g} "
                f"({'+' if direction == 'lower' else '-'}"
                f"{(ratio - 1) * 100:.1f}% worse, "
                f"gate {gate * 100:.0f}%)")
    return problems


def bench_path(suite: str, out_dir: Path) -> Path:
    return out_dir / f"BENCH_{suite}.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--suite", default=",".join(SUITES),
                        help="comma-separated subset of "
                             f"{','.join(SUITES)}")
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds / smaller workloads")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baselines "
                             "instead of rewriting them")
    parser.add_argument("--out-dir", type=Path, default=BENCH_DIR,
                        help="where BENCH_*.json live (default: "
                             "benchmarks/)")
    parser.add_argument("--tolerance", type=float,
                        default=REGRESSION_TOLERANCE,
                        help="fractional regression allowed by --check")
    args = parser.parse_args(argv)

    suites = [s.strip() for s in args.suite.split(",") if s.strip()]
    unknown = set(suites) - set(SUITES)
    if unknown:
        parser.error(f"unknown suite(s): {', '.join(sorted(unknown))}")

    failures = []
    for suite in suites:
        print(f"[baseline] running {suite} "
              f"({'quick' if args.quick else 'full'}) ...", flush=True)
        fresh = _RUNNERS[suite](args.quick)
        for name, m in sorted(fresh["metrics"].items()):
            print(f"  {name:32s} {m['value']:12.4g} {m['unit']}")
        path = bench_path(suite, args.out_dir)
        if args.check:
            if not path.exists():
                failures.append(f"{suite}: no committed baseline at {path}")
                continue
            baseline = json.loads(path.read_text())
            problems = compare(baseline, fresh, args.tolerance)
            for problem in problems:
                failures.append(f"{suite}: {problem}")
            status = "FAIL" if problems else "ok"
            print(f"  -> {status} vs {path.name}")
        else:
            path.write_text(json.dumps(fresh, indent=2, sort_keys=True)
                            + "\n")
            print(f"  -> wrote {path}")

    if failures:
        print("\nregression gate failed:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
