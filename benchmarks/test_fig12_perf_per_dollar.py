"""Figure 12: relative performance-per-dollar."""

import pytest

from repro.experiments import fig12_perf_per_dollar


@pytest.fixture(scope="module")
def ppd(fast):
    return fig12_perf_per_dollar.run(fast=fast)


def test_fig12_perf_per_dollar(once, fast):
    result = once(fig12_perf_per_dollar.run, fast=fast)
    print("\n" + fig12_perf_per_dollar.format_result(result))


class TestShapes:
    def test_cinnamon4_beats_monolithic_designs(self, ppd):
        """Paper headline: ~5x vs CraterLake-class monolithic chips."""
        row = ppd["bootstrap"]
        assert row["Cinnamon-4"] / row["CraterLake"] > 3
        assert row["Cinnamon-4"] / row["Cinnamon-M"] > 3

    def test_cinnamon4_beats_chiplets(self, ppd):
        """Paper: ~2.7x vs the CiFHER chiplet design.  Our simulated
        bootstrap runs ~2.6x the paper's absolute level while CiFHER's
        time is a reported constant, so the measured ratio compresses to
        ~1x here; equal-or-better at equal cost still holds (see
        EXPERIMENTS.md calibration notes)."""
        row = ppd["bootstrap"]
        assert row["Cinnamon-4"] / row["CiFHER"] > 0.9

    def test_bert_favors_every_cinnamon_config(self, ppd):
        row = ppd["bert-base-128"]
        for config in ("Cinnamon-4", "Cinnamon-8", "Cinnamon-12"):
            assert row[config] > row["Cinnamon-M"], config

    def test_small_models_plateau_beyond_four_chips(self, ppd):
        # Extra chips cost linearly but help little on small programs.
        row = ppd["resnet20"]
        assert row["Cinnamon-4"] > row["Cinnamon-12"]
