"""Table 1: component-wise area breakdown (22nm)."""

from repro.experiments import table1_area


def test_table1_area(once):
    result = once(table1_area.run)
    print("\n" + table1_area.format_result(result))

    # The analytical model must land on the published totals.
    assert abs(result["total_mm2"] - result["paper_total_mm2"]) < 0.5
    assert abs(result["fu_total_mm2"] - result["paper_fu_total_mm2"]) < 0.1
    # NTT is the largest functional unit; the BCU is second.
    components = result["components_mm2"]
    ordered = sorted(components, key=components.get, reverse=True)
    assert ordered[0] == "ntt"
    assert ordered[1] == "bconv"
    # Section 4.7: the input-proportional BCU shrinks multipliers ~9x and
    # buffers ~4.7x versus CraterLake's output-buffered design.
    bcu = result["bcu_comparison"]
    assert bcu["craterlake"]["multipliers"] / bcu["cinnamon"]["multipliers"] > 9
    assert bcu["craterlake"]["buffer_mb"] / bcu["cinnamon"]["buffer_mb"] > 4
    assert bcu["cinnamon"]["buffer_ports"] < bcu["craterlake"]["buffer_ports"]
