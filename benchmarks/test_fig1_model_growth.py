"""Figure 1: ML model growth vs FHE accelerator on-chip caches."""

from repro.experiments import fig1_scaling


def test_fig1_model_growth(once):
    result = once(fig1_scaling.run)
    print("\n" + fig1_scaling.format_result(result))

    models = result["models"]
    accelerators = result["accelerators"]
    # Models grow by orders of magnitude across the window...
    params = [row["parameters"] for row in models.values()]
    assert max(params) / min(params) > 1e5
    # ...while accelerator caches stay within one order of magnitude.
    caches = [row["cache_mb"] for row in accelerators.values()]
    assert max(caches) / min(caches) < 10
    # BERT-Base alone overflows every accelerator's cache when encrypted.
    bert_mb = models["BERT-Base"]["encrypted_mb"]
    assert all(bert_mb > row["cache_mb"] for row in accelerators.values())
