"""Table 3: manufacturing yield and tape-out cost."""

from repro.experiments import table3_yield


def test_table3_yield(once):
    result = once(table3_yield.run)
    print("\n" + table3_yield.format_result(result))

    # Every yield cell within 2 points of the published column.
    for name, row in result.items():
        assert abs(row["yield_pct"] - row["paper_yield_pct"]) < 2.0, name
    # The headline: Cinnamon's small die yields ~2.1x the monolithic chip.
    assert result["Cinnamon"]["yield_pct"] / \
        result["Cinnamon-M"]["yield_pct"] > 2.0
    # ...and the small-chip strategy cuts tape-out cost ~7x.
    assert result["Cinnamon-M"]["tapeout_cost"] / \
        result["Cinnamon"]["tapeout_cost"] > 7
