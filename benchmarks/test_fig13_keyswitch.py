"""Figure 13 + Section 7.4: keyswitching technique comparison.

Shapes pinned:

* batching (the keyswitch pass) improves input-broadcast keyswitching;
* Cinnamon's algorithms move substantially less data than CiFHER
  (paper: 2.25x reduction with batching; we require > 2x);
* speedups grow from 256 to 512 GB/s links and saturate at 1024 GB/s;
* program parallelism on top of the pass gives the best configuration
  (paper: 4.18x over sequential at 256 GB/s).
"""

import pytest

from repro.experiments import fig13_keyswitch


@pytest.fixture(scope="module")
def result(fast):
    return fig13_keyswitch.run(fast=fast)


def test_fig13_keyswitch(once, fast):
    out = once(fig13_keyswitch.run, fast=fast)
    print("\n" + fig13_keyswitch.format_result(out))
    comparison = fig13_keyswitch.section_7_4_comparison(out)
    print("Section 7.4:", {k: round(v, 2) for k, v in comparison.items()})


class TestShapes:
    def test_pass_improves_input_broadcast(self, result):
        speed = result["speedup_over_sequential"]
        for link, value in speed["Input Broadcast + Pass"].items():
            assert value > speed["Input Broadcast"][link]

    def test_cinnamon_moves_less_data_than_cifher(self, result):
        comm = result["communication"]
        ratio = comm["CiFHER"]["comm_limbs"] / \
            comm["Cinnamon Keyswitch + Pass"]["comm_limbs"]
        assert ratio > 2.0  # paper: 2.25x

    def test_bandwidth_scaling_saturates(self, result):
        speed = result["speedup_over_sequential"]["Cinnamon Keyswitch + Pass"]
        links = sorted(speed)
        assert speed[links[1]] > speed[links[0]]  # 512 beats 256
        if len(links) >= 3:  # full grid: 1024 adds little over 512
            gain = speed[links[2]] / speed[links[1]]
            assert gain < 1.2

    def test_program_parallelism_is_best_config(self, result):
        speed = result["speedup_over_sequential"]
        best = "Cinnamon Keyswitch + Pass + Program Parallelism"
        for link in speed[best]:
            others = [speed[label][link] for label in speed if label != best]
            assert speed[best][link] >= max(others) * 0.95

    def test_parallelization_profitable_at_low_bandwidth(self, result):
        """At 256 GB/s the full Cinnamon stack beats sequential by > 3x."""
        speed = result["speedup_over_sequential"]
        best = "Cinnamon Keyswitch + Pass + Program Parallelism"
        first = sorted(speed[best])[0]
        assert speed[best][first] > 3.0

    def test_cinnamon_beats_cifher(self, result):
        comparison = fig13_keyswitch.section_7_4_comparison(result)
        assert comparison["speedup_vs_cifher"] > 1.2
        assert comparison["comm_reduction"] > 2.0
