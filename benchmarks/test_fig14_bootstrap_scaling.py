"""Figure 14: Bootstrap-13 vs Bootstrap-21 scaling.

Shape: the shallow Bootstrap-13 flattens beyond 4 chips, while the deeper
Bootstrap-21 (≈2x the compute) keeps scaling to 8/12 chips.
"""

import pytest

from repro.experiments import fig14_bootstrap_scaling


@pytest.fixture(scope="module")
def result(fast):
    return fig14_bootstrap_scaling.run(fast=fast)


def test_fig14_bootstrap_scaling(once, fast):
    out = once(fig14_bootstrap_scaling.run, fast=fast)
    print("\n" + fig14_bootstrap_scaling.format_result(out))


class TestShapes:
    def test_both_variants_speed_up_at_four_chips(self, result):
        assert result["bootstrap-13"][4] > 3.0
        assert result["bootstrap-21"][4] > 3.0

    def test_bootstrap21_scales_further(self, result):
        gain13 = result["bootstrap-13"][8] / result["bootstrap-13"][4]
        gain21 = result["bootstrap-21"][8] / result["bootstrap-21"][4]
        assert gain21 > gain13

    def test_bootstrap13_flattens(self, result):
        assert result["bootstrap-13"][8] / result["bootstrap-13"][4] < 1.6

    def test_twelve_chips_monotone(self, result):
        if 12 in result["bootstrap-21"]:
            assert result["bootstrap-21"][12] >= result["bootstrap-21"][8] * 0.95
