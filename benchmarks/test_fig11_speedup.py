"""Figure 11: normalized speedup over the 48-core CPU."""

import pytest

from repro.experiments import fig11_speedup


@pytest.fixture(scope="module")
def speedups(fast):
    return fig11_speedup.run(fast=fast)


def test_fig11_speedup(once, fast):
    result = once(fig11_speedup.run, fast=fast)
    print("\n" + fig11_speedup.format_result(result))


class TestShapes:
    def test_headline_bert_speedup(self, speedups):
        """Abstract: ~36,600x on BERT (Cinnamon-12 vs CPU); we require the
        same order of magnitude."""
        headline = speedups["bert-base-128"]["Cinnamon-12"]
        assert 5e3 < headline < 5e5

    def test_every_accelerator_beats_cpu(self, speedups):
        for benchmark, row in speedups.items():
            for system, speedup in row.items():
                assert speedup > 100, (benchmark, system)

    def test_cinnamon_beats_prior_art_on_bootstrap(self, speedups):
        # CraterLake and CiFHER: direction preserved.  ARK's reported
        # 3.5 ms beats our *absolute* simulated time (we run ~2.6x the
        # paper's testbed level) — see EXPERIMENTS.md calibration notes.
        row = speedups["bootstrap"]
        for prior in ("CraterLake", "CiFHER"):
            assert row["Cinnamon-4"] > row[prior] * 0.9, prior

    def test_bert_only_has_cinnamon_bars(self, speedups):
        assert "CraterLake" not in speedups["bert-base-128"]
