"""Figure 6: parallel bootstraps vs cache capacity and compute."""

import pytest

from repro.experiments import fig6_motivation


@pytest.fixture(scope="module")
def result(fast):
    return fig6_motivation.run(fast=fast)


def test_fig6_motivation(once, fast):
    out = once(fig6_motivation.run, fast=fast)
    print("\n" + fig6_motivation.format_result(out))


class TestShapes:
    def _grid(self, result):
        counts = sorted({k[0] for k in result})
        caches = sorted({k[1] for k in result})
        clusters = sorted({k[2] for k in result})
        return counts, caches, clusters

    def test_more_bootstraps_cost_more(self, result):
        counts, caches, clusters = self._grid(result)
        for cache in caches:
            for c in clusters:
                times = [result[(n, cache, c)] for n in counts]
                assert all(b >= a for a, b in zip(times, times[1:]))

    def test_cache_helps_parallel_bootstraps_more(self, result):
        """Growing the cache buys more at high bootstrap counts (shared
        metadata reuse) than for a single bootstrap."""
        counts, caches, clusters = self._grid(result)
        small, big = caches[0], caches[-1]
        c = clusters[0]
        single_gain = result[(counts[0], small, c)] / result[(counts[0], big, c)]
        multi_gain = result[(counts[-1], small, c)] / result[(counts[-1], big, c)]
        assert multi_gain >= single_gain * 0.98

    def test_compute_helps_at_large_cache(self, result):
        counts, caches, clusters = self._grid(result)
        big = caches[-1]
        n = counts[-1]
        assert result[(n, big, 8)] < result[(n, big, 4)]
