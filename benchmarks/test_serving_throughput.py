"""Serving-layer throughput: adaptive batching on vs. batch-size-1.

Not a paper figure — this benchmarks the `repro.serve` subsystem in the
regime batching exists for: a burst of mixed traffic (open-loop arrivals
far above the service rate) against shards whose in-memory artifact
cache is capacity-bounded (the realistic setting: compiled bootstraps
run to ~1 GB, so a shard holds a couple of artifacts, not the whole
mix).  Batch-size-1 interleaves the four workload classes and thrashes
the LRU — most requests recompile; the adaptive batcher groups
same-fingerprint requests so each batch pays at most one compile.

Asserts the acceptance shape: batching-on throughput strictly higher
than batch-size-1, with p50/p95/p99 latency present in the metrics
snapshot.
"""

import time

import pytest

from repro.runtime import CinnamonSession
from repro.serve import CinnamonServer
from repro.serve.loadgen import LoadGenerator, build_report
from repro.workloads.serving import serving_mix

NUM_REQUESTS = 96
BURST_RATE_RPS = 20000.0      # effectively: the whole load arrives at once
SHARD_CACHE_CAPACITY = 2      # four workload classes > capacity => thrash


def serve_burst(max_batch, max_wait_s, num_requests=NUM_REQUESTS, seed=5):
    """One loadgen run; returns (report, metrics snapshot)."""
    server = CinnamonServer(
        num_workers=1, max_batch=max_batch, max_wait_s=max_wait_s,
        queue_depth=0,  # unbounded: compare throughput, not admission
        seed=seed,
        session_factory=lambda i: CinnamonSession(
            capacity=SHARD_CACHE_CAPACITY))
    generator = LoadGenerator(server, serving_mix("small"), seed=seed)
    with server:
        start = time.monotonic()
        results = generator.run_open_loop(num_requests, BURST_RATE_RPS,
                                          machine=2)
        server.drain()
        duration = time.monotonic() - start
        report = build_report(
            server, results, duration, mode="open", machine="2",
            scale="small", offered=num_requests,
            per_class=generator._sent_per_class)
        snapshot = server.metrics_snapshot()
    return report, snapshot


class TestServingThroughput:
    def test_adaptive_batching_beats_batch_size_1(self, once):
        batched, batched_metrics = once(serve_burst, max_batch=12,
                                        max_wait_s=0.01)
        unbatched, _ = serve_burst(max_batch=1, max_wait_s=0.0)

        print("\nServing throughput, 96-request mixed burst, "
              f"shard cache capacity {SHARD_CACHE_CAPACITY}:")
        print(f"  adaptive batching (max_batch=12): "
              f"{batched.throughput_rps:7.1f} req/s  "
              f"(mean batch {batched.batch['mean']:.1f})")
        print(f"  batch-size-1:                     "
              f"{unbatched.throughput_rps:7.1f} req/s")
        print(f"  speedup: {batched.throughput_rps / unbatched.throughput_rps:.2f}x")
        print(batched.render())

        # Everything served, nothing dropped, in both configurations.
        assert batched.failed == 0 and unbatched.failed == 0
        assert batched.counts["ok"] == NUM_REQUESTS
        # The acceptance shape: batching strictly wins on the mixed burst.
        assert batched.throughput_rps > unbatched.throughput_rps
        # Coalescing is the mechanism: visibly larger batches.
        assert batched.batch["mean"] > 1.5
        assert unbatched.batch["mean"] == 1.0

        # p50/p95/p99 present (and ordered) in the metrics snapshot.
        latency = batched_metrics["serve_request_latency_seconds"][
            "series"][0]["value"]
        assert latency["count"] == NUM_REQUESTS
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_batching_reduces_compiles_under_thrash(self, once):
        batched, _ = once(serve_burst, max_batch=12, max_wait_s=0.01,
                          seed=9)
        unbatched, _ = serve_burst(max_batch=1, max_wait_s=0.0, seed=9)
        # Stores == real compiles; batching needs several times fewer.
        assert batched.cache["lookups"] > 0
        assert batched.cache["hit_rate"] > unbatched.cache["hit_rate"]
