"""Autotuner benchmark: search quality and cache-amortized re-tunes.

Not a paper figure — this benchmarks the `repro.tune` subsystem in the
regime it exists for: a moderate candidate budget over the small
bootstrap workload, where the content-addressed compile cache makes the
second tune of the same target mostly cache hits.

Asserts the acceptance shape: the tuned config is no worse than the
stock configuration (the default is always in the pool), the winner
persists to the tuning DB, and a re-tune against a warm cache reports
cache hits and no recompiles.
"""

import pytest

from repro.tune import Tuner

BUDGET = 8


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("tune-cache")


def test_tuner_finds_no_worse_config(once, cache_dir):
    tuner = Tuner(cache_dir=cache_dir, seed=0)
    report = once(tuner.tune, "bootstrap", "cinnamon_4", scale="small",
                  strategy="halving", budget=BUDGET)
    print(report.leaderboard())
    assert report.best_cycles <= report.default_cycles
    assert report.speedup >= 1.0
    assert report.candidates_tried >= BUDGET
    assert tuner.db.get(report.db_key)["cycles"] == report.best_cycles


def test_retune_amortizes_through_cache(once, cache_dir):
    # Depends on the warm cache the previous benchmark left behind.
    tuner = Tuner(cache_dir=cache_dir, seed=0)
    report = once(tuner.tune, "bootstrap", "cinnamon_4", scale="small",
                  strategy="halving", budget=BUDGET)
    print(f"re-tune: {report.cache_hits} compile cache hits, "
          f"{report.cache_misses} misses, {report.seconds:.1f}s")
    assert report.cache_hits > 0
    assert report.cache_misses == 0
