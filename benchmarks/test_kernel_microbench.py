"""Microbenchmarks of the functional FHE kernels (pytest-benchmark).

Not a paper figure — these time this repository's own numpy kernels (NTT,
base conversion, keyswitching, rotation) so regressions in the substrate
are visible.  They also ground the CPU-baseline story: even at N = 4096 a
single keyswitch costs milliseconds on a CPU, versus the ~microseconds an
accelerator-class design spends.
"""

import time

import numpy as np
import pytest

from repro.fhe import CKKSContext, make_params
from repro.fhe.backend import available_backends, use_backend
from repro.fhe.keyswitch import keyswitch
from repro.fhe.ntt import intt, ntt, ntt_batch
from repro.fhe.primes import generate_primes
from repro.fhe.rns import base_convert


@pytest.fixture(scope="module")
def ctx():
    params = make_params(ring_degree=4096, levels=8, prime_bits=28,
                         num_digits=3)
    return CKKSContext(params, seed=1)


class TestNttBench:
    @pytest.mark.parametrize("n", [1024, 4096])
    def test_forward_ntt(self, benchmark, n):
        p = generate_primes(1, 28, n)[0]
        a = np.random.default_rng(0).integers(0, p, n, dtype=np.uint64)
        ntt(a, p)  # warm the table cache
        out = benchmark(ntt, a, p)
        assert np.array_equal(intt(out, p), a)


class TestBatchedBackendSpeedup:
    """The limb-batched backends vs the seed per-limb loop.

    Acceptance gate for the kernel overhaul: at the paper shape
    ``(L=24, N=8192)`` the best batched backend must transform the whole
    limb stack at least 3x faster than the ``"numpy"`` backend's per-limb
    reference loop.  Comparators are interleaved in one process and the
    per-comparator minimum over several rounds is used, so machine noise
    hits both sides equally.
    """

    LIMBS, N = 24, 8192
    ROUNDS = 5

    def _best_times(self):
        primes = generate_primes(self.LIMBS, 28, self.N)
        rng = np.random.default_rng(0)
        stack = rng.integers(
            0, np.array(primes, dtype=np.uint64)[:, None],
            size=(self.LIMBS, self.N), dtype=np.uint64)
        backends = available_backends()
        for name in backends:              # warm tables and plan caches
            with use_backend(name):
                ntt_batch(stack, primes)
        best = {name: float("inf") for name in backends}
        for _ in range(self.ROUNDS):
            for name in backends:
                with use_backend(name):
                    start = time.perf_counter()
                    ntt_batch(stack, primes)
                    elapsed = time.perf_counter() - start
                if elapsed < best[name]:
                    best[name] = elapsed
        return best

    def test_batched_backend_3x_over_seed_loop(self):
        best = self._best_times()
        assert "numpy" in best and "numpy-batched" in best
        seed_loop = best["numpy"]
        fastest_batched = min(t for name, t in best.items()
                              if name != "numpy")
        ratios = {name: seed_loop / t for name, t in sorted(best.items())}
        print("\nNTT (L=24, N=8192) speedup vs seed per-limb loop: "
              + "  ".join(f"{n}={r:.2f}x" for n, r in ratios.items()))
        # The portable batched kernels must always win outright ...
        assert seed_loop / best["numpy-batched"] > 1.2
        # ... and the best batched backend clears the 3x acceptance bar
        # (the compiled "native" backend where a toolchain exists).
        if "native" not in best:
            pytest.skip(
                "native backend unavailable (no C toolchain); "
                f"numpy-batched is {seed_loop / best['numpy-batched']:.2f}x")
        assert fastest_batched * 3 <= seed_loop, (
            f"best batched backend only "
            f"{seed_loop / fastest_batched:.2f}x over the seed loop")


class TestBaseConversionBench:
    def test_bconv_4096(self, benchmark):
        n = 4096
        primes = generate_primes(8, 28, n)
        source, target = primes[:3], primes[3:]
        rng = np.random.default_rng(1)
        limbs = np.stack([rng.integers(0, q, n, dtype=np.uint64)
                          for q in source])
        base_convert(limbs, source, target)  # warm the plan cache
        out = benchmark(base_convert, limbs, source, target)
        assert out.shape == (5, n)


class TestKeyswitchBench:
    def test_keyswitch_4096(self, benchmark, ctx):
        params = ctx.params
        d = ctx.keychain.rng.uniform_poly(params.moduli, params.ring_degree)
        evk = ctx.keychain.relin_key(params.max_level)
        f0, f1 = benchmark(keyswitch, d, evk, params)
        assert f0.level == params.max_level


class TestHomomorphicOpBench:
    def test_rotation(self, benchmark, ctx):
        from repro.fhe import Evaluator

        ev = Evaluator(ctx)
        z = np.linspace(-1, 1, ctx.params.slot_count)
        ct = ctx.encrypt_values(z)
        out = benchmark(ev.rotate, ct, 5)
        res = ctx.decrypt_values(out).real
        assert np.max(np.abs(res - np.roll(z, -5))) < 1e-3

    def test_multiplication(self, benchmark, ctx):
        from repro.fhe import Evaluator

        ev = Evaluator(ctx)
        z = np.linspace(-1, 1, ctx.params.slot_count)
        ct = ctx.encrypt_values(z)
        out = benchmark(ev.mul, ct, ct)
        res = ctx.decrypt_values(out).real
        assert np.max(np.abs(res - z * z)) < 1e-3
