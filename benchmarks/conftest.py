"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper via
``repro.experiments`` and asserts its headline *shape* (who wins, by
roughly what factor) — absolute times differ from the paper's testbed; see
EXPERIMENTS.md.  Compilation results are cached process-wide, so running
the whole directory reuses work across figures.

Heavy experiments run one round via ``benchmark.pedantic``; pass
``--repro-full`` for the full published sweep grids instead of the fast
ones.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-full", action="store_true", default=False,
        help="run the full published sweep grids (slow)",
    )


@pytest.fixture(scope="session")
def fast(request):
    return not request.config.getoption("--repro-full")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture(autouse=True)
def _run_shape_tests_under_benchmark_only(benchmark):
    """Keep the shape-assertion tests alive under ``--benchmark-only``.

    pytest-benchmark skips any test whose fixture closure lacks the
    ``benchmark`` fixture when ``--benchmark-only`` is given; depending on
    it here puts it in every test's closure, so the (cheap, cache-fed)
    shape assertions run alongside the table/figure regenerations.  Tests
    that never invoke it draw a per-test PytestBenchmarkWarning — expected
    and harmless.
    """
