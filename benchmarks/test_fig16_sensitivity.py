"""Figure 16: halve/double resource sensitivity on Cinnamon-4."""

import pytest

from repro.experiments import fig16_sensitivity
from repro.experiments.common import geomean


@pytest.fixture(scope="module")
def result(fast):
    return fig16_sensitivity.run(fast=fast)


def test_fig16_sensitivity(once, fast):
    out = once(fig16_sensitivity.run, fast=fast)
    print("\n" + fig16_sensitivity.format_result(out))


class TestShapes:
    def test_halving_hurts_more_than_doubling_helps(self, result):
        """The chips are balanced (Section 7.6): halving costs ~20-40%,
        doubling buys only ~2-20%."""
        rows = result["Cinnamon-4"]
        halve_losses = [1 - rows[r][0.5] for r in rows]
        double_gains = [rows[r][2.0] - 1 for r in rows]
        assert geomean([1 + loss for loss in halve_losses]) - 1 > \
            geomean([1 + gain for gain in double_gains]) - 1

    def test_halving_any_resource_slows_down(self, result):
        for resource, by_factor in result["Cinnamon-4"].items():
            assert by_factor[0.5] < 1.0, resource

    def test_doubling_never_hurts_much(self, result):
        for resource, by_factor in result["Cinnamon-4"].items():
            assert by_factor[2.0] > 0.95, resource

    def test_doubling_gains_are_modest(self, result):
        for resource, by_factor in result["Cinnamon-4"].items():
            assert by_factor[2.0] < 1.6, resource
