"""Figure 15: compute/memory/network utilization."""

import pytest

from repro.experiments import fig15_utilization


@pytest.fixture(scope="module")
def result(fast):
    return fig15_utilization.run(fast=fast)


def test_fig15_utilization(once, fast):
    out = once(fig15_utilization.run, fast=fast)
    print("\n" + fig15_utilization.format_result(out))


class TestShapes:
    def test_cinnamon4_keeps_resources_busy(self, result):
        """Paper: ~60% utilization across resources on Cinnamon-4."""
        boot = result["bootstrap/Cinnamon-4"]
        assert boot["memory"] > 0.3
        assert boot["compute"] > 0.15
        assert boot["network"] > 0.05

    def test_utilization_bounded(self, result):
        for key, row in result.items():
            for resource, value in row.items():
                assert 0.0 <= value <= 1.0, (key, resource)

    def test_bert_utilization_drops_at_twelve_chips(self, result):
        """Section 7.6: the narrow program sections stop scaling."""
        u8 = result["bert-base-128/Cinnamon-8"]
        u12 = result["bert-base-128/Cinnamon-12"]
        assert u12["compute"] <= u8["compute"] * 1.05
