"""The :mod:`repro.nn` layer zoo.

Each layer is a plain-numpy object carrying its weights, a
``reference(x)`` forward that is the *exact* ground truth for the
encrypted computation (polynomial activations are mirrored as the same
Chebyshev polynomial, Newton-Raphson refinements as the same iteration —
so encrypted-vs-reference error measures only CKKS noise, never
approximation quality), and a ``lower(ctx, h)`` that walks the same
computation through a lowering builder (see :mod:`repro.nn.lower`).

Conventions:

* ``reference`` takes and returns ``(lanes, width)`` arrays — lanes are
  HELR batch samples, BERT tokens, or the single lane of a CNN image.
* Layer widths count *valid* slots; the lane block pads them to a power
  of two under the pad-and-mask contract (zero tails compose for free).
* Reductions (LayerNorm, Softmax, attention scores, pooling) require
  their reduced width to be a power of two (rotate-and-sum trees).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..fhe.polyeval import chebyshev_coefficients
from .lower import (
    cheb_interval_map,
    chebyshev_lower,
    frame_base_mask,
    matvec_lower,
    segment_reduce_broadcast,
)


def cheb_reference(x: np.ndarray, coeffs: Sequence[float],
                   interval=(-1.0, 1.0)) -> np.ndarray:
    """The numpy mirror of :func:`chebyshev_lower` — the same polynomial."""
    lo, hi = interval
    t = np.asarray(x, dtype=np.float64)
    if not (math.isclose(lo, -1.0) and math.isclose(hi, 1.0)):
        scale, shift = cheb_interval_map(interval)
        t = scale * t + shift
    return np.polynomial.chebyshev.chebval(t, np.asarray(coeffs))


def reciprocal_lower(ctx, h, coeffs, interval, iterations: int):
    """Seeded Newton-Raphson ``1/z``: ``y <- y * (2 - z*y)``."""
    y = chebyshev_lower(ctx, h, coeffs, interval)
    for _ in range(iterations):
        zy = ctx.mul(h, y)
        y = ctx.mul(y, ctx.add_const(ctx.neg(zy), 2.0))
    return y


def reciprocal_reference(z, coeffs, interval, iterations: int):
    y = cheb_reference(z, coeffs, interval)
    for _ in range(iterations):
        y = y * (2.0 - z * y)
    return y


class Layer:
    """Base layer: fixed widths, a reference forward, and a lowering."""

    name: str = "layer"
    in_width: int = 0
    out_width: int = 0

    def widths(self) -> List[int]:
        """Every slot width this layer touches (drives packing selection)."""
        return [self.in_width, self.out_width]

    def reference(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def lower(self, ctx, h):
        raise NotImplementedError

    def __repr__(self):
        return (f"{type(self).__name__}({self.name!r}, "
                f"{self.in_width}->{self.out_width})")


# --------------------------------------------------------------------------- #
# Linear algebra layers


class Linear(Layer):
    """``y = W @ x + b`` per lane, via a BSGS diagonal matvec (1 level)."""

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                 name: str = "linear"):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("Linear weight must be 2-D (out, in)")
        self.bias = None if bias is None else np.asarray(bias, np.float64)
        if self.bias is not None and self.bias.shape != (self.weight.shape[0],):
            raise ValueError("bias must match the output width")
        self.name = name
        self.out_width, self.in_width = self.weight.shape

    def reference(self, x):
        y = np.asarray(x) @ self.weight.T
        if self.bias is not None:
            y = y + self.bias
        return y

    def lower(self, ctx, h):
        y = matvec_lower(ctx, h, self.weight, self.name)
        if self.bias is not None:
            base = np.zeros(ctx.spec.frame)
            for start in ctx.spec.lane_starts():
                base[start:start + self.out_width] = self.bias
            y = ctx.add_vec(y, base, f"{self.name}.b")
        return y


def conv2d_matrix(weight: np.ndarray, height: int, width: int,
                  stride: int = 1) -> np.ndarray:
    """The im2col matrix of a 'same'-padded 2-D convolution.

    ``weight`` is ``(out_ch, in_ch, k, k)``; channel-major flattening
    (``c * H*W + y * W + x``) on both sides.  Lowered as a single
    rectangular matvec, which is how CHET/Orion-style frontends feed
    convolutions to the diagonal method.
    """
    out_ch, in_ch, k, _ = weight.shape
    pad = k // 2
    oh = (height + 2 * pad - k) // stride + 1
    ow = (width + 2 * pad - k) // stride + 1
    matrix = np.zeros((out_ch * oh * ow, in_ch * height * width))
    for co in range(out_ch):
        for oy in range(oh):
            for ox in range(ow):
                row = co * oh * ow + oy * ow + ox
                for ci in range(in_ch):
                    for dy in range(k):
                        for dx in range(k):
                            iy = oy * stride + dy - pad
                            ix = ox * stride + dx - pad
                            if 0 <= iy < height and 0 <= ix < width:
                                col = ci * height * width + iy * width + ix
                                matrix[row, col] = weight[co, ci, dy, dx]
    return matrix


class Conv2d(Layer):
    """'Same'-padded convolution as one im2col matvec (1 level)."""

    def __init__(self, weight: np.ndarray, height: int, width: int,
                 stride: int = 1, name: str = "conv"):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 4:
            raise ValueError("Conv2d weight must be (out_ch, in_ch, k, k)")
        self.height, self.width, self.stride = height, width, stride
        self.name = name
        self.matrix = conv2d_matrix(self.weight, height, width, stride)
        self.out_width, self.in_width = self.matrix.shape
        k = self.weight.shape[2]
        pad = k // 2
        self.out_height = (height + 2 * pad - k) // stride + 1
        self.out_width_px = (width + 2 * pad - k) // stride + 1

    def reference(self, x):
        return np.asarray(x) @ self.matrix.T

    def lower(self, ctx, h):
        return matvec_lower(ctx, h, self.matrix, self.name)


class GlobalAvgPool(Layer):
    """Average each channel's spatial block: rotate-and-sum + gather."""

    def __init__(self, channels: int, spatial: int, name: str = "avgpool"):
        if spatial & (spatial - 1):
            raise ValueError("spatial size must be a power of two")
        self.channels, self.spatial = channels, spatial
        self.name = name
        self.in_width = channels * spatial
        self.out_width = channels
        gather = np.zeros((channels, channels * spatial))
        for c in range(channels):
            gather[c, c * spatial] = 1.0 / spatial
        self.gather = gather

    def reference(self, x):
        x = np.asarray(x)
        lanes = x.shape[0]
        return x.reshape(lanes, self.channels, self.spatial).mean(axis=-1)

    def lower(self, ctx, h):
        summed = ctx.segment_sum(h, self.spatial)
        return matvec_lower(ctx, summed, self.gather, self.name)


# --------------------------------------------------------------------------- #
# Polynomial nonlinearities


class PolyActivation(Layer):
    """An elementwise Chebyshev polynomial approximation of ``fn``.

    The reference evaluates the *polynomial* (not ``fn``), so parity
    tests measure encryption noise only.  Depth: log2(degree)-ish plus
    one level for the interval's affine map.
    """

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], degree: int,
                 interval, width: int, name: str = "act"):
        self.coeffs = chebyshev_coefficients(fn, degree, interval)
        self.interval = tuple(interval)
        self.degree = degree
        self.name = name
        self.in_width = self.out_width = width

    def reference(self, x):
        return cheb_reference(x, self.coeffs, self.interval)

    def lower(self, ctx, h):
        return chebyshev_lower(ctx, h, self.coeffs, self.interval)


def relu(width: int, degree: int = 4, bound: float = 4.0,
         name: str = "relu") -> PolyActivation:
    """Minimax-flavoured polynomial ReLU on ``[-bound, bound]``."""
    return PolyActivation(lambda x: np.maximum(x, 0.0), degree,
                          (-bound, bound), width, name=name)


def gelu(width: int, degree: int = 7, bound: float = 5.0,
         name: str = "gelu") -> PolyActivation:
    fn = lambda x: 0.5 * x * (1.0 + np.tanh(
        math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)))
    return PolyActivation(fn, degree, (-bound, bound), width, name=name)


def sigmoid(width: int, degree: int = 7, bound: float = 8.0,
            name: str = "sigmoid") -> PolyActivation:
    """HELR's degree-7 logistic approximation."""
    return PolyActivation(lambda x: 1.0 / (1.0 + np.exp(-x)), degree,
                          (-bound, bound), width, name=name)


# --------------------------------------------------------------------------- #
# Normalization / softmax


class LayerNorm(Layer):
    """LayerNorm with a Newton-Raphson rsqrt (Orion/BERT-FHE style).

    The inverse square root is a low-degree Chebyshev seed on the
    expected variance interval refined by ``y <- y*(1.5 - u*y^2)`` with
    ``u = (var + eps)/2`` (the 0.5 is folded into the reduction mask, so
    an iteration costs 3 levels instead of 4).  Total depth: 11 with the
    defaults — sized to fit one bootstrap budget.
    """

    def __init__(self, width: int, gamma: Optional[np.ndarray] = None,
                 beta: Optional[np.ndarray] = None, eps: float = 1e-2,
                 var_interval=(0.05, 4.0), seed_degree: int = 3,
                 iterations: int = 1, name: str = "ln"):
        if width & (width - 1):
            raise ValueError("LayerNorm width must be a power of two")
        self.in_width = self.out_width = width
        self.gamma = (np.ones(width) if gamma is None
                      else np.asarray(gamma, np.float64))
        self.beta = (np.zeros(width) if beta is None
                     else np.asarray(beta, np.float64))
        self.eps = float(eps)
        lo, hi = var_interval
        self.u_interval = ((lo + self.eps) / 2.0, (hi + self.eps) / 2.0)
        self.seed_coeffs = chebyshev_coefficients(
            lambda u: 1.0 / np.sqrt(2.0 * u), seed_degree, self.u_interval)
        self.iterations = iterations
        self.name = name

    def _rsqrt(self, u):
        y = cheb_reference(u, self.seed_coeffs, self.u_interval)
        for _ in range(self.iterations):
            y = y * (1.5 - u * y * y)
        return y

    def reference(self, x):
        x = np.asarray(x)
        mu = x.mean(axis=-1, keepdims=True)
        c = x - mu
        u = 0.5 * (np.square(c).mean(axis=-1, keepdims=True) + self.eps)
        return c * self._rsqrt(u) * self.gamma + self.beta

    def lower(self, ctx, h):
        w, spec = self.in_width, ctx.spec
        starts = spec.lane_starts()
        mu = segment_reduce_broadcast(ctx, h, w, starts, 1.0 / w,
                                      f"{self.name}.mu")
        c = ctx.sub(h, mu)
        sq = ctx.mul(c, c)
        u = segment_reduce_broadcast(ctx, sq, w, starts, 0.5 / w,
                                     f"{self.name}.var",
                                     bias_at_starts=0.5 * self.eps)
        y = chebyshev_lower(ctx, u, self.seed_coeffs, self.u_interval)
        for _ in range(self.iterations):
            yy = ctx.mul(y, y)
            uyy = ctx.mul(u, yy)
            y = ctx.mul(y, ctx.add_const(ctx.neg(uyy), 1.5))
        out = ctx.mul(c, y)
        gamma_base = np.zeros(spec.frame)
        beta_base = np.zeros(spec.frame)
        for start in starts:
            gamma_base[start:start + w] = self.gamma
            beta_base[start:start + w] = self.beta
        out = ctx.mul_vec(out, gamma_base, f"{self.name}.g")
        return ctx.add_vec(out, beta_base, f"{self.name}.b")


class Softmax(Layer):
    """Per-lane softmax: exp polynomial, slot-sum, Newton-Raphson 1/z."""

    def __init__(self, width: int, exp_degree: int = 5, exp_bound: float = 4.0,
                 sum_interval=(0.2, 8.0), seed_degree: int = 2,
                 iterations: int = 1, name: str = "softmax"):
        if width & (width - 1):
            raise ValueError("Softmax width must be a power of two")
        self.in_width = self.out_width = width
        self.exp_interval = (-exp_bound, exp_bound)
        self.exp_coeffs = chebyshev_coefficients(
            np.exp, exp_degree, self.exp_interval)
        self.sum_interval = tuple(sum_interval)
        self.seed_coeffs = chebyshev_coefficients(
            lambda z: 1.0 / z, seed_degree, self.sum_interval)
        self.iterations = iterations
        self.name = name

    def reference(self, x):
        e = cheb_reference(x, self.exp_coeffs, self.exp_interval)
        z = e.sum(axis=-1, keepdims=True)
        return e * reciprocal_reference(z, self.seed_coeffs,
                                        self.sum_interval, self.iterations)

    def lower(self, ctx, h):
        starts = ctx.spec.lane_starts()
        e = chebyshev_lower(ctx, h, self.exp_coeffs, self.exp_interval)
        z = segment_reduce_broadcast(ctx, e, self.in_width, starts, 1.0,
                                     f"{self.name}.z")
        y = reciprocal_lower(ctx, z, self.seed_coeffs, self.sum_interval,
                             self.iterations)
        return ctx.mul(e, y)


# --------------------------------------------------------------------------- #
# Attention


class SelfAttention(Layer):
    """Multi-head self-attention over the lane (token) dimension.

    Rotation-trick formulation: for each cyclic token offset ``r`` the
    score diagonal ``s_r = sum_head(q * rot(k, r*block))`` is one
    Hadamard product plus a per-head segment reduction; softmax runs
    across the ``r`` ciphertexts (scores centred by their mean over
    ``r`` — free adds — to keep the exp interval tight, with ``1/seq``
    folded into the exp coefficients); context is
    ``(sum_r e_r * rot(v, r*block)) * recip(z)``.  Two internal stage
    checkpoints bound the depth between refresh opportunities.
    """

    def __init__(self, d_model: int, num_heads: int, seq: int,
                 wq: np.ndarray, wk: np.ndarray, wv: np.ndarray,
                 wo: np.ndarray, exp_degree: int = 5, exp_bound: float = 3.0,
                 sum_interval=(0.25, 4.0), seed_degree: int = 2,
                 iterations: int = 1, name: str = "attn"):
        if d_model % num_heads:
            raise ValueError("d_model must be divisible by num_heads")
        self.d_head = d_model // num_heads
        if self.d_head & (self.d_head - 1):
            raise ValueError("head width must be a power of two")
        self.d_model, self.num_heads, self.seq = d_model, num_heads, seq
        self.in_width = self.out_width = d_model
        scale = 1.0 / math.sqrt(self.d_head)
        self.wq = np.asarray(wq, np.float64) * scale
        self.wk = np.asarray(wk, np.float64)
        self.wv = np.asarray(wv, np.float64)
        self.wo = np.asarray(wo, np.float64)
        self.exp_interval = (-exp_bound, exp_bound)
        # exp scaled by 1/seq so z = sum_r e_r is O(1); the scaling
        # cancels in e_r / z.
        self.exp_coeffs = chebyshev_coefficients(
            lambda x: np.exp(x) / seq, exp_degree, self.exp_interval)
        self.sum_interval = tuple(sum_interval)
        self.seed_coeffs = chebyshev_coefficients(
            lambda z: 1.0 / z, seed_degree, self.sum_interval)
        self.iterations = iterations
        self.name = name

    # -- reference ------------------------------------------------------- #

    def _head_of(self):
        return np.repeat(np.arange(self.num_heads), self.d_head)

    def reference(self, x):
        x = np.asarray(x)
        seq, d = self.seq, self.d_model
        if x.shape != (seq, d):
            raise ValueError(f"attention expects ({seq}, {d}) tokens")
        q = x @ self.wq.T
        k = x @ self.wk.T
        v = x @ self.wv.T
        # s_b[r][t, i] = per-head score of token t against token t+r,
        # broadcast across the head's slots (the slot semantics of the
        # segment reduction).
        s_b = np.zeros((seq, seq, d))
        for r in range(seq):
            prod = q * np.roll(k, -r, axis=0)
            for head in range(self.num_heads):
                sl = slice(head * self.d_head, (head + 1) * self.d_head)
                s_b[r][:, sl] = prod[:, sl].sum(axis=-1, keepdims=True)
        centred = s_b - s_b.mean(axis=0, keepdims=True)
        e = cheb_reference(centred, self.exp_coeffs, self.exp_interval)
        z = e.sum(axis=0)
        y = reciprocal_reference(z, self.seed_coeffs, self.sum_interval,
                                 self.iterations)
        context = np.zeros((seq, d))
        for r in range(seq):
            context += e[r] * np.roll(v, -r, axis=0)
        return (context * y) @ self.wo.T

    # -- lowering -------------------------------------------------------- #

    def lower(self, ctx, h):
        spec = ctx.spec
        seq, block = self.seq, spec.block
        if spec.lanes != seq:
            raise ValueError(
                f"attention over {seq} tokens needs {seq} lanes, "
                f"got {spec.lanes}")
        head_starts = [lane * block + head * self.d_head
                       for lane in range(seq)
                       for head in range(self.num_heads)]

        q = matvec_lower(ctx, h, self.wq, f"{self.name}.wq")
        k = matvec_lower(ctx, h, self.wk, f"{self.name}.wk")
        v = matvec_lower(ctx, h, self.wv, f"{self.name}.wv")
        q, k, v = ctx.stage([q, k, v], f"{self.name}:scores")

        scores = []
        for r in range(seq):
            kr = ctx.rotate(k, r * block)
            s = ctx.mul(q, kr)
            scores.append(segment_reduce_broadcast(
                ctx, s, self.d_head, head_starts, 1.0,
                f"{self.name}.s{r}"))
        total = scores[0]
        for s in scores[1:]:
            total = ctx.add(total, s)
        mean = ctx.mul_const(total, 1.0 / seq)
        exps = [chebyshev_lower(ctx, ctx.sub(s, mean), self.exp_coeffs,
                                self.exp_interval)
                for s in scores]
        z = exps[0]
        for e in exps[1:]:
            z = ctx.add(z, e)

        live = ctx.stage(exps + [v, z], f"{self.name}:mix")
        exps, v, z = live[:seq], live[seq], live[seq + 1]
        y = reciprocal_lower(ctx, z, self.seed_coeffs, self.sum_interval,
                             self.iterations)
        context = None
        for r in range(seq):
            vr = ctx.rotate(v, r * block)
            term = ctx.mul(exps[r], vr)
            context = term if context is None else ctx.add(context, term)
        context = ctx.mul(context, y)
        return matvec_lower(ctx, context, self.wo, f"{self.name}.wo")


# --------------------------------------------------------------------------- #
# Composition


class Sequential(Layer):
    """Chain layers; each child is a refresh checkpoint."""

    def __init__(self, layers: Sequence[Layer], name: str = "seq"):
        layers = list(layers)
        if not layers:
            raise ValueError("empty Sequential")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_width != nxt.in_width:
                raise ValueError(
                    f"width mismatch: {prev!r} feeds {prev.out_width} "
                    f"slots into {nxt!r} expecting {nxt.in_width}")
        self.layers = layers
        self.name = name
        self.in_width = layers[0].in_width
        self.out_width = layers[-1].out_width

    def widths(self):
        out: List[int] = []
        for layer in self.layers:
            out.extend(layer.widths())
        return out

    def reference(self, x):
        for layer in self.layers:
            x = layer.reference(x)
        return x

    def lower(self, ctx, h):
        for i, layer in enumerate(self.layers):
            h = ctx.stage([h], f"{self.name}[{i}]:{layer.name}")
            h = layer.lower(ctx, h)
        return h


class Residual(Layer):
    """``x + body(x)`` — the skip rides at its own level; the final add
    realigns to ``min(skip, branch)`` (modelled exactly by the planner)."""

    def __init__(self, body: Layer, name: str = "residual"):
        if body.in_width != body.out_width:
            raise ValueError("residual body must preserve width")
        self.body = body
        self.name = name
        self.in_width = self.out_width = body.in_width

    def widths(self):
        return self.body.widths()

    def reference(self, x):
        return np.asarray(x) + self.body.reference(x)

    def lower(self, ctx, h):
        skip = ctx.residual_enter(h)
        branch = self.body.lower(ctx, h)
        return ctx.residual_exit(skip, branch)


class Model(Sequential):
    """A named Sequential with a lane count — the unit the lowering,
    executor, serving mix, and tuner all consume."""

    def __init__(self, name: str, layers: Sequence[Layer], lanes: int = 1):
        super().__init__(layers, name=name)
        self.lanes = lanes
