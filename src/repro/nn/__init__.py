"""repro.nn — a tensor-program frontend for the Cinnamon stack.

An Orion/CHET-style model frontend: typed layers with plaintext numpy
weights and exact numeric references (:mod:`repro.nn.layers`), a lowering
pass that selects the slot packing, plans bootstrap placement, and emits
a :class:`~repro.core.dsl.CinnamonProgram` (:mod:`repro.nn.lower`),
builders for the paper's evaluation models (:mod:`repro.nn.models`), and
an end-to-end encrypted executor through the compiler + ISA emulator
(:mod:`repro.nn.executor`).

Quick start::

    from repro.fhe import make_params
    from repro.nn import build_helr, encrypted_forward, lower, sample_input

    model = build_helr()
    params = make_params(ring_degree=256, levels=8)
    lowered = lower(model, params)
    x = sample_input(model)
    assert abs(encrypted_forward(lowered, x) - model.reference(x)).max() < 1e-2
"""

from .layers import (
    Conv2d,
    GlobalAvgPool,
    Layer,
    LayerNorm,
    Linear,
    Model,
    PolyActivation,
    Residual,
    SelfAttention,
    Sequential,
    Softmax,
    cheb_reference,
    conv2d_matrix,
    gelu,
    relu,
    sigmoid,
)
from .lower import (
    DepthBudgetError,
    DepthPlan,
    DslLowering,
    LoweredModel,
    PackingSpec,
    lower,
    place_bootstraps,
    select_packing,
)
from .executor import encrypted_forward, nn_params, pack_input, unpack_output
from .models import (
    MODEL_NAMES,
    build_bert_encoder,
    build_helr,
    build_model,
    build_resnet20,
    sample_input,
)

__all__ = [
    "Conv2d",
    "GlobalAvgPool",
    "Layer",
    "LayerNorm",
    "Linear",
    "Model",
    "PolyActivation",
    "Residual",
    "SelfAttention",
    "Sequential",
    "Softmax",
    "cheb_reference",
    "conv2d_matrix",
    "gelu",
    "relu",
    "sigmoid",
    "DepthBudgetError",
    "DepthPlan",
    "DslLowering",
    "LoweredModel",
    "PackingSpec",
    "lower",
    "place_bootstraps",
    "select_packing",
    "encrypted_forward",
    "nn_params",
    "pack_input",
    "unpack_output",
    "MODEL_NAMES",
    "build_bert_encoder",
    "build_helr",
    "build_model",
    "build_resnet20",
    "sample_input",
]
