"""Lowering from :mod:`repro.nn` layer graphs to the Cinnamon DSL.

The frontend follows the CHET/Orion recipe: a model is a graph of layers
with plaintext numpy weights; lowering walks the graph twice with the
same code path —

1. a **depth trace** (dry run at a very high level) records how many
   multiplicative levels each stage consumes, without committing to a
   parameter set;
2. :func:`place_bootstraps` replays the trace against the real level
   budget and decides, Orion-style, *before which stages* the live
   ciphertexts must be refreshed (``remaining depth < stage depth``);
3. the **emission run** replays the model against a fresh
   :class:`~repro.core.dsl.CinnamonProgram`, inserting ``bootstrap()``
   exactly where the plan says.

Because the emitted op structure never depends on absolute levels, the
dry-run depths are exact for the emission run, and the analytic plan's
bootstrap count always matches the emitted program — an invariant the
test suite checks explicitly.

Data layout: every value is a **lane frame** (see
:func:`repro.fhe.packing.pack_lanes`) — ``lanes`` vectors (batch samples
for HELR, tokens for BERT, a single lane for CNNs), each padded to a
power-of-two ``block``, tiled across the slots.  All rotations are
frame-periodic, so one lowered program is valid for any ring whose slot
count the frame divides: the same program object serves both functional
parity runs (small rings) and architectural simulation (N = 64K).

Rectangular weights ride on the pad-and-mask contract of
:func:`repro.fhe.linear.pad_matrix_block`: zero pad-rows pin each lane's
tail slots to exactly zero, zero pad-columns mask out junk the previous
layer left there, so layers compose without explicit cleanup masks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dsl import CinnamonProgram
from ..fhe.linear import matrix_diagonals, pad_matrix_block, select_baby_steps
from ..fhe.packing import SlotCapacityError
from ..fhe.polyeval import _trim, chebyshev_divmod

DEFAULT_FLOOR = 1
_DRY_LEVEL = 4096  # dry-run headroom: deeper than any model we lower


class DepthBudgetError(ValueError):
    """The model cannot be scheduled within the available level budget."""


# --------------------------------------------------------------------------- #
# Packing selection


@dataclass(frozen=True)
class PackingSpec:
    """How a model's tensors map onto the CKKS slots."""

    lanes: int
    block: int

    @property
    def frame(self) -> int:
        return self.lanes * self.block

    @property
    def layout(self) -> str:
        """``tiled`` (one lane fills the frame) vs ``batched`` lanes."""
        return "batched" if self.lanes > 1 else "tiled"

    def lane_starts(self) -> List[int]:
        return [lane * self.block for lane in range(self.lanes)]


def _next_pow2(n: int) -> int:
    return 1 << max(0, int(math.ceil(math.log2(max(1, n)))))


def select_packing(model, slot_count: int) -> PackingSpec:
    """Choose the lane block for a model: the widest layer width, padded
    to a power of two.  Raises :class:`SlotCapacityError` when the frame
    does not fit the ring."""
    widest = max(model.widths())
    block = _next_pow2(widest)
    lanes = getattr(model, "lanes", 1)
    frame = lanes * block
    if frame > slot_count:
        raise SlotCapacityError(
            f"model {model.name!r} needs a {lanes} x {block} frame "
            f"({frame} slots) but the ring provides {slot_count}",
            needed=frame, available=slot_count)
    return PackingSpec(lanes=lanes, block=block)


# --------------------------------------------------------------------------- #
# Depth traces and bootstrap placement


@dataclass(frozen=True)
class TraceEvent:
    """One point of the lowering walk that the depth planner models.

    ``stage`` events are refresh opportunities (``live`` = how many
    ciphertexts would need bootstrapping there); ``enter``/``exit``
    bracket residual skips, whose final add realigns the carrier level to
    ``min(skip, branch)``.
    """

    kind: str    # "stage" | "enter" | "exit"
    name: str
    live: int
    level: int   # dry-run level at this event


@dataclass(frozen=True)
class DepthPlan:
    """The analytic level schedule for one lowered model."""

    trace: Tuple[TraceEvent, ...]
    input_level: int
    output_level: Optional[int]      # bootstrap re-entry level (None: no plan)
    floor: int
    refresh_at: frozenset            # stage ordinals preceded by a refresh
    bootstrap_count: int             # total bootstrap *ops* (sum of live sets)
    final_level: int                 # carrier level at the output

    @property
    def total_depth(self) -> int:
        """Multiplicative depth of the whole model, bootstraps aside."""
        return self.trace[0].level - self.trace[-1].level

    def stage_names(self) -> List[str]:
        return [e.name for e in self.trace if e.kind == "stage"]


def place_bootstraps(trace: Sequence[TraceEvent], input_level: int,
                     output_level: Optional[int],
                     floor: int = DEFAULT_FLOOR) -> DepthPlan:
    """Replay a dry-run trace against a real budget and pick refreshes.

    Greedy Orion rule: at each stage checkpoint, if finishing the segment
    up to the next checkpoint would leave the carrier below ``floor``,
    refresh every live ciphertext first.  Residual markers replay the
    skip-add's ``min`` exactly, so the predicted trajectory equals the
    emission run's — which is what makes ``bootstrap_count`` testable
    against the emitted program.
    """
    events = list(trace)
    if not events or events[0].kind != "stage":
        raise ValueError("trace must start with a stage event")
    stage_positions = [i for i, e in enumerate(events) if e.kind == "stage"]

    def advance(level: float, stack: List[float], i0: int, i1: int):
        """Apply events ``(i0, i1]``: compute deltas plus residual minima."""
        stack = list(stack)
        for j in range(i0 + 1, i1 + 1):
            level -= events[j - 1].level - events[j].level
            if events[j].kind == "enter":
                stack.append(level)
            elif events[j].kind == "exit":
                level = min(level, stack.pop())
        return level, stack

    refresh_at = set()
    bootstrap_count = 0
    level: float = float(input_level)
    stack: List[float] = []
    for ordinal, pos in enumerate(stage_positions):
        nxt = (stage_positions[ordinal + 1]
               if ordinal + 1 < len(stage_positions) else pos)
        end_level, _ = advance(level, stack, pos, nxt)
        if end_level < floor:
            if output_level is None:
                raise DepthBudgetError(
                    f"stage {events[pos].name!r} needs "
                    f"{int(level - end_level)} levels but only "
                    f"{int(level - floor)} remain and no bootstrap plan "
                    f"was given")
            retry, _ = advance(float(output_level), stack, pos, nxt)
            if retry < floor:
                raise DepthBudgetError(
                    f"stage {events[pos].name!r} consumes "
                    f"{int(output_level - retry)} levels — more than the "
                    f"bootstrap budget {output_level - floor} "
                    f"(output level {output_level}, floor {floor})")
            refresh_at.add(ordinal)
            bootstrap_count += events[pos].live
            level = float(output_level)
        level, stack = advance(level, stack, pos, nxt)
    return DepthPlan(
        trace=tuple(events), input_level=input_level,
        output_level=output_level, floor=floor,
        refresh_at=frozenset(refresh_at), bootstrap_count=bootstrap_count,
        final_level=int(level))


# --------------------------------------------------------------------------- #
# The lowering builder


class DslLowering:
    """Emits a model walk into a :class:`CinnamonProgram`.

    One class serves both passes: with ``plan=None`` it is the dry run
    (record the trace, never refresh); with a :class:`DepthPlan` it is
    the emission run (refresh the live set at the planned stages).
    Plaintext operands (weights' diagonals, masks, biases, polynomial
    constants) become *named* program plaintexts whose frame-periodic
    base values are collected in :attr:`plaintext_values` for binding at
    emulation time.
    """

    def __init__(self, spec: PackingSpec, program: CinnamonProgram,
                 plan: Optional[DepthPlan] = None):
        self.spec = spec
        self.program = program
        self.plan = plan
        self.trace: List[TraceEvent] = []
        self.plaintext_values: Dict[str, np.ndarray] = {}
        self.bootstraps = 0
        self.rotations = 0
        self._stage_ordinal = 0
        self._pt_serial = 0

    # -- checkpoints ----------------------------------------------------- #

    def stage(self, handles, name: str):
        """Declare a refresh opportunity over the given live set."""
        hs = list(handles)
        self.trace.append(TraceEvent(
            "stage", name, len(hs), min(h.level for h in hs)))
        if self.plan is not None and \
                self._stage_ordinal in self.plan.refresh_at:
            hs = [h.bootstrap() for h in hs]
            self.bootstraps += len(hs)
        self._stage_ordinal += 1
        return hs if len(hs) > 1 else hs[0]

    def residual_enter(self, h):
        self.trace.append(TraceEvent("enter", "residual", 1, h.level))
        return h

    def residual_exit(self, skip, branch):
        out = self.add(skip, branch)
        self.trace.append(TraceEvent("exit", "residual", 1, out.level))
        return out

    # -- primitive ops (levels tracked by the DSL recorder) -------------- #

    def add(self, a, b):
        return a + b

    def sub(self, a, b):
        return a - b

    def neg(self, a):
        return -a

    def mul(self, a, b):
        return a * b

    def add_const(self, h, value: float):
        return h + float(value)

    def mul_const(self, h, value: float):
        return h * float(value)

    def _pt(self, values: np.ndarray, tag: str):
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.spec.frame,):
            raise ValueError(
                f"plaintext {tag!r} must be one frame "
                f"({self.spec.frame} values), got {values.shape}")
        name = f"{tag}.{self._pt_serial}"
        self._pt_serial += 1
        self.plaintext_values[name] = values
        return self.program.plaintext(name)

    def add_vec(self, h, values, tag: str):
        return h + self._pt(values, tag)

    def mul_vec(self, h, values, tag: str):
        return h * self._pt(values, tag)

    def rotate(self, h, amount: int):
        amount = int(amount) % self.spec.frame
        if amount == 0:
            return h
        self.rotations += 1
        return h.rotate(amount)

    def rotate_many(self, h, amounts):
        return {k: self.rotate(h, k) for k in amounts}

    def segment_sum(self, h, span: int):
        """``out[j] = sum_{t<span} in[j+t]`` — rotate-and-sum doubling."""
        if span & (span - 1):
            raise ValueError(f"segment span {span} must be a power of two")
        shift = 1
        while shift < span:
            h = self.add(h, self.rotate(h, shift))
            shift <<= 1
        return h


# --------------------------------------------------------------------------- #
# Generic math over the builder interface (shared by every pass)


def matvec_lower(ctx, h, matrix: np.ndarray, tag: str):
    """Apply ``matrix`` to every lane: BSGS diagonal matvec, one level.

    The (possibly rectangular) matrix is pad-and-masked into the lane
    block and replicated over the lanes as a block-diagonal frame matrix;
    the BSGS split is chosen per-matrix with
    :func:`repro.fhe.linear.select_baby_steps`.
    """
    spec = ctx.spec
    padded = pad_matrix_block(np.asarray(matrix, dtype=np.float64),
                              spec.block)
    if spec.lanes > 1:
        frame_matrix = np.kron(np.eye(spec.lanes), padded)
    else:
        frame_matrix = padded
    diagonals = matrix_diagonals(frame_matrix)
    if not diagonals:
        raise ValueError(f"matrix for {tag!r} has no nonzero entries")
    n = spec.frame
    n1 = select_baby_steps(diagonals, n)

    groups: Dict[int, Dict[int, np.ndarray]] = {}
    for d, diag in diagonals.items():
        j, i = divmod(d, n1)
        groups.setdefault(j, {})[i] = np.real(diag)
    babies = sorted({i for g in groups.values() for i in g})
    rotated = ctx.rotate_many(h, babies)

    result = None
    for j in sorted(groups):
        inner = None
        for i in sorted(groups[j]):
            adjusted = np.roll(groups[j][i], j * n1)
            term = ctx.mul_vec(rotated[i], adjusted, f"{tag}.d{j * n1 + i}")
            inner = term if inner is None else ctx.add(inner, term)
        if j:
            inner = ctx.rotate(inner, j * n1)
        result = inner if result is None else ctx.add(result, inner)
    return result


def cheb_interval_map(interval) -> Tuple[float, float]:
    """The affine ``x -> scale*x + shift`` taking ``interval`` to [-1, 1]."""
    lo, hi = interval
    return 2.0 / (hi - lo), -(hi + lo) / (hi - lo)


def chebyshev_lower(ctx, h, coeffs: Sequence[float], interval=(-1.0, 1.0)):
    """Builder-generic Han-Ki BSGS Chebyshev evaluation.

    Mirrors :class:`repro.fhe.polyeval.ChebyshevEvaluator` op for op, so
    the DSL program, the depth trace, and the numpy references (via
    ``chebval`` — the same polynomial) agree exactly.  Costs one extra
    level when ``interval`` is not already [-1, 1].
    """
    lo, hi = interval
    if not (math.isclose(lo, -1.0) and math.isclose(hi, 1.0)):
        scale, shift = cheb_interval_map(interval)
        h = ctx.mul_const(h, scale)
        if abs(shift) > 1e-12:
            h = ctx.add_const(h, shift)
    coeffs = _trim([float(c) for c in coeffs])
    degree = len(coeffs) - 1
    if degree == 0:
        return ctx.add_const(ctx.mul_const(h, 0.0), coeffs[0])

    baby = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
    table = {1: h}
    for i in range(2, baby + 1):
        half, other = i // 2, i - i // 2
        prod = ctx.mul(table[half], table[other])
        t_i = ctx.add(prod, prod)
        if half == other:
            t_i = ctx.add_const(t_i, -1.0)
        else:
            t_i = ctx.sub(t_i, table[other - half])
        table[i] = t_i
    g = baby
    while 2 * g <= degree:
        prod = ctx.mul(table[g], table[g])
        doubled = ctx.add(prod, prod)
        table[2 * g] = ctx.add_const(doubled, -1.0)
        g *= 2

    def eval_small(cs):
        acc = None
        for i in range(1, len(cs)):
            if cs[i] == 0.0:
                continue
            term = ctx.mul_const(table[i], cs[i])
            acc = term if acc is None else ctx.add(acc, term)
        if acc is None:
            acc = ctx.mul_const(table[1], 0.0)
        if cs[0] != 0.0:
            acc = ctx.add_const(acc, cs[0])
        return acc

    def eval_recursive(cs):
        cs = _trim(cs)
        d = len(cs) - 1
        if d < max(baby, 2):
            return eval_small(cs)
        giant = baby
        while 2 * giant <= d:
            giant *= 2
        q, r = chebyshev_divmod(cs, giant)
        prod = ctx.mul(eval_recursive(q), table[giant])
        if _trim(r) == [0.0]:
            return prod
        return ctx.add(prod, eval_recursive(r))

    return eval_recursive(coeffs)


def frame_base_mask(frame: int, indices: Sequence[int],
                    value: float = 1.0) -> np.ndarray:
    """One frame of a mask: ``value`` at the given in-frame indices."""
    base = np.zeros(frame)
    for index in indices:
        if not 0 <= index < frame:
            raise ValueError(f"mask index {index} outside frame {frame}")
        base[index] = value
    return base


def segment_reduce_broadcast(ctx, h, span: int, starts: Sequence[int],
                             scale: float, tag: str, bias_at_starts=None):
    """Sum ``span`` consecutive slots from each start, scale, re-broadcast.

    The workhorse of LayerNorm/Softmax/attention reductions: one
    rotate-and-sum tree, one mask multiply (this is where the level
    goes), an optional plaintext bias at the segment starts, then a
    doubling broadcast that replicates each start's value across its
    segment.  Slots outside the masked segments come back exactly zero,
    which is what keeps junk in padded lane tails from ever reaching a
    polynomial evaluation.
    """
    frame = ctx.spec.frame
    t = ctx.segment_sum(h, span)
    t = ctx.mul_vec(t, frame_base_mask(frame, starts, scale), f"{tag}.mask")
    if bias_at_starts is not None:
        t = ctx.add_vec(t, frame_base_mask(frame, starts, bias_at_starts),
                        f"{tag}.bias")
    shift = 1
    while shift < span:
        t = ctx.add(t, ctx.rotate(t, frame - shift))
        shift <<= 1
    return t


# --------------------------------------------------------------------------- #
# Driving a model through a builder


def run_model(ctx, model, h):
    """Walk the model and close the trace with a terminal stage event."""
    out = model.lower(ctx, h)
    ctx.stage([out], "output")
    return out


@dataclass
class LoweredModel:
    """A model lowered to a :class:`CinnamonProgram` plus its metadata."""

    model: object
    program: CinnamonProgram
    params: object
    spec: PackingSpec
    plan: DepthPlan
    plaintext_values: Dict[str, np.ndarray] = field(repr=False)
    input_name: str = "x"
    output_name: str = "y"

    @property
    def rotations(self) -> int:
        return self.program.count("rotate")

    def bind_plaintexts(self, slot_count: int) -> Dict[str, np.ndarray]:
        """Tile the frame-periodic plaintext bases out to a ring's slots."""
        frame = self.spec.frame
        if slot_count % frame:
            raise ValueError(
                f"frame {frame} must divide {slot_count} slots")
        reps = slot_count // frame
        return {name: np.tile(base, reps)
                for name, base in self.plaintext_values.items()}


def lower(model, params, *, bootstrap_plan=None, input_level: int = None,
          floor: int = DEFAULT_FLOOR) -> LoweredModel:
    """Lower a model to a Cinnamon program for the given parameter set.

    Without ``bootstrap_plan`` the program must fit the parameter chain
    whole (``input_level`` defaults to exactly the model's depth plus the
    ``floor`` — the deep-chain functional mode used for parity testing);
    with a :class:`~repro.core.ir.bootstrap_graph.BootstrapPlan`,
    ``input_level`` defaults to the plan's output level (steady-state
    serving) and refreshes are placed automatically wherever the
    remaining budget runs short.
    """
    slot_count = params.slot_count
    spec = select_packing(model, slot_count)

    # Pass 1: depth trace at a level no real chain reaches.
    scratch = CinnamonProgram(f"{model.name}-trace", level=_DRY_LEVEL)
    dry = DslLowering(spec, scratch)
    run_model(dry, model, scratch.input("x"))
    trace = dry.trace

    total_depth = trace[0].level - trace[-1].level
    if bootstrap_plan is None:
        output_level = None
        if input_level is None:
            input_level = total_depth + floor
        if input_level > params.max_level:
            raise DepthBudgetError(
                f"model {model.name!r} needs {input_level} levels but the "
                f"parameter chain has {params.max_level}; pass a "
                f"bootstrap_plan or deepen the chain")
    else:
        output_level = bootstrap_plan.output_level
        if bootstrap_plan.top_level > params.max_level:
            raise DepthBudgetError(
                f"bootstrap plan {bootstrap_plan.name!r} raises to level "
                f"{bootstrap_plan.top_level} but the chain has "
                f"{params.max_level}")
        if input_level is None:
            input_level = min(output_level, params.max_level)
    plan = place_bootstraps(trace, input_level, output_level, floor)

    # Pass 2: emission with the plan's refreshes.
    program = CinnamonProgram(
        model.name, level=input_level,
        bootstrap_output_level=output_level or input_level)
    emitter = DslLowering(spec, program, plan=plan)
    out = run_model(emitter, model, program.input("x"))
    program.output("y", out)

    if emitter.bootstraps != plan.bootstrap_count:
        raise AssertionError(
            f"emitted {emitter.bootstraps} bootstraps but the plan "
            f"scheduled {plan.bootstrap_count}")
    return LoweredModel(
        model=model, program=program, params=params, spec=spec, plan=plan,
        plaintext_values=emitter.plaintext_values)
