"""Executable builders for the paper's evaluation models.

Reduced-dimension versions of the three workloads Cinnamon evaluates —
ResNet-20, HELR logistic regression, and a BERT encoder block — built
from :mod:`repro.nn.layers` with seeded random weights.  "Reduced" means
smaller images/channel counts/model dims so the functional CKKS parity
run stays tractable; the *structure* (layer kinds, depth profile,
rotation patterns) matches the full-size models, which is what the
architectural simulations care about.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .layers import (
    Conv2d,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    Model,
    Residual,
    SelfAttention,
    Sequential,
    gelu,
    relu,
    sigmoid,
)

MODEL_NAMES = ("nn-helr", "nn-resnet20", "nn-bert-encoder")


def build_helr(features: int = 16, batch: int = 8, seed: int = 7) -> Model:
    """HELR's per-step scoring: one linear + degree-7 sigmoid, batched
    ``batch`` samples across the lanes."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(1, features)) / math.sqrt(features)
    bias = 0.1 * rng.normal(size=(1,))
    return Model("nn-helr",
                 [Linear(weight, bias, name="score"),
                  sigmoid(1, degree=7, bound=8.0)],
                 lanes=batch)


def build_resnet20(image: int = 8, channels: Sequence[int] = (2, 4, 8),
                   classes: int = 10, blocks_per_stage: int = 3,
                   seed: int = 11, relu_degree: int = 4,
                   relu_bound: float = 4.0) -> Model:
    """ResNet-20 at reduced dims: 1 stem + 3 stages of ``blocks_per_stage``
    blocks (first block of stages 2+ is a stride-2 transition without a
    skip; the rest are residual), global average pool, and a classifier.

    With the defaults this is 19 convolutions + 1 linear — the full
    ResNet-20 layer count — on an ``image x image`` input.

    Each conv is calibrated on a seeded input batch so pre-activation
    peaks stay ~1 (the usual batch-norm folding trained FHE ResNets rely
    on): 20 layers of raw He-initialized convs decay the signal by ~5
    orders of magnitude, which drops it below the CKKS noise floor.
    """
    channels = tuple(channels)
    rng = np.random.default_rng(seed)
    calib = np.random.default_rng(seed + 1).uniform(
        -0.5, 0.5, size=(8, image * image))

    def conv(x_cal, out_ch, in_ch, hw, stride=1, name="conv", target=1.0):
        fan_in = in_ch * 9
        w = rng.normal(size=(out_ch, in_ch, 3, 3)) / math.sqrt(fan_in)
        c = Conv2d(w, hw, hw, stride=stride, name=name)
        peak = np.abs(c.reference(x_cal)).max()
        if peak > 0:
            c = Conv2d(w * (target / peak), hw, hw, stride=stride, name=name)
        return c, c.reference(x_cal)

    def act(ch: int, hw: int, name: str):
        return relu(ch * hw * hw, degree=relu_degree, bound=relu_bound,
                    name=name)

    hw = image
    layers = []

    def push(layer):
        nonlocal calib
        layers.append(layer)
        calib = layer.reference(calib)

    stem, _ = conv(calib, channels[0], 1, hw, name="stem")
    push(stem)
    push(act(channels[0], hw, "stem.relu"))
    for s, ch in enumerate(channels):
        for b in range(blocks_per_stage):
            tag = f"s{s + 1}b{b + 1}"
            if b == 0 and s > 0:
                # Stride-2 transition: downsample + channel double, no skip.
                down, _ = conv(calib, ch, channels[s - 1], hw, stride=2,
                               name=f"{tag}.down")
                push(down)
                hw //= 2
                push(act(ch, hw, f"{tag}.relu1"))
                conv2, _ = conv(calib, ch, ch, hw, name=f"{tag}.conv2")
                push(conv2)
                push(act(ch, hw, f"{tag}.relu2"))
            else:
                conv1, mid = conv(calib, ch, ch, hw, name=f"{tag}.conv1")
                relu1 = act(ch, hw, f"{tag}.relu1")
                mid = relu1.reference(mid)
                conv2, _ = conv(mid, ch, ch, hw, name=f"{tag}.conv2")
                body = Sequential([conv1, relu1, conv2], name=f"{tag}.body")
                push(Residual(body, name=f"{tag}"))
                push(act(ch, hw, f"{tag}.relu2"))
    spatial = hw * hw
    pool = GlobalAvgPool(channels[-1], spatial)
    push(pool)
    fc = rng.normal(size=(classes, channels[-1])) / math.sqrt(channels[-1])
    peak = np.abs(calib @ fc.T).max()
    layers.append(Linear(fc / max(peak, 1e-12), name="classifier"))
    return Model("nn-resnet20", layers, lanes=1)


def build_bert_encoder(d_model: int = 16, seq: int = 4, num_heads: int = 2,
                       d_ff: int = 32, seed: int = 13) -> Model:
    """One post-LN BERT encoder block: attention and MLP residual
    branches, each followed by an approximate LayerNorm."""
    rng = np.random.default_rng(seed)

    def proj(out_w: int, in_w: int) -> np.ndarray:
        return rng.normal(size=(out_w, in_w)) / math.sqrt(in_w)

    attn = SelfAttention(
        d_model, num_heads, seq,
        wq=proj(d_model, d_model), wk=proj(d_model, d_model),
        wv=proj(d_model, d_model), wo=proj(d_model, d_model),
        name="attn")
    mlp = Sequential(
        [Linear(proj(d_ff, d_model), 0.1 * rng.normal(size=(d_ff,)),
                name="ff1"),
         gelu(d_ff, degree=7, bound=5.0),
         Linear(proj(d_model, d_ff), 0.1 * rng.normal(size=(d_model,)),
                name="ff2")],
        name="mlp")
    return Model(
        "nn-bert-encoder",
        [Residual(attn, name="attn.res"),
         LayerNorm(d_model, gamma=1.0 + 0.1 * rng.normal(size=(d_model,)),
                   beta=0.1 * rng.normal(size=(d_model,)), name="ln1"),
         Residual(mlp, name="mlp.res"),
         LayerNorm(d_model, gamma=1.0 + 0.1 * rng.normal(size=(d_model,)),
                   beta=0.1 * rng.normal(size=(d_model,)), name="ln2")],
        lanes=seq)


def build_model(name: str, **overrides) -> Model:
    """Builder registry keyed by the canonical model names."""
    builders = {
        "nn-helr": build_helr,
        "nn-resnet20": build_resnet20,
        "nn-bert-encoder": build_bert_encoder,
    }
    if name not in builders:
        raise ValueError(
            f"unknown nn model {name!r} (expected one of {MODEL_NAMES})")
    return builders[name](**overrides)


def sample_input(model: Model, seed: int = 0,
                 scale: float = 0.5) -> np.ndarray:
    """A seeded ``(lanes, in_width)`` input in the models' calibrated
    range."""
    rng = np.random.default_rng(seed)
    return scale * rng.uniform(-1.0, 1.0,
                               size=(model.lanes, model.in_width))
