"""End-to-end encrypted execution of lowered models.

The parity path runs the *whole* stack: model -> DSL program
(:func:`repro.nn.lower.lower`) -> Cinnamon compiler (via the
``repro.compile`` facade and its :class:`~repro.runtime.CinnamonSession`
cache) -> ISA emulator on real RNS-CKKS limb data -> decrypt and unpack.
Nothing is mocked; the only difference from the paper's hardware is that
the ISA executes on numpy instead of a Cinnamon chip.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fhe.evaluator import CKKSContext
from ..fhe.packing import pack_lanes, unpack_lane
from ..fhe.params import CKKSParams, make_params
from .lower import LoweredModel, PackingSpec


def nn_params(levels: int, ring_degree: int = 256, **kwargs) -> CKKSParams:
    """Functional parameters sized for deep bootstrap-free model runs.

    ``make_params``' default extension basis covers contiguous
    ``num_digits`` keyswitch digits (``ceil(levels / num_digits)`` limbs);
    under the multi-chip modular partition a digit holds up to
    ``ceil(level / 2)`` limbs, and an extension product smaller than a
    digit product turns keyswitch noise from negligible into catastrophic.
    Size the extension basis for the worst digit instead (31-bit extension
    primes vs <=29-bit chain primes keeps the margin).
    """
    kwargs.setdefault("extension_count", (levels + 1) // 2 + 1)
    return make_params(ring_degree=ring_degree, levels=levels, **kwargs)


def pack_input(x: np.ndarray, spec: PackingSpec,
               slot_count: int) -> np.ndarray:
    """Lay a ``(lanes, width)`` input out as the model's slot frame."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if x.shape[0] != spec.lanes:
        raise ValueError(
            f"input has {x.shape[0]} lanes but the model packs {spec.lanes}")
    return pack_lanes(list(x), spec.block, slot_count)

def unpack_output(values: np.ndarray, spec: PackingSpec,
                  width: int) -> np.ndarray:
    """Read the ``(lanes, width)`` result back out of decoded slots."""
    return np.stack([unpack_lane(values, lane, spec.block, width)
                     for lane in range(spec.lanes)])


def encrypted_forward(lowered: LoweredModel, x: np.ndarray,
                      context: Optional[CKKSContext] = None, *,
                      machine=2, session=None) -> np.ndarray:
    """Compile, emulate, and decrypt one encrypted forward pass.

    ``lowered`` must have been produced against functional
    :class:`~repro.fhe.CKKSParams` (deep enough to run bootstrap-free —
    :func:`repro.nn.lower.lower` sizes ``input_level`` to the model's
    exact depth).  Returns the ``(lanes, out_width)`` plaintext result,
    comparable to ``lowered.model.reference(x)``.
    """
    import repro

    params = lowered.params
    if context is None:
        context = CKKSContext(params)
    elif context.params is not params:
        raise ValueError("context was built for different parameters")
    compiled = repro.compile(lowered.program, params, machine=machine,
                             session=session)
    packed = pack_input(x, lowered.spec, params.slot_count)
    ct = context.encrypt_values(packed, level=lowered.plan.input_level)
    outputs = compiled.emulate(
        {lowered.input_name: ct}, context=context,
        plaintexts=lowered.bind_plaintexts(params.slot_count))
    decoded = context.decrypt_values(outputs[lowered.output_name]).real
    return unpack_output(decoded, lowered.spec, lowered.model.out_width)
