"""Machine configurations (Section 5 / 6.1).

A Cinnamon chip: four 256-lane compute clusters at 1 GHz, a 56 MB vector
register file (224 limb registers at N = 64K), four HBM2E stacks totalling
2 TB/s, and two 256 GB/s network PHYs.  ``CINNAMON_M`` is the scaled-up
monolithic chip of Section 6.1 (224 MB register file, 8 clusters, doubled
NTT/transpose/BCU resources).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Union


@dataclass(frozen=True)
class ChipConfig:
    """Per-chip microarchitectural parameters."""

    name: str = "cinnamon"
    clock_ghz: float = 1.0
    clusters: int = 4
    lanes_per_cluster: int = 256
    vector_length: int = 65536          # N: elements per limb register
    word_bytes: int = 4                  # 28-bit words in 4 B lanes
    register_file_mb: float = 56.0
    hbm_gbps: float = 2048.0             # 4 x 512 GB/s HBM2E
    link_gbps: float = 512.0             # 2 x 256 GB/s network PHYs
    # Functional-unit counts (chip-wide; Table 1's 2x add/mul + 1x rest).
    fu_counts: Dict[str, int] = field(default_factory=lambda: {
        "ntt": 1, "auto": 1, "add": 2, "mul": 2, "bconv": 1, "rsv": 1,
        "prng": 2,
    })
    bconv_lanes_per_cluster: int = 128   # Section 4.7's space-optimized BCU
    bconv_max_inputs: int = 13
    pipeline_latency: int = 40           # fill latency of the vector FUs
    issue_width: int = 4

    @property
    def total_lanes(self) -> int:
        return self.clusters * self.lanes_per_cluster

    @property
    def limb_bytes(self) -> int:
        return self.vector_length * self.word_bytes

    @property
    def registers(self) -> int:
        """Limb registers that fit in the register file."""
        return int(self.register_file_mb * 2**20 // self.limb_bytes)

    def occupancy(self, fu: str) -> int:
        """Cycles one limb occupies a unit of the given FU class."""
        if fu == "bconv":
            lanes = self.clusters * self.bconv_lanes_per_cluster
        else:
            lanes = self.total_lanes
        return max(1, self.vector_length // lanes)

    @property
    def hbm_bytes_per_cycle(self) -> float:
        return self.hbm_gbps / self.clock_ghz

    @property
    def link_bytes_per_cycle(self) -> float:
        return self.link_gbps / self.clock_ghz

    def scaled(self, **changes) -> "ChipConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class MachineConfig:
    """A scale-out machine: chips plus interconnect topology."""

    name: str
    num_chips: int
    chip: ChipConfig
    topology: str = "ring"   # "ring" (<= 8 chips) or "switch"
    hop_latency: int = 50    # per-hop network latency in cycles

    def __post_init__(self):
        if self.topology not in ("ring", "switch"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "ring" and self.num_chips > 8:
            raise ValueError("ring topology supports at most eight chips "
                             "(use the switch for larger machines)")

    @property
    def collective_latency(self) -> int:
        if self.num_chips == 1:
            return 0
        if self.topology == "ring":
            return self.hop_latency * (self.num_chips // 2)
        return 2 * self.hop_latency

    def scaled(self, **chip_changes) -> "MachineConfig":
        return replace(self, chip=self.chip.scaled(**chip_changes))


_CHIP = ChipConfig()

CINNAMON_1 = MachineConfig("Cinnamon-1", 1, _CHIP)
CINNAMON_4 = MachineConfig("Cinnamon-4", 4, _CHIP)
CINNAMON_8 = MachineConfig("Cinnamon-8", 8, _CHIP)
CINNAMON_12 = MachineConfig("Cinnamon-12", 12, _CHIP, topology="switch")

# Section 6.1's monolithic comparison chip: one big die with roughly the
# resources of four Cinnamon chips (224 MB RF, 8 clusters, 2x NTT and
# transpose units, wider BCU, 5x add/mul).
CINNAMON_M_CHIP = ChipConfig(
    name="cinnamon-m",
    clusters=8,
    register_file_mb=224.0,
    hbm_gbps=4096.0,
    fu_counts={"ntt": 2, "auto": 2, "add": 5, "mul": 5, "bconv": 2,
               "rsv": 2, "prng": 4},
    bconv_lanes_per_cluster=128,
    bconv_max_inputs=32,
)
CINNAMON_M = MachineConfig("Cinnamon-M", 1, CINNAMON_M_CHIP)


def config_for(num_chips: int) -> MachineConfig:
    """The standard configuration with ``num_chips`` Cinnamon chips."""
    presets = {1: CINNAMON_1, 4: CINNAMON_4, 8: CINNAMON_8, 12: CINNAMON_12}
    if num_chips in presets:
        return presets[num_chips]
    topology = "ring" if num_chips <= 8 else "switch"
    return MachineConfig(f"Cinnamon-{num_chips}", num_chips, _CHIP,
                         topology=topology)


#: Chip counts a machine can fall back through after losing a die — the
#: paper's deployable configurations, largest first.  Degraded-mode
#: recompilation re-partitions limbs across the next rung that fits the
#: survivors (12 chips with one dead -> 8, 8 -> 4, and so on).
DEGRADE_LADDER = (12, 8, 4, 2, 1)


def degraded_machine(machine, dead_chips: int = 1,
                     ladder=DEGRADE_LADDER) -> MachineConfig:
    """The machine a run falls back to after losing ``dead_chips`` dies.

    Picks the largest ladder rung that the surviving chip count can
    populate.  Raises :class:`ValueError` when no rung fits (the machine
    is out of spares entirely).
    """
    resolved = resolve_machine(machine)
    survivors = resolved.num_chips - dead_chips
    for rung in sorted(ladder, reverse=True):
        if rung <= survivors and rung < resolved.num_chips:
            return config_for(rung)
    raise ValueError(
        f"no degraded configuration fits {survivors} surviving chip(s) "
        f"of {resolved.name} (ladder {tuple(ladder)})")


#: Resources :func:`machine_with` can scale, in Figure 16's order.
MACHINE_RESOURCES = ("register_file", "link_bandwidth", "memory_bandwidth",
                     "vector_width")


def machine_with(machine, resource: str, factor: float) -> "MachineConfig":
    """``machine`` with one chip resource scaled by ``factor``.

    The resource axis of Figure 16's sensitivity sweep and of the
    autotuner's machine dimension (:mod:`repro.tune`): ``resource`` is one
    of :data:`MACHINE_RESOURCES`, ``machine`` is any spec
    :func:`resolve_machine` understands.  ``factor == 1.0`` returns the
    resolved machine unchanged; otherwise the result is renamed
    ``"<name>[<resource>x<factor>]"`` so traces and sim-cache keys
    distinguish it from the stock configuration.
    """
    resolved = resolve_machine(machine)
    if resource not in MACHINE_RESOURCES:
        raise ValueError(
            f"unknown resource {resource!r}; valid choices: "
            + ", ".join(repr(r) for r in MACHINE_RESOURCES))
    if factor <= 0:
        raise ValueError(f"resource factor must be positive, got {factor}")
    if factor == 1.0:
        return resolved
    chip = resolved.chip
    if resource == "register_file":
        scaled = chip.scaled(register_file_mb=chip.register_file_mb * factor)
    elif resource == "link_bandwidth":
        scaled = chip.scaled(link_gbps=chip.link_gbps * factor)
    elif resource == "memory_bandwidth":
        scaled = chip.scaled(hbm_gbps=chip.hbm_gbps * factor)
    else:  # vector_width
        lanes = int(chip.lanes_per_cluster * factor)
        if lanes < 1:
            raise ValueError(
                f"vector_width factor {factor} leaves no lanes per cluster")
        scaled = chip.scaled(lanes_per_cluster=lanes)
    return replace(resolved, chip=scaled,
                   name=f"{resolved.name}[{resource}x{factor:g}]")


MachineSpec = Union["MachineConfig", str, int, None]


def resolve_machine(machine: MachineSpec, *,
                    default_chips: int = None) -> MachineConfig:
    """Resolve any machine specification to a :class:`MachineConfig`.

    Accepted forms (the single spelling rule for compiler options, the
    simulator, and the runtime session):

    * a :class:`MachineConfig` — returned unchanged;
    * an ``int`` chip count — the standard machine of that size;
    * a name string: ``"cinnamon_4"`` / ``"Cinnamon-4"`` / ``"4"`` /
      ``"cinnamon_m"`` (case-insensitive, ``-``/``_`` interchangeable);
    * ``None`` — the standard machine with ``default_chips`` chips.
    """
    if machine is None:
        if default_chips is None:
            raise ValueError("no machine given and no default chip count")
        return config_for(default_chips)
    if isinstance(machine, MachineConfig):
        return machine
    if isinstance(machine, bool):
        raise TypeError("machine spec cannot be a bool")
    if isinstance(machine, int):
        return config_for(machine)
    if isinstance(machine, str):
        norm = machine.strip().lower().replace("_", "-")
        if norm in ("cinnamon-m", "m"):
            return CINNAMON_M
        if norm.startswith("cinnamon-"):
            norm = norm[len("cinnamon-"):]
        if norm.isdigit():
            return config_for(int(norm))
        raise ValueError(
            f"unknown machine name {machine!r} "
            "(expected e.g. 'cinnamon_4', 'cinnamon_m', or a chip count)")
    raise TypeError(f"cannot resolve a machine from {type(machine).__name__}")
