"""Cycle-level simulator for the Cinnamon scale-out architecture.

Consumes the per-chip ISA streams emitted by the compiler and models:

* per-chip pipelined vector functional units (NTT, automorphism, add,
  multiply, BCU, RNS-resolve) with occupancies derived from the vector
  width (Section 5: four 256-lane clusters at 1 GHz);
* HBM bandwidth for loads/stores/spills;
* the ring/switch interconnect with broadcast and aggregation collectives;
* utilization accounting per resource (Figure 15).
"""

from .config import (
    ChipConfig,
    MachineConfig,
    CINNAMON_1,
    CINNAMON_4,
    CINNAMON_8,
    CINNAMON_12,
    CINNAMON_M,
    DEGRADE_LADDER,
    config_for,
    degraded_machine,
    resolve_machine,
)
from .simulator import (
    CycleSimulator,
    SimulationResult,
    SimulationSnapshot,
    SimulatorEngine,
)

__all__ = [
    "ChipConfig",
    "MachineConfig",
    "CINNAMON_1",
    "CINNAMON_4",
    "CINNAMON_8",
    "CINNAMON_12",
    "CINNAMON_M",
    "DEGRADE_LADDER",
    "config_for",
    "degraded_machine",
    "resolve_machine",
    "CycleSimulator",
    "SimulatorEngine",
    "SimulationResult",
    "SimulationSnapshot",
]
