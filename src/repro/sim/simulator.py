"""Dependency-driven cycle simulation of compiled ISA streams.

Model: each chip issues its instruction stream in order (bounded issue
width); an instruction starts when its operand registers are ready and a
unit of its functional-unit class is free, occupies the unit for the op's
vector occupancy, and its result becomes ready a pipeline latency later.
Loads/stores occupy HBM bandwidth; collectives rendezvous all contributing
chips and occupy each participant's network links for the payload the
topology makes it carry.

This is the same abstraction level as the paper's SST-based simulator
(Section 6): per-instruction FU occupancy + bandwidth accounting, not RTL.
"""

from __future__ import annotations

import math
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.isa.instructions import (
    COL, LD, MOV, RCV, SND, ST, VADD, VAUTO, VBCV, VINTT, VMUL, VMULC, VNEG,
    VNTT, VPRNG, VRSV, VSUB,
)
from .config import MachineConfig, resolve_machine

#: Version of the dict layout produced by :meth:`SimulationResult.as_dict`.
#: Bump when keys are renamed/removed so trace consumers can detect drift.
METRICS_SCHEMA_VERSION = 1

_FU_CLASS = {
    VADD: "add",
    VSUB: "add",
    VNEG: "add",
    VMUL: "mul",
    VMULC: "mul",
    VNTT: "ntt",
    VINTT: "ntt",
    VAUTO: "auto",
    VRSV: "rsv",
    VBCV: "bconv",
    VPRNG: "prng",
}


@dataclass
class SimulationResult:
    """Timing and utilization of one program on one machine."""

    machine: str
    cycles: int
    clock_ghz: float
    instructions: int
    fu_busy: Dict[str, float]          # chip-averaged busy cycles per class
    hbm_busy: float
    network_busy: float
    hbm_bytes: int
    network_bytes: int
    per_chip_cycles: Dict[int, int] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def utilization(self) -> Dict[str, float]:
        """Fractional busy time for compute (area-weighted), HBM, network."""
        total = max(1, self.cycles)
        compute = sum(self.fu_busy.values()) / max(1, len(self.fu_busy))
        return {
            "compute": min(1.0, compute / total),
            "memory": min(1.0, self.hbm_busy / total),
            "network": min(1.0, self.network_busy / total),
        }

    def fu_utilization(self) -> Dict[str, float]:
        """Fractional busy time of each functional-unit class."""
        total = max(1, self.cycles)
        return {name: min(1.0, busy / total)
                for name, busy in sorted(self.fu_busy.items())}

    def as_dict(self) -> dict:
        """The stable metrics schema exported into runtime traces.

        Keys are additive across versions; consumers should key off
        ``schema`` (``METRICS_SCHEMA_VERSION``) for layout changes.
        """
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "machine": self.machine,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "clock_ghz": self.clock_ghz,
            "instructions": self.instructions,
            "fu_busy_cycles": {k: v for k, v in sorted(self.fu_busy.items())},
            "fu_utilization": self.fu_utilization(),
            "hbm": {"busy_cycles": self.hbm_busy, "bytes": self.hbm_bytes},
            "network": {"busy_cycles": self.network_busy,
                        "bytes": self.network_bytes},
            "utilization": self.utilization(),
            "per_chip_cycles": {str(cid): cyc for cid, cyc
                                in sorted(self.per_chip_cycles.items())},
        }


class _FuPool:
    """A pool of identical pipelined units; tracks per-unit free time."""

    def __init__(self, count: int):
        self.free_at = [0] * max(1, count)
        self.busy_cycles = 0

    def reserve(self, earliest: int, occupancy: int) -> int:
        index = min(range(len(self.free_at)), key=lambda i: self.free_at[i])
        start = max(earliest, self.free_at[index])
        self.free_at[index] = start + occupancy
        self.busy_cycles += occupancy
        return start


class _Bandwidth:
    """A bandwidth resource serving transfers back-to-back."""

    def __init__(self, bytes_per_cycle: float):
        self.bytes_per_cycle = bytes_per_cycle
        self.free_at = 0
        self.busy_cycles = 0
        self.bytes_moved = 0

    def reserve(self, earliest: int, nbytes: float) -> int:
        duration = int(math.ceil(nbytes / self.bytes_per_cycle))
        start = max(earliest, self.free_at)
        self.free_at = start + duration
        self.busy_cycles += duration
        self.bytes_moved += int(nbytes)
        return start + duration  # completion time


class _ChipState:
    def __init__(self, chip_id: int, stream, config):
        self.id = chip_id
        self.stream = stream
        self.pc = 0
        self.reg_ready: Dict[int, int] = defaultdict(int)
        self.issue_time = 0
        self.fus = {name: _FuPool(count)
                    for name, count in config.fu_counts.items()}
        self.hbm = _Bandwidth(config.hbm_bytes_per_cycle)
        self.link = _Bandwidth(config.link_bytes_per_cycle)
        self.finish = 0

    @property
    def done(self):
        return self.pc >= len(self.stream)


class SimulatorEngine:
    """Simulates one compiled program on one machine configuration.

    This is the implementation class used by the runtime
    (:mod:`repro.runtime`) and :meth:`CompiledProgram.simulate`; the
    legacy :class:`CycleSimulator` name is a deprecated alias.  Accepts
    any machine spec :func:`repro.sim.config.resolve_machine` understands.
    """

    def __init__(self, machine):
        self.machine = resolve_machine(machine)

    # ------------------------------------------------------------------ #

    def run(self, isa_module) -> SimulationResult:
        machine = self.machine
        chip_cfg = machine.chip
        streams = isa_module.streams
        chips = {
            cid: _ChipState(cid, stream, chip_cfg)
            for cid, stream in streams.items()
        }
        # Collective bookkeeping: (cid, ...) -> contribution ready times.
        col_posted: Dict[int, List[int]] = defaultdict(list)
        col_expected: Dict[int, int] = defaultdict(int)
        col_complete: Dict[int, Optional[int]] = {}
        col_bytes: Dict[int, int] = defaultdict(int)
        snd_ready: Dict[int, int] = {}
        rcv_expected: Dict[int, int] = defaultdict(int)
        for stream in streams.values():
            for ins in stream:
                if ins.opcode == COL:
                    col_expected[ins.attrs["cid"]] += 1
                elif ins.opcode == RCV:
                    rcv_expected[ins.attrs["cid"]] += 1

        limb_bytes = chip_cfg.limb_bytes
        occupancies = {
            op: chip_cfg.occupancy(cls) for op, cls in _FU_CLASS.items()
        }
        latency = chip_cfg.pipeline_latency

        # Round-robin over chips, blocking on unresolved collectives,
        # mirroring the emulator's execution discipline.
        instructions = 0
        while True:
            progress = False
            all_done = True
            for chip in chips.values():
                steps = 0
                while not chip.done and steps < 10000:
                    if not self._step(chip, chips, col_posted, col_expected,
                                      col_complete, col_bytes, snd_ready,
                                      occupancies, latency, limb_bytes):
                        break
                    instructions += 1
                    steps += 1
                    progress = True
                all_done = all_done and chip.done
            if all_done:
                break
            if not progress:
                stuck = [(c.id, c.pc) for c in chips.values() if not c.done]
                raise RuntimeError(f"simulation deadlock at {stuck}")

        total_cycles = max(c.finish for c in chips.values())
        n = len(chips)
        fu_busy = defaultdict(float)
        for chip in chips.values():
            for name, pool in chip.fus.items():
                fu_busy[name] += pool.busy_cycles / n
        hbm_busy = sum(c.hbm.busy_cycles for c in chips.values()) / n
        net_busy = sum(c.link.busy_cycles for c in chips.values()) / n
        return SimulationResult(
            machine=machine.name,
            cycles=total_cycles,
            clock_ghz=chip_cfg.clock_ghz,
            instructions=instructions,
            fu_busy=dict(fu_busy),
            hbm_busy=hbm_busy,
            network_busy=net_busy,
            hbm_bytes=sum(c.hbm.bytes_moved for c in chips.values()),
            network_bytes=sum(c.link.bytes_moved for c in chips.values()),
            per_chip_cycles={c.id: c.finish for c in chips.values()},
        )

    # ------------------------------------------------------------------ #

    def _step(self, chip: _ChipState, chips, col_posted, col_expected,
              col_complete, col_bytes, snd_ready, occupancies, latency,
              limb_bytes) -> bool:
        ins = chip.stream[chip.pc]
        op = ins.opcode
        earliest = chip.issue_time
        for reg in ins.srcs:
            earliest = max(earliest, chip.reg_ready[reg])

        if op in _FU_CLASS:
            cls = _FU_CLASS[op]
            pool = chip.fus[cls]
            # For the BCU the stage-1 buffer fill pipelines with the MAC of
            # the previous output limb, so each vbcv is charged only its
            # stage-2 pass (at the BCU's halved lane count).
            occupancy = occupancies[op]
            start = pool.reserve(earliest, occupancy)
            done = start + occupancy + latency
            if ins.dest is not None:
                chip.reg_ready[ins.dest] = done
            chip.finish = max(chip.finish, done)
        elif op == LD:
            done = chip.hbm.reserve(earliest, limb_bytes)
            chip.reg_ready[ins.dest] = done
            chip.finish = max(chip.finish, done)
        elif op == ST:
            done = chip.hbm.reserve(earliest, limb_bytes)
            chip.finish = max(chip.finish, done)
        elif op == SND:
            key = ins.attrs["key"]
            done = chip.link.reserve(earliest, limb_bytes)
            snd_ready[key] = done
            chip.finish = max(chip.finish, done)
        elif op == MOV:
            key = ins.attrs["key"]
            if key not in snd_ready:
                return False
            done = max(earliest, snd_ready.pop(key)) + \
                self.machine.hop_latency
            chip.reg_ready[ins.dest] = done
            chip.finish = max(chip.finish, done)
        elif op == COL:
            cid = ins.attrs["cid"]
            # Contribution: the chip pushes its share onto its links.
            nbytes = len(ins.srcs) * limb_bytes
            done = chip.link.reserve(earliest, nbytes) if nbytes else earliest
            col_posted[cid].append(done)
            # Total payload the collective moves across chip boundaries
            # (limbs_moved from the limb IR), for the receivers' ingress.
            col_bytes[cid] = ins.attrs["bytes"] * limb_bytes
            chip.finish = max(chip.finish, done)
        elif op == RCV:
            cid = ins.attrs["cid"]
            # A receive with no matching collective can never complete;
            # blocking here surfaces it as a deadlock instead of a crash.
            if col_expected[cid] == 0 or \
                    len(col_posted[cid]) < col_expected[cid]:
                return False
            key = (cid, chip.id)
            if key not in col_complete:
                # All contributions posted: this chip pulls its share of
                # the payload off the interconnect through its own links.
                arrive = max(col_posted[cid])
                n = max(1, len(col_posted[cid]))
                # Ring/switch collectives pipeline: each chip's links carry
                # roughly 1/n of the total payload crossing boundaries.
                per_chip = col_bytes[cid] / n
                done = chip.link.reserve(max(earliest, arrive), per_chip)
                col_complete[key] = done + self.machine.collective_latency
            done = max(earliest, col_complete[key])
            chip.reg_ready[ins.dest] = done
            chip.finish = max(chip.finish, done)
        else:
            raise ValueError(f"unknown opcode {op!r}")

        chip.issue_time = max(chip.issue_time + 1, 0)
        chip.pc += 1
        return True


class CycleSimulator(SimulatorEngine):
    """Deprecated alias of :class:`SimulatorEngine`.

    Prefer ``repro.compile(...).simulate(machine)`` or a
    :class:`repro.runtime.CinnamonSession`, which add caching and tracing.
    """

    def __init__(self, machine):
        warnings.warn(
            "CycleSimulator is deprecated; use "
            "repro.compile(...).simulate(machine) or "
            "repro.runtime.CinnamonSession.simulate()",
            DeprecationWarning, stacklevel=2)
        super().__init__(machine)
