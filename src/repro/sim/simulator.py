"""Dependency-driven cycle simulation of compiled ISA streams.

Model: each chip issues its instruction stream in order (bounded issue
width); an instruction starts when its operand registers are ready and a
unit of its functional-unit class is free, occupies the unit for the op's
vector occupancy, and its result becomes ready a pipeline latency later.
Loads/stores occupy HBM bandwidth; collectives rendezvous all contributing
chips and occupy each participant's network links for the payload the
topology makes it carry.

This is the same abstraction level as the paper's SST-based simulator
(Section 6): per-instruction FU occupancy + bandwidth accounting, not RTL.

Machine-level robustness (:mod:`repro.resilience`) hooks in here: a
:class:`~repro.resilience.faults.FaultSchedule` can kill a chip or degrade
a link/cluster at a scheduled cycle (fatal faults raise
:class:`~repro.resilience.faults.ChipFailure` /
:class:`~repro.resilience.faults.LinkFailure` with per-chip progress), the
engine can snapshot its full execution state at a cycle interval
(checkpoint) and resume from such a snapshot, and a wall-clock deadline
turns a hung simulation into a :class:`~repro.resilience.faults.WatchdogTimeout`
instead of a wedged worker thread.
"""

from __future__ import annotations

import math
import time
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.isa.instructions import (
    COL, LD, MOV, RCV, SND, ST, VADD, VAUTO, VBCV, VINTT, VMUL, VMULC, VNEG,
    VNTT, VPRNG, VRSV, VSUB,
)
from ..resilience.faults import (
    CHIP_CRASH, CLUSTER_SLOW, LINK_DEGRADE, LINK_SEVER,
    ChipFailure, FaultSchedule, LinkFailure, MachineFault, WatchdogTimeout,
)
from .config import MachineConfig, resolve_machine

#: Version of the dict layout produced by :meth:`SimulationResult.as_dict`.
#: Bump when keys are renamed/removed so trace consumers can detect drift.
#: (``events``, ``topology`` and per-link ``links`` occupancy were added
#: additively; the version stays 1.)
METRICS_SCHEMA_VERSION = 1

_FU_CLASS = {
    VADD: "add",
    VSUB: "add",
    VNEG: "add",
    VMUL: "mul",
    VMULC: "mul",
    VNTT: "ntt",
    VINTT: "ntt",
    VAUTO: "auto",
    VRSV: "rsv",
    VBCV: "bconv",
    VPRNG: "prng",
}

# Decoded-instruction kinds (first element of a decode tuple).
_K_FU, _K_LD, _K_ST, _K_SND, _K_MOV, _K_COL, _K_RCV = range(7)


def _decode_stream(stream) -> list:
    """Pre-decode one ISA stream for the simulation inner loop.

    Each instruction becomes a flat ``(kind, arg, dest, srcs, extra)``
    tuple — opcode class, collective/send keys, and source registers
    resolved once per module instead of once per simulated instruction.
    ``arg`` is the FU class (``_K_FU``), the send/recv key (``_K_SND`` /
    ``_K_MOV``) or the collective id (``_K_COL`` / ``_K_RCV``); ``extra``
    carries a collective's payload limb count.
    """
    decoded = []
    for ins in stream:
        op = ins.opcode
        cls = _FU_CLASS.get(op)
        srcs = tuple(ins.srcs)
        if cls is not None:
            decoded.append((_K_FU, cls, ins.dest, srcs, None))
        elif op == LD:
            decoded.append((_K_LD, None, ins.dest, srcs, None))
        elif op == ST:
            decoded.append((_K_ST, None, None, srcs, None))
        elif op == SND:
            decoded.append((_K_SND, ins.attrs["key"], None, srcs, None))
        elif op == MOV:
            decoded.append((_K_MOV, ins.attrs["key"], ins.dest, srcs, None))
        elif op == COL:
            decoded.append(
                (_K_COL, ins.attrs["cid"], None, srcs, ins.attrs["bytes"]))
        elif op == RCV:
            decoded.append((_K_RCV, ins.attrs["cid"], ins.dest, srcs, None))
        else:
            raise ValueError(f"unknown opcode {op!r}")
    return decoded


def _decoded_module(isa_module):
    """Decoded streams + collective counts, cached on the module object.

    Returns ``(streams, col_expected, rcv_expected)`` where ``streams``
    maps chip id to the decoded tuple list.  The cache rides on the
    module instance, so it lives exactly as long as the module does and
    repeated simulations (autotuner sweeps, serving) skip the decode.
    """
    cached = getattr(isa_module, "_sim_decoded", None)
    if cached is not None:
        return cached
    streams = {cid: _decode_stream(s)
               for cid, s in isa_module.streams.items()}
    col_expected: Dict[int, int] = defaultdict(int)
    rcv_expected: Dict[int, int] = defaultdict(int)
    for code in streams.values():
        for entry in code:
            if entry[0] == _K_COL:
                col_expected[entry[1]] += 1
            elif entry[0] == _K_RCV:
                rcv_expected[entry[1]] += 1
    cached = (streams, dict(col_expected), dict(rcv_expected))
    try:
        isa_module._sim_decoded = cached
    except Exception:  # immutable/slotted module: decode per run
        pass
    return cached


@dataclass
class SimulationResult:
    """Timing and utilization of one program on one machine."""

    machine: str
    cycles: int
    clock_ghz: float
    instructions: int
    fu_busy: Dict[str, float]          # chip-averaged busy cycles per class
    hbm_busy: float
    network_busy: float
    hbm_bytes: int
    network_bytes: int
    per_chip_cycles: Dict[int, int] = field(default_factory=dict)
    #: Per-network-link accounting (one link resource per chip): busy
    #: cycles and bytes carried, keyed by chip id.  ``topology`` names
    #: the interconnect ("ring"/"switch") so consumers can report ring
    #: vs. switch link utilization.
    link_busy: Dict[int, int] = field(default_factory=dict)
    link_bytes: Dict[int, int] = field(default_factory=dict)
    topology: str = ""
    #: Non-fatal machine events applied during the run (link degradations,
    #: cluster slowdowns) as ``{"kind", "chip", "cycle", "factor"}`` dicts.
    events: List[dict] = field(default_factory=list)
    #: True when the run was cut short by ``max_cycles`` (the autotuner's
    #: low-fidelity rungs); ``cycles``/``instructions`` then cover only
    #: the simulated prefix.
    truncated: bool = False

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def utilization(self) -> Dict[str, float]:
        """Fractional busy time for compute (area-weighted), HBM, network."""
        total = max(1, self.cycles)
        compute = sum(self.fu_busy.values()) / max(1, len(self.fu_busy))
        return {
            "compute": min(1.0, compute / total),
            "memory": min(1.0, self.hbm_busy / total),
            "network": min(1.0, self.network_busy / total),
        }

    def fu_utilization(self) -> Dict[str, float]:
        """Fractional busy time of each functional-unit class."""
        total = max(1, self.cycles)
        return {name: min(1.0, busy / total)
                for name, busy in sorted(self.fu_busy.items())}

    def link_occupancy(self) -> Dict[int, float]:
        """Fractional busy time of each chip's network link."""
        total = max(1, self.cycles)
        return {cid: min(1.0, busy / total)
                for cid, busy in sorted(self.link_busy.items())}

    def as_dict(self) -> dict:
        """The stable metrics schema exported into runtime traces.

        Keys are additive across versions; consumers should key off
        ``schema`` (``METRICS_SCHEMA_VERSION``) for layout changes.
        """
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "schema_version": METRICS_SCHEMA_VERSION,
            "machine": self.machine,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "clock_ghz": self.clock_ghz,
            "instructions": self.instructions,
            "fu_busy_cycles": {k: v for k, v in sorted(self.fu_busy.items())},
            "fu_utilization": self.fu_utilization(),
            "hbm": {"busy_cycles": self.hbm_busy, "bytes": self.hbm_bytes},
            "network": {"busy_cycles": self.network_busy,
                        "bytes": self.network_bytes},
            "utilization": self.utilization(),
            "per_chip_cycles": {str(cid): cyc for cid, cyc
                                in sorted(self.per_chip_cycles.items())},
            "topology": self.topology,
            "links": {
                str(cid): {
                    "busy_cycles": busy,
                    "bytes": self.link_bytes.get(cid, 0),
                    "occupancy": min(1.0, busy / max(1, self.cycles)),
                }
                for cid, busy in sorted(self.link_busy.items())
            },
            "events": list(self.events),
            "truncated": self.truncated,
        }


@dataclass
class SimulationSnapshot:
    """The complete execution state of an in-flight simulation.

    Plain picklable data — per-chip program counters, register ready
    times, functional-unit and bandwidth occupancy, collective
    rendezvous bookkeeping — captured at a checkpoint boundary.  Passing
    it back via ``run(resume_from=...)`` continues the run bit-identically
    to one that was never interrupted (the restore test pins this).
    """

    machine: str
    cycle: int                      # global frontier at capture time
    instructions: int
    chips: Dict[int, dict]          # per-chip mutable state
    col_posted: Dict[int, List[int]]
    col_complete: Dict[tuple, Optional[int]]
    col_bytes: Dict[int, int]
    snd_ready: Dict[int, int]
    events: List[dict] = field(default_factory=list)
    applied_faults: List[tuple] = field(default_factory=list)

    @property
    def frontier(self) -> Dict[int, int]:
        """Instruction frontier: chip id -> next program counter."""
        return {cid: state["pc"] for cid, state in self.chips.items()}


class _FuPool:
    """A pool of identical pipelined units; tracks per-unit free time."""

    def __init__(self, count: int):
        self.free_at = [0] * max(1, count)
        self.busy_cycles = 0

    def reserve(self, earliest: int, occupancy: int) -> int:
        index = min(range(len(self.free_at)), key=lambda i: self.free_at[i])
        start = max(earliest, self.free_at[index])
        self.free_at[index] = start + occupancy
        self.busy_cycles += occupancy
        return start


class _Bandwidth:
    """A bandwidth resource serving transfers back-to-back."""

    def __init__(self, bytes_per_cycle: float):
        self.bytes_per_cycle = bytes_per_cycle
        self.free_at = 0
        self.busy_cycles = 0
        self.bytes_moved = 0

    def reserve(self, earliest: int, nbytes: float) -> int:
        duration = int(math.ceil(nbytes / self.bytes_per_cycle))
        start = max(earliest, self.free_at)
        self.free_at = start + duration
        self.busy_cycles += duration
        self.bytes_moved += int(nbytes)
        return start + duration  # completion time

    def state(self) -> dict:
        return {"bytes_per_cycle": self.bytes_per_cycle,
                "free_at": self.free_at, "busy_cycles": self.busy_cycles,
                "bytes_moved": self.bytes_moved}

    def restore(self, state: dict) -> None:
        self.bytes_per_cycle = state["bytes_per_cycle"]
        self.free_at = state["free_at"]
        self.busy_cycles = state["busy_cycles"]
        self.bytes_moved = state["bytes_moved"]


class _ChipState:
    def __init__(self, chip_id: int, stream, code, config):
        self.id = chip_id
        self.stream = stream
        self.code = code                 # decoded tuples, same indexing
        self.pc = 0
        self.reg_ready: Dict[int, int] = defaultdict(int)
        self.issue_time = 0
        self.fus = {name: _FuPool(count)
                    for name, count in config.fu_counts.items()}
        self.hbm = _Bandwidth(config.hbm_bytes_per_cycle)
        self.link = _Bandwidth(config.link_bytes_per_cycle)
        self.finish = 0
        self.occupancy_scale = 1.0   # >1 after a cluster_slow fault

    @property
    def done(self):
        return self.pc >= len(self.stream)

    def state(self) -> dict:
        return {
            "pc": self.pc,
            "issue_time": self.issue_time,
            "finish": self.finish,
            "occupancy_scale": self.occupancy_scale,
            "reg_ready": dict(self.reg_ready),
            "fus": {name: (list(pool.free_at), pool.busy_cycles)
                    for name, pool in self.fus.items()},
            "hbm": self.hbm.state(),
            "link": self.link.state(),
        }

    def restore(self, state: dict) -> None:
        self.pc = state["pc"]
        self.issue_time = state["issue_time"]
        self.finish = state["finish"]
        self.occupancy_scale = state["occupancy_scale"]
        self.reg_ready = defaultdict(int, state["reg_ready"])
        for name, (free_at, busy) in state["fus"].items():
            self.fus[name].free_at = list(free_at)
            self.fus[name].busy_cycles = busy
        self.hbm.restore(state["hbm"])
        self.link.restore(state["link"])


def _fault_key(fault: MachineFault) -> tuple:
    return (fault.kind, fault.chip, fault.cycle, fault.factor)


class SimulatorEngine:
    """Simulates one compiled program on one machine configuration.

    This is the implementation class used by the runtime
    (:mod:`repro.runtime`) and :meth:`CompiledProgram.simulate`; the
    legacy :class:`CycleSimulator` name is a deprecated alias.  Accepts
    any machine spec :func:`repro.sim.config.resolve_machine` understands.
    """

    def __init__(self, machine):
        self.machine = resolve_machine(machine)

    # ------------------------------------------------------------------ #

    def run(self, isa_module, *,
            fault_schedule: Optional[FaultSchedule] = None,
            checkpoint_interval: Optional[int] = None,
            checkpoint_hook: Optional[Callable[[SimulationSnapshot], None]]
            = None,
            resume_from: Optional[SimulationSnapshot] = None,
            deadline_s: Optional[float] = None,
            max_cycles: Optional[int] = None) -> SimulationResult:
        """Simulate ``isa_module``; optionally faulted/checkpointed.

        * ``fault_schedule`` — machine faults to apply; fatal ones raise
          :class:`ChipFailure`/:class:`LinkFailure` mid-run.
        * ``checkpoint_interval`` + ``checkpoint_hook`` — every time the
          global cycle frontier crosses a multiple of the interval, a
          :class:`SimulationSnapshot` is passed to the hook.
        * ``resume_from`` — continue a previous run from its snapshot
          (must be the same machine and program shape).
        * ``deadline_s`` — wall-clock budget; exceeded -> raise
          :class:`WatchdogTimeout` (cooperative cancellation between
          simulation rounds, so the worker thread exits cleanly).
        * ``max_cycles`` — stop once the global cycle frontier crosses
          this many simulated cycles and return the partial result with
          ``truncated=True`` (the autotuner's cheap low-fidelity rungs;
          callers extrapolate from the retired-instruction fraction).
        """
        machine = self.machine
        chip_cfg = machine.chip
        streams = isa_module.streams
        decoded, col_expected, rcv_expected = _decoded_module(isa_module)
        chips = {
            cid: _ChipState(cid, stream, decoded[cid], chip_cfg)
            for cid, stream in streams.items()
        }
        # Collective bookkeeping: (cid, ...) -> contribution ready times.
        col_posted: Dict[int, List[int]] = defaultdict(list)
        col_complete: Dict[tuple, Optional[int]] = {}
        col_bytes: Dict[int, int] = defaultdict(int)
        snd_ready: Dict[int, int] = {}

        events: List[dict] = []
        applied: set = set()
        instructions = 0
        if resume_from is not None:
            if resume_from.machine != machine.name:
                raise ValueError(
                    f"snapshot was taken on {resume_from.machine!r}, "
                    f"cannot resume on {machine.name!r}")
            if set(resume_from.chips) != set(chips):
                raise ValueError("snapshot chip set does not match program")
            for cid, state in resume_from.chips.items():
                chips[cid].restore(state)
            col_posted = defaultdict(
                list, {k: list(v) for k, v in resume_from.col_posted.items()})
            col_complete = dict(resume_from.col_complete)
            col_bytes = defaultdict(int, resume_from.col_bytes)
            snd_ready = dict(resume_from.snd_ready)
            events = list(resume_from.events)
            applied = set(map(tuple, resume_from.applied_faults))
            instructions = resume_from.instructions

        pending_faults: List[MachineFault] = []
        if fault_schedule is not None:
            pending_faults = [f for f in fault_schedule.faults
                              if _fault_key(f) not in applied]

        limb_bytes = chip_cfg.limb_bytes
        occupancies = {
            cls: chip_cfg.occupancy(cls) for cls in set(_FU_CLASS.values())
        }
        latency = chip_cfg.pipeline_latency
        started_wall = time.monotonic()
        next_checkpoint = None
        if checkpoint_interval:
            next_checkpoint = checkpoint_interval
            if resume_from is not None:
                next_checkpoint = (
                    (resume_from.cycle // checkpoint_interval) + 1
                ) * checkpoint_interval

        def frontier_cycle() -> int:
            active = [c.finish for c in chips.values() if not c.done]
            return min(active) if active else max(
                (c.finish for c in chips.values()), default=0)

        def apply_faults(chip: Optional[_ChipState], now: int) -> None:
            """Fire every pending fault due at ``now`` (for ``chip`` or,
            with ``chip=None``, for any chip — the end-of-round sweep that
            catches blocked/idle victims)."""
            for fault in list(pending_faults):
                if fault.cycle > now:
                    continue
                if chip is not None and fault.chip != chip.id:
                    continue
                if fault.chip not in chips:
                    pending_faults.remove(fault)
                    continue
                pending_faults.remove(fault)
                applied.add(_fault_key(fault))
                victim = chips[fault.chip]
                if fault.kind == LINK_DEGRADE:
                    victim.link.bytes_per_cycle = max(
                        1e-9, victim.link.bytes_per_cycle * fault.factor)
                    events.append({"kind": fault.kind, "chip": fault.chip,
                                   "cycle": fault.cycle,
                                   "factor": fault.factor})
                elif fault.kind == CLUSTER_SLOW:
                    victim.occupancy_scale *= fault.factor
                    events.append({"kind": fault.kind, "chip": fault.chip,
                                   "cycle": fault.cycle,
                                   "factor": fault.factor})
                else:
                    exc_cls = (ChipFailure if fault.kind == CHIP_CRASH
                               else LinkFailure)
                    raise exc_cls(
                        f"{fault.kind} on chip {fault.chip} of "
                        f"{machine.name} at cycle {fault.cycle}",
                        chip=fault.chip, cycle=fault.cycle,
                        machine=machine.name,
                        progress={c.id: c.pc for c in chips.values()},
                        per_chip_cycles={c.id: c.finish
                                         for c in chips.values()},
                        fault=fault)

        # Round-robin over chips, blocking on unresolved collectives,
        # mirroring the emulator's execution discipline.
        while True:
            progress = False
            all_done = True
            for chip in chips.values():
                steps = 0
                while not chip.done and steps < 10000:
                    if pending_faults:
                        apply_faults(chip, chip.finish)
                    if not self._step(chip, chips, col_posted, col_expected,
                                      col_complete, col_bytes, snd_ready,
                                      occupancies, latency, limb_bytes):
                        break
                    instructions += 1
                    steps += 1
                    progress = True
                all_done = all_done and chip.done
            now = frontier_cycle()
            if pending_faults:
                # Sweep for victims that are blocked or already done
                # locally while the rest of the machine crossed the
                # fault cycle.
                apply_faults(None, now)
            if next_checkpoint is not None and checkpoint_hook is not None \
                    and now >= next_checkpoint:
                snapshot = self._snapshot(chips, col_posted, col_complete,
                                          col_bytes, snd_ready, events,
                                          applied, instructions, now)
                checkpoint_hook(snapshot)
                while next_checkpoint <= now:
                    next_checkpoint += checkpoint_interval
            if deadline_s is not None:
                elapsed = time.monotonic() - started_wall
                if elapsed > deadline_s:
                    raise WatchdogTimeout(
                        f"simulation on {machine.name} exceeded its "
                        f"{deadline_s:.3f}s deadline after {elapsed:.3f}s",
                        deadline_s=deadline_s, elapsed_s=elapsed,
                        machine=machine.name)
            if all_done:
                break
            if max_cycles is not None and now >= max_cycles:
                break
            if not progress:
                stuck = [(c.id, c.pc) for c in chips.values() if not c.done]
                raise RuntimeError(f"simulation deadlock at {stuck}")

        truncated = not all(c.done for c in chips.values())
        total_cycles = (frontier_cycle() if truncated
                        else max(c.finish for c in chips.values()))
        n = len(chips)
        fu_busy = defaultdict(float)
        for chip in chips.values():
            for name, pool in chip.fus.items():
                fu_busy[name] += pool.busy_cycles / n
        hbm_busy = sum(c.hbm.busy_cycles for c in chips.values()) / n
        net_busy = sum(c.link.busy_cycles for c in chips.values()) / n
        return SimulationResult(
            machine=machine.name,
            cycles=total_cycles,
            clock_ghz=chip_cfg.clock_ghz,
            instructions=instructions,
            fu_busy=dict(fu_busy),
            hbm_busy=hbm_busy,
            network_busy=net_busy,
            hbm_bytes=sum(c.hbm.bytes_moved for c in chips.values()),
            network_bytes=sum(c.link.bytes_moved for c in chips.values()),
            per_chip_cycles={c.id: c.finish for c in chips.values()},
            link_busy={c.id: c.link.busy_cycles for c in chips.values()},
            link_bytes={c.id: c.link.bytes_moved for c in chips.values()},
            topology=machine.topology,
            events=events,
            truncated=truncated,
        )

    # ------------------------------------------------------------------ #

    def _snapshot(self, chips, col_posted, col_complete, col_bytes,
                  snd_ready, events, applied, instructions,
                  cycle: int) -> SimulationSnapshot:
        return SimulationSnapshot(
            machine=self.machine.name,
            cycle=cycle,
            instructions=instructions,
            chips={cid: chip.state() for cid, chip in chips.items()},
            col_posted={k: list(v) for k, v in col_posted.items()},
            col_complete=dict(col_complete),
            col_bytes=dict(col_bytes),
            snd_ready=dict(snd_ready),
            events=list(events),
            applied_faults=sorted(applied),
        )

    # ------------------------------------------------------------------ #

    def _step(self, chip: _ChipState, chips, col_posted, col_expected,
              col_complete, col_bytes, snd_ready, occupancies, latency,
              limb_bytes) -> bool:
        kind, arg, dest, srcs, extra = chip.code[chip.pc]
        reg_ready = chip.reg_ready
        earliest = chip.issue_time
        for reg in srcs:
            ready = reg_ready[reg]
            if ready > earliest:
                earliest = ready

        if kind == _K_FU:
            pool = chip.fus[arg]
            # For the BCU the stage-1 buffer fill pipelines with the MAC of
            # the previous output limb, so each vbcv is charged only its
            # stage-2 pass (at the BCU's halved lane count).
            occupancy = occupancies[arg]
            if chip.occupancy_scale != 1.0:
                occupancy = max(1, int(math.ceil(
                    occupancy * chip.occupancy_scale)))
            start = pool.reserve(earliest, occupancy)
            done = start + occupancy + latency
            if dest is not None:
                reg_ready[dest] = done
        elif kind == _K_LD:
            done = chip.hbm.reserve(earliest, limb_bytes)
            reg_ready[dest] = done
        elif kind == _K_ST:
            done = chip.hbm.reserve(earliest, limb_bytes)
        elif kind == _K_SND:
            done = chip.link.reserve(earliest, limb_bytes)
            snd_ready[arg] = done
        elif kind == _K_MOV:
            if arg not in snd_ready:
                return False
            done = max(earliest, snd_ready.pop(arg)) + \
                self.machine.hop_latency
            reg_ready[dest] = done
        elif kind == _K_COL:
            # Contribution: the chip pushes its share onto its links.
            nbytes = len(srcs) * limb_bytes
            done = chip.link.reserve(earliest, nbytes) if nbytes else earliest
            col_posted[arg].append(done)
            # Total payload the collective moves across chip boundaries
            # (limbs_moved from the limb IR), for the receivers' ingress.
            col_bytes[arg] = extra * limb_bytes
        else:  # _K_RCV
            # A receive with no matching collective can never complete;
            # blocking here surfaces it as a deadlock instead of a crash.
            expected = col_expected.get(arg, 0)
            posted = col_posted[arg]
            if expected == 0 or len(posted) < expected:
                return False
            key = (arg, chip.id)
            if key not in col_complete:
                # All contributions posted: this chip pulls its share of
                # the payload off the interconnect through its own links.
                arrive = max(posted)
                n = max(1, len(posted))
                # Ring/switch collectives pipeline: each chip's links carry
                # roughly 1/n of the total payload crossing boundaries.
                per_chip = col_bytes[arg] / n
                done = chip.link.reserve(max(earliest, arrive), per_chip)
                col_complete[key] = done + self.machine.collective_latency
            done = max(earliest, col_complete[key])
            reg_ready[dest] = done

        if done > chip.finish:
            chip.finish = done
        chip.issue_time += 1
        chip.pc += 1
        return True


class CycleSimulator(SimulatorEngine):
    """Deprecated alias of :class:`SimulatorEngine`.

    Prefer ``repro.compile(...).simulate(machine)`` or a
    :class:`repro.runtime.CinnamonSession`, which add caching and tracing.
    """

    def __init__(self, machine):
        warnings.warn(
            "CycleSimulator is deprecated; use "
            "repro.compile(...).simulate(machine) or "
            "repro.runtime.CinnamonSession.simulate()",
            DeprecationWarning, stacklevel=2)
        super().__init__(machine)
