"""Execution trace export for the cycle simulator.

``TracingSimulator`` records per-instruction start/duration events and can
export them as Chrome trace-event JSON (load in ``chrome://tracing`` or
Perfetto): one row per chip and functional unit, showing exactly how NTTs,
base conversions, HBM transfers, and collectives overlap — the visual
counterpart of the utilization numbers in Figure 15.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from .config import MachineConfig
from .simulator import _FU_CLASS, SimulationResult, SimulatorEngine


@dataclass
class TraceEvent:
    chip: int
    lane: str       # FU class, "hbm", or "network"
    name: str
    start: int      # cycles
    duration: int


class TracingSimulator(SimulatorEngine):
    """A :class:`SimulatorEngine` that also records a timeline."""

    def __init__(self, machine: MachineConfig):
        super().__init__(machine)
        self.events: List[TraceEvent] = []

    def run(self, isa_module) -> SimulationResult:
        self.events = []
        self._record = True
        return super().run(isa_module)

    # The base class exposes no event hook; rather than fork its logic we
    # re-derive the timeline from a second pass that mirrors its resource
    # maths per instruction.  For tooling purposes the timeline only needs
    # occupancy intervals, which this reproduces exactly for compute ops.
    def timeline(self, isa_module, limit_per_chip: int = 50000) -> List[TraceEvent]:
        chip_cfg = self.machine.chip
        events: List[TraceEvent] = []
        for chip_id, stream in isa_module.streams.items():
            fu_free: Dict[str, List[int]] = {
                name: [0] * count
                for name, count in chip_cfg.fu_counts.items()
            }
            hbm_free = 0
            reg_ready: Dict[int, int] = {}
            count = 0
            for ins in stream:
                if count >= limit_per_chip:
                    break
                earliest = max((reg_ready.get(r, 0) for r in ins.srcs),
                               default=0)
                if ins.opcode in _FU_CLASS:
                    cls = _FU_CLASS[ins.opcode]
                    units = fu_free[cls]
                    index = min(range(len(units)), key=units.__getitem__)
                    start = max(earliest, units[index])
                    duration = chip_cfg.occupancy(cls)
                    units[index] = start + duration
                    done = start + duration + chip_cfg.pipeline_latency
                    lane = f"{cls}{index}"
                elif ins.opcode in ("ld", "st"):
                    duration = int(chip_cfg.limb_bytes
                                   / chip_cfg.hbm_bytes_per_cycle)
                    start = max(earliest, hbm_free)
                    hbm_free = start + duration
                    done = hbm_free
                    lane = "hbm"
                else:
                    continue  # network timing needs global state; skip
                if ins.dest is not None:
                    reg_ready[ins.dest] = done
                events.append(TraceEvent(chip_id, lane,
                                         ins.opcode, start, duration))
                count += 1
        return events


def to_chrome_trace(events: List[TraceEvent]) -> str:
    """Serialize events as Chrome trace-event JSON (microsecond units)."""
    records = []
    for event in events:
        records.append({
            "name": event.name,
            "ph": "X",
            "ts": event.start,          # 1 cycle -> 1 us in the viewer
            "dur": max(1, event.duration),
            "pid": event.chip,
            "tid": event.lane,
            "cat": "isa",
        })
    return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})


def export_chrome_trace(isa_module, machine: MachineConfig, path: str,
                        limit_per_chip: int = 50000) -> int:
    """Write a Chrome trace for a compiled module; returns event count."""
    simulator = TracingSimulator(machine)
    events = simulator.timeline(isa_module, limit_per_chip=limit_per_chip)
    with open(path, "w") as handle:
        handle.write(to_chrome_trace(events))
    return len(events)
