"""Length-prefixed wire protocol between router and worker processes.

One frame on the wire is::

    MAGIC (4B) | header_len u32 | header JSON | blob_len u32 | blob

The header is a small JSON dict — always carrying ``kind`` — that frames
routing/service metadata (ids, tenant, deadline, trace context).  The
blob is an optional opaque payload: for ``submit`` it is the pickled
``(program, params, machine, options)`` tuple, for ``result`` the
pickled :class:`~repro.serve.request.RequestResult`.  The header records
``crc32`` of the blob so a torn or corrupted payload is detected before
unpickling (same posture as the checkpoint CRC framing in
:mod:`repro.resilience`).

Message kinds
-------------

========== ======== =======================================================
kind       sender   meaning
========== ======== =======================================================
hello      worker   first frame after connect: worker_id + auth token
submit     router   one inference request (blob: program/params/machine)
result     worker   terminal outcome of one submit (blob: RequestResult)
journal    worker   trace rows recorded since the last ship (eager, sent
                    right behind each result so a later worker death
                    cannot orphan an answered request's trace)
ping       router   heartbeat probe
pong       worker   heartbeat answer (carries quick queue stats)
stats      router   request a metrics/trace snapshot
stats_reply worker  metrics snapshot + journal rows since last ask
telemetry  worker   periodic delta-encoded metrics sample (blob: JSON
                    :func:`repro.obs.live.snapshot_delta` payload) —
                    the streaming feed of the live telemetry store;
                    the router's ``stats`` poll stays the fallback
drain      router   stop accepting, finish in-flight, reply ``drained``
drained    worker   drain complete (carries final journal rows)
shutdown   router   exit after this frame
========== ======== =======================================================

Pickle is only ever exchanged between the router and workers it spawned
itself over a loopback socket authenticated by a per-cluster random
token, mirroring :mod:`multiprocessing.connection`'s trust model.

Trust extensions (:mod:`repro.trust`):

* frames may carry an ``auth`` field — an HMAC-SHA256 over the canonical
  header (sans ``auth``) plus the blob, keyed by the cluster token —
  verified when present (:func:`frame_auth`); a mismatch is a
  :class:`ProtocolError`, the frame never reaches pickle;
* ``submit`` headers carry a freshness envelope (``nonce`` /
  ``issued_unix`` / ``seq`` / ``sender``, see
  :class:`repro.trust.freshness.FreshnessEnvelope`) plus the tenant's
  ``key_version``, letting the worker re-check replay and key staleness
  independently of the router;
* bounded reads: :func:`recv_frame` with a socket timeout raises
  :class:`FrameTimeout` when the timeout expires *between* frames (a
  clean boundary — the caller may retry or probe liveness) and
  :class:`ProtocolError` when it expires *mid-frame* (the stream lost
  sync and the connection is unusable).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import pickle
import socket
import struct
import zlib
from typing import Optional, Tuple

#: First bytes of every frame; a mismatch means the peer is not speaking
#: this protocol (or the stream lost sync) and the connection is dead.
MAGIC = b"CNC1"

#: Environment variable carrying the cluster's shared auth token (the
#: router exports it; the worker echoes it in its ``hello`` frame).
TOKEN_ENV = "CINNAMON_CLUSTER_TOKEN"

#: Protocol revision, sent in ``hello`` and checked by the router.
PROTOCOL_VERSION = 1

#: Hard cap on header/blob sizes — a corrupt length prefix must not make
#: us try to allocate gigabytes.
MAX_HEADER_BYTES = 1 << 20
MAX_BLOB_BYTES = 1 << 30

_U32 = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The stream violated the framing contract (bad magic/crc/length)."""


class FrameTimeout(ProtocolError):
    """A bounded read expired at a clean frame boundary — no bytes were
    consumed, the stream is still in sync, and the caller may retry,
    probe liveness, or reconnect."""


class ConnectionClosed(ConnectionError):
    """The peer closed the socket (EOF mid-frame or between frames)."""


# ---------------------------------------------------------------------- #
# Frame authentication

def frame_auth(header: dict, blob: bytes, token: str) -> str:
    """HMAC-SHA256 over the canonical header (sans ``auth``) + blob."""
    payload = {k: v for k, v in header.items() if k != "auth"}
    blob_hdr = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
    mac = hmac.new(token.encode("utf-8"), blob_hdr, hashlib.sha256)
    mac.update(blob)
    return mac.hexdigest()


# ---------------------------------------------------------------------- #
# Framing

def send_frame(sock: socket.socket, header: dict,
               blob: bytes = b"", token: Optional[str] = None) -> None:
    """Serialize and send one frame (thread-unsafe per socket: callers
    serialize writers, see the router's per-worker send lock).

    With ``token``, the frame carries an ``auth`` HMAC binding header
    and blob to the cluster token.
    """
    if blob or token:
        header = dict(header)
    if blob:
        header["crc32"] = zlib.crc32(blob) & 0xFFFFFFFF
    if token:
        header["auth"] = frame_auth(header, blob, token)
    header_bytes = json.dumps(header, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
    frame = b"".join((
        MAGIC,
        _U32.pack(len(header_bytes)),
        header_bytes,
        _U32.pack(len(blob)),
        blob,
    ))
    sock.sendall(frame)


def recv_frame(sock: socket.socket,
               token: Optional[str] = None) -> Tuple[dict, bytes]:
    """Receive one frame; raises :class:`ConnectionClosed` on EOF,
    :class:`FrameTimeout` when a socket timeout expires between frames,
    and :class:`ProtocolError` on framing/CRC/auth violations (including
    a timeout that strikes mid-frame).

    With ``token``, an ``auth`` field is verified when present — frames
    from pre-trust peers (no ``auth``) still pass, tampered ones do not.
    """
    magic = _recv_exact(sock, len(MAGIC), eof_ok=True)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    (header_len,) = _U32.unpack(_recv_exact(sock, 4))
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds cap")
    try:
        header = json.loads(_recv_exact(sock, header_len))
    except ValueError as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header:
        raise ProtocolError("frame header missing 'kind'")
    (blob_len,) = _U32.unpack(_recv_exact(sock, 4))
    if blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(f"blob length {blob_len} exceeds cap")
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    if blob:
        expect = header.get("crc32")
        actual = zlib.crc32(blob) & 0xFFFFFFFF
        if expect != actual:
            raise ProtocolError(
                f"blob crc mismatch (header {expect}, actual {actual})")
    if token is not None and "auth" in header:
        expected = frame_auth(header, blob, token)
        if not hmac.compare_digest(str(header["auth"]), expected):
            raise ProtocolError(
                f"frame auth mismatch on {header.get('kind')!r}")
    return header, blob


def _recv_exact(sock: socket.socket, n: int,
                eof_ok: bool = False) -> bytes:
    """Read exactly ``n`` bytes.  EOF before the first byte raises
    :class:`ConnectionClosed`; EOF mid-read always does (a frame was
    torn), regardless of ``eof_ok``.  A socket timeout before the first
    byte of a frame raises :class:`FrameTimeout` (clean boundary, retry
    is safe); mid-frame it raises :class:`ProtocolError` (stream
    desynchronized)."""
    if n == 0:
        return b""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except socket.timeout:
            if not chunks and eof_ok:
                raise FrameTimeout(
                    "no frame arrived within the read timeout") from None
            got = n - remaining
            raise ProtocolError(
                f"read timed out mid-frame ({got}/{n} bytes)") from None
        if not chunk:
            if chunks or not eof_ok:
                got = n - remaining
                raise ConnectionClosed(
                    f"peer closed mid-frame ({got}/{n} bytes)"
                    if got else "peer closed the connection")
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------- #
# Payload helpers

def pack_submit(request, resolved_options, key: str,
                trace_id: Optional[str] = None,
                parent_span_id: Optional[str] = None,
                envelope=None,
                key_version: Optional[int] = None) -> Tuple[dict, bytes]:
    """Frame one :class:`~repro.serve.request.InferenceRequest`.

    The router ships the *resolved* compiler options (tuning swap already
    applied) so the worker's session computes the identical fingerprint
    and hits the shared disk cache.  ``envelope`` (a
    :class:`~repro.trust.freshness.FreshnessEnvelope`) and
    ``key_version`` ride in the header so the worker can re-check
    freshness and key staleness on its side; the router mints a *fresh*
    envelope per dispatch attempt, so a legitimate failover re-dispatch
    is never mistaken for a replay.
    """
    header = {
        "kind": "submit",
        "request_id": request.request_id,
        "name": request.label,
        "tenant": request.tenant,
        "priority": int(request.priority),
        "deadline_s": request.deadline_s,
        "simulate": request.simulate,
        "tag": request.tag,
        "key": key,
        "tuned": request.tuned,
    }
    if envelope is not None:
        header.update(envelope.as_header_fields())
    if key_version is not None:
        header["key_version"] = int(key_version)
    if trace_id:
        header["trace_id"] = trace_id
        header["parent_span_id"] = parent_span_id
    blob = pickle.dumps(
        (request.program, request.params, request.machine,
         resolved_options),
        pickle.HIGHEST_PROTOCOL)
    return header, blob


def unpack_submit(header: dict, blob: bytes):
    """Inverse of :func:`pack_submit`: returns
    ``(program, params, machine, options)``."""
    return pickle.loads(blob)


def pack_result(result) -> Tuple[dict, bytes]:
    """Frame one RequestResult.  Compiled artifacts and simulator objects
    stay worker-side (they can be ~GB); the result crossing the wire is
    stripped to the outcome + latency + cycle count."""
    slim = type(result)(
        request_id=result.request_id,
        name=result.name,
        status=result.status,
        latency=result.latency,
        attempts=result.attempts,
        shard=result.shard,
        batch_size=result.batch_size,
        cache=result.cache,
        cycles=result.cycles,
        error=result.error,
        cost=result.cost,
    )
    header = {"kind": "result", "request_id": result.request_id,
              "status": str(result.status)}
    return header, pickle.dumps(slim, pickle.HIGHEST_PROTOCOL)


def unpack_result(header: dict, blob: bytes):
    return pickle.loads(blob)


def pack_telemetry(worker_id: str, seq: int, delta: dict,
                   unix: float, inflight: int = 0,
                   queue_depth: int = 0) -> Tuple[dict, bytes]:
    """Frame one streaming telemetry sample: a JSON (never pickled)
    :func:`repro.obs.live.snapshot_delta` payload plus instantaneous
    queue/inflight levels in the header for cheap router-side gauges."""
    header = {
        "kind": "telemetry",
        "worker": worker_id,
        "seq": int(seq),
        "unix": unix,
        "inflight": int(inflight),
        "queue_depth": int(queue_depth),
    }
    blob = json.dumps(delta, separators=(",", ":")).encode("utf-8")
    return header, blob


def unpack_telemetry(header: dict, blob: bytes) -> dict:
    """Inverse of :func:`pack_telemetry`: the delta snapshot dict."""
    if not blob:
        return {}
    try:
        delta = json.loads(blob)
    except ValueError as exc:
        raise ProtocolError(f"unparseable telemetry blob: {exc}") from exc
    if not isinstance(delta, dict):
        raise ProtocolError("telemetry blob is not a JSON object")
    return delta
