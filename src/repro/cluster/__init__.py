"""repro.cluster: multi-process scale-out serving.

Escapes the single-interpreter ceiling of
:class:`~repro.serve.CinnamonServer` by running each serving shard as a
separate *worker process* (its own GIL, its own
:class:`~repro.runtime.session.CinnamonSession`) behind a
:class:`ClusterRouter` front-end that keeps the server's API:

>>> from repro.cluster import ClusterRouter
>>> with ClusterRouter(num_workers=4) as cluster:
...     handle = cluster.submit(InferenceRequest(program, params))
...     result = handle.result(timeout=30)

The pieces, each importable on its own:

* :mod:`~repro.cluster.protocol` — length-prefixed JSON+blob framing;
* :mod:`~repro.cluster.ring` — consistent-hash routing (cache affinity,
  ~1/N remap on membership change);
* :mod:`~repro.cluster.quotas` — per-tenant token buckets + fair-share
  admission on top of the serve-layer queue semantics;
* :mod:`~repro.cluster.worker` — the ``python -m repro.cluster.worker``
  process;
* :mod:`~repro.cluster.autoscaler` — hysteretic scale-up/down policy;
* :mod:`~repro.cluster.merge` — folding per-worker metrics snapshots and
  trace journals into one cluster view.

Workers share one on-disk compile cache and one tuning DB — both safe
for concurrent writers via :mod:`repro.runtime.locking`.

Exports resolve lazily (PEP 562) so ``python -m repro.cluster.worker``
does not import the router (and its serve-layer dependency tree) into
every worker process.
"""

_LAZY_ATTRS = {
    "Autoscaler": ("repro.cluster.autoscaler", "Autoscaler"),
    "AutoscalerState": ("repro.cluster.autoscaler", "AutoscalerState"),
    "ClusterRouter": ("repro.cluster.router", "ClusterRouter"),
    "ClusterWorker": ("repro.cluster.worker", "ClusterWorker"),
    "FairShareQueue": ("repro.cluster.quotas", "FairShareQueue"),
    "HashRing": ("repro.cluster.ring", "HashRing"),
    "QuotaExceededError": ("repro.cluster.quotas", "QuotaExceededError"),
    "TenantQuota": ("repro.cluster.quotas", "TenantQuota"),
    "TokenBucket": ("repro.cluster.quotas", "TokenBucket"),
    "merge_histogram_values": ("repro.cluster.merge",
                               "merge_histogram_values"),
    "merge_journals": ("repro.cluster.merge", "merge_journals"),
    "merge_snapshots": ("repro.cluster.merge", "merge_snapshots"),
    "merged_scalar": ("repro.cluster.merge", "merged_scalar"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.cluster' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = sorted(_LAZY_ATTRS)
