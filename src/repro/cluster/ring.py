"""Consistent-hash ring mapping program fingerprints to workers.

Each worker owns ``vnodes`` points on a 2^64 ring (sha256 of
``"{worker_id}#{replica}"``); a key routes to the first point clockwise
from sha256(key).  The property the cluster cares about: when a worker
joins or leaves, only ~1/N of the key space remaps — every other
fingerprint keeps hitting the worker whose in-memory compile cache is
already warm for it.  (The shared disk cache makes remapping a
disk-hit, not a recompile, but memory affinity is still the fast path.)

``preferred(key, n)`` returns distinct fallbacks in ring order, which is
the router's failover order when the primary worker dies mid-request.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional

#: Points per worker.  More vnodes -> tighter balance; 256 keeps the
#: max per-worker deviation near ±11% at 8 workers (the ±20% balance
#: test in tests/cluster/test_ring.py pins the behavior) at a membership
#: cost of a few hundred microseconds per join/leave.
DEFAULT_VNODES = 256


def _hash64(data: str) -> int:
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over string worker ids."""

    def __init__(self, workers=(), vnodes: int = DEFAULT_VNODES):
        self.vnodes = vnodes
        self._points: List[int] = []        # sorted vnode hashes
        self._owners: Dict[int, str] = {}   # vnode hash -> worker id
        self._workers: Dict[str, List[int]] = {}
        for worker_id in workers:
            self.add(worker_id)

    # ------------------------------------------------------------------ #

    def add(self, worker_id: str) -> None:
        if worker_id in self._workers:
            return
        points = []
        for replica in range(self.vnodes):
            point = _hash64(f"{worker_id}#{replica}")
            # sha256 collisions across distinct labels are not a real
            # concern; skip rather than silently steal an owned point.
            if point in self._owners:
                continue
            self._owners[point] = worker_id
            bisect.insort(self._points, point)
            points.append(point)
        self._workers[worker_id] = points

    def remove(self, worker_id: str) -> None:
        points = self._workers.pop(worker_id, None)
        if not points:
            return
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    # ------------------------------------------------------------------ #

    def owner(self, key: str) -> Optional[str]:
        """The worker owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _hash64(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def preferred(self, key: str, n: Optional[int] = None) -> List[str]:
        """Up to ``n`` distinct workers in ring order from ``key`` — the
        failover sequence (element 0 is :meth:`owner`)."""
        if not self._points:
            return []
        if n is None:
            n = len(self._workers)
        order: List[str] = []
        start = bisect.bisect_right(self._points, _hash64(key))
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            worker_id = self._owners[point]
            if worker_id not in order:
                order.append(worker_id)
                if len(order) >= n:
                    break
        return order

    # ------------------------------------------------------------------ #

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> List[str]:
        return sorted(self._workers)

    def spread(self, keys) -> Dict[str, int]:
        """How many of ``keys`` land on each worker (balance probe)."""
        counts = {worker_id: 0 for worker_id in self._workers}
        for key in keys:
            owner = self.owner(key)
            if owner is not None:
                counts[owner] += 1
        return counts
