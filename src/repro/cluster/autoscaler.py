"""Queue-depth-driven worker autoscaling policy.

Pure decision logic, separated from the router's mechanics so it is
testable without processes: the router's monitor thread feeds one
:class:`AutoscalerState` observation per tick and applies the returned
target.  The policy is deliberately boring and hysteretic:

* **scale up** (by one) when the backlog per live worker exceeds
  ``scale_up_backlog``.  Backlog is the admission-queue depth *plus*
  dispatched-but-unresolved requests beyond the fleet's execution
  slots (``slots_per_worker * workers``) — the router dispatches
  eagerly, so queue depth alone reads zero even when one worker is
  buried under in-flight work;
* **scale down** (by one) only after ``scale_down_ticks`` consecutive
  idle observations (no backlog, inflight below one job per worker) —
  a single quiet tick must not retire a worker the next burst needs;
* never outside ``[min_workers, max_workers]``, and never below one.

Spawning a worker costs a process fork + session warm-up, retiring one
costs a drain cycle — both are orders of magnitude slower than one
request, hence the asymmetric thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AutoscalerState:
    """One observation of the cluster, as seen by the monitor tick."""

    workers: int          # live (connected, non-draining) workers
    queue_depth: int      # admission backlog at the router
    inflight: int         # dispatched, unresolved requests


@dataclass
class Autoscaler:
    """Hysteretic min/max-bounded scaling policy (see module docstring)."""

    min_workers: int = 1
    max_workers: int = 4
    #: Queued requests per live worker that trigger a scale-up.
    scale_up_backlog: float = 4.0
    #: Consecutive idle ticks before one worker is retired.
    scale_down_ticks: int = 10
    #: Concurrent executions one worker absorbs before further
    #: in-flight requests count as backlog (the router sets this to its
    #: ``worker_threads``).
    slots_per_worker: int = 2

    def __post_init__(self):
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers ({self.min_workers}) <= "
                f"max_workers ({self.max_workers})")
        self._idle_ticks = 0

    def decide(self, state: AutoscalerState) -> int:
        """The worker count the cluster should be running after this
        observation (callers clamp spawn/retire to one step per tick)."""
        workers = max(1, state.workers)
        target = min(max(state.workers, self.min_workers),
                     self.max_workers)
        slots = max(1, self.slots_per_worker) * workers
        backlog = state.queue_depth + max(0, state.inflight - slots)
        if backlog >= self.scale_up_backlog * workers:
            self._idle_ticks = 0
            return min(self.max_workers, target + 1)
        idle = state.queue_depth == 0 and state.inflight < workers
        if idle:
            self._idle_ticks += 1
            if (self._idle_ticks >= self.scale_down_ticks
                    and target > self.min_workers):
                self._idle_ticks = 0
                return target - 1
        else:
            self._idle_ticks = 0
        return target
