"""The cluster worker process: one socket, one session, a small pool.

``python -m repro.cluster.worker --connect PORT --worker-id w0`` dials
the router's loopback listener, authenticates with the token the router
exported in ``CINNAMON_CLUSTER_TOKEN``, and then serves frames until the
socket closes or a ``shutdown`` frame arrives:

* ``submit`` frames are handed to a small thread pool (default 2) where
  a :class:`~repro.runtime.session.CinnamonSession` compiles/simulates
  the job and the ``result`` frame goes back under a send lock;
* ``ping`` is answered inline with ``pong`` (carrying inflight depth) so
  heartbeats stay timely while the pool is busy;
* ``stats`` streams back the process's metrics snapshot plus the journal
  rows recorded since the previous ask (a cursor, so nothing is ever
  shipped twice or lost);
* ``drain`` stops accepting new submits, waits out the in-flight jobs,
  and answers ``drained`` with the final stats payload;
* with ``--telemetry-interval-s N``, a daemon thread additionally
  *pushes* delta-encoded metric samples (``telemetry`` frames) every N
  seconds — the streaming feed of the router's live telemetry store
  (:mod:`repro.obs.live`); the ``stats`` poll remains the fallback.

Trace propagation: a ``submit`` carrying ``trace_id``/``parent_span_id``
executes under a re-hydrated :class:`~repro.obs.tracing.Span`, so the
compile/simulate journal rows recorded in *this* process join the
router-side serve row on the same ``trace_id`` (trace schema 6).

The worker trusts its socket because the router spawned it and handed it
a per-cluster random token over the environment — the same trust model
as ``multiprocessing.connection`` — and listens on loopback only.

Robustness & trust (:mod:`repro.trust`):

* reads are *bounded* (``read_timeout_s``), never a blocking-forever
  ``recv`` on a half-open socket: the router heartbeats every ~0.5s, so
  when no frame of any kind has arrived for ``liveness_timeout_s`` the
  connection is presumed half-open and the worker reconnects with
  exponential backoff (re-sending ``hello``); it exits cleanly only
  when the router stays unreachable;
* every frame is sent with (and verified against) the cluster token's
  HMAC (:func:`~repro.cluster.protocol.frame_auth`);
* a ``keys`` frame replaces the worker's metadata-only
  :class:`~repro.trust.keyvault.KeyVault` with the router's signed key
  manifest (verify-then-install), so the worker re-checks each submit's
  ``key_version`` independently — rejecting *revoked* or never-issued
  versions (merely retired ones are left to the router's grace-window
  adjudication, avoiding a mid-rotation race);
* submit freshness envelopes pass a worker-side
  :class:`~repro.trust.freshness.ReplayGuard`, so a replayed frame is
  refused even if it somehow got past the router;
* ``--chaos-chip-crash N`` arms N scripted chip-kill faults
  (:class:`~repro.resilience.FaultSchedule`), one per submit — refunded
  if a run ends before the crash cycle, so every armed fault fires;
  the worker recovers in-process by recompiling for the degrade
  ladder's next rung (mirroring the serve layer's recovery path) so a
  chaos run loses zero legitimate requests.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..obs import tracing
from ..obs.metrics import default_registry
from ..resilience.faults import FaultSchedule, MachineFaultError
from ..runtime.session import CinnamonSession, CompileJob
from ..serve.request import (LatencyBreakdown, RequestResult,
                             RequestStatus, cost_rollup)
from ..sim.config import degraded_machine
from ..trust.errors import (FreshnessError, ReplayError, StaleKeyError,
                            UnknownKeyError)
from ..trust.freshness import FreshnessEnvelope, ReplayGuard
from ..trust.keyvault import KeyVault, REVOKED
from .protocol import (ConnectionClosed, FrameTimeout, PROTOCOL_VERSION,
                       ProtocolError, TOKEN_ENV, pack_result,
                       pack_telemetry, recv_frame, send_frame,
                       unpack_submit)

#: How many in-process degrade-ladder recoveries one submit may consume
#: before its chip fault surfaces as a FAILED result.
MAX_RECOVERIES = 2


class ClusterWorker:
    """One worker process's event loop (see module docstring)."""

    def __init__(self, worker_id: str, host: str, port: int,
                 token: str = "", cache_dir=None,
                 capacity: Optional[int] = None, threads: int = 2,
                 watchdog_s: Optional[float] = None,
                 read_timeout_s: float = 5.0,
                 liveness_timeout_s: float = 15.0,
                 reconnect_attempts: int = 5,
                 chaos_chip_crash: int = 0, chaos_cycle: int = 2000,
                 telemetry_interval_s: float = 0.0):
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.token = token
        self.threads = threads
        self.read_timeout_s = read_timeout_s
        self.liveness_timeout_s = liveness_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.chaos_cycle = chaos_cycle
        self.session = CinnamonSession(cache_dir=cache_dir,
                                       capacity=capacity,
                                       watchdog_s=watchdog_s)
        self._pool = ThreadPoolExecutor(
            max_workers=threads,
            thread_name_prefix=f"cluster-{worker_id}")
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = False
        self._journal_cursor = 0
        self._journal_lock = threading.Lock()
        self._last_frame = time.monotonic()
        # Trust plumbing: an (initially empty) metadata-only vault filled
        # by the router's "keys" frames, and an independent replay guard.
        self._keyvault = KeyVault()
        self._replay_guard = ReplayGuard()
        # Scripted chip-kill chaos: a thread-safe budget.  A submit
        # arms one fault; if its simulation finishes before the crash
        # cycle (short program, simulate=False) the budget is refunded
        # so the fault re-arms until it actually lands.
        self._chaos_lock = threading.Lock()
        self._chaos_remaining = chaos_chip_crash
        # Streaming telemetry (repro.obs.live): a daemon thread pushes
        # delta-encoded metric samples every interval; 0 disables it
        # (the router's stats poll remains the fallback feed).
        self.telemetry_interval_s = telemetry_interval_s
        self._telemetry_seq = 0
        self._last_telemetry: Optional[dict] = None
        self._telemetry_stop = threading.Event()
        self._telemetry_thread: Optional[threading.Thread] = None
        self._metrics = default_registry()
        self._submits_total = self._metrics.counter(
            "cluster_worker_submits_total",
            "Submit frames accepted by this worker.")
        self._inflight_gauge = self._metrics.gauge(
            "cluster_worker_inflight",
            "Jobs executing or queued on the worker pool.")

    # ------------------------------------------------------------------ #
    # Lifecycle

    def run(self) -> int:
        """Connect, say hello, serve frames until shutdown (or until the
        router stays unreachable across the reconnect budget).

        Reads are bounded: a :class:`FrameTimeout` at a clean frame
        boundary is routine (the read timeout is shorter than the
        heartbeat gap only under load) and merely prompts a liveness
        check — a socket silent past ``liveness_timeout_s`` is half-open
        and gets replaced.  A mid-frame timeout or torn frame means the
        stream lost sync; the connection is unusable and is replaced
        too.
        """
        if not self._connect():
            return 1
        if self.telemetry_interval_s > 0:
            self._telemetry_thread = threading.Thread(
                target=self._telemetry_loop, daemon=True,
                name=f"telemetry-{self.worker_id}")
            self._telemetry_thread.start()
        try:
            while True:
                try:
                    header, blob = recv_frame(self._sock,
                                              token=self.token or None)
                except FrameTimeout:
                    # Nothing arrived within the read timeout.  The
                    # router pings every ~0.5s, so prolonged total
                    # silence means the connection is half-open.
                    silent_s = time.monotonic() - self._last_frame
                    if silent_s < self.liveness_timeout_s:
                        continue
                    if not self._reconnect():
                        return 0
                    continue
                except (ConnectionClosed, ProtocolError, OSError):
                    # EOF or stream desync: this socket is done.  Come
                    # back through a fresh one; exit cleanly when the
                    # router is really gone.
                    if not self._reconnect():
                        return 0
                    continue
                self._last_frame = time.monotonic()
                if not self._handle(header, blob):
                    return 0
        finally:
            self._telemetry_stop.set()
            self._pool.shutdown(wait=False)
            try:
                self._sock.close()
            except OSError:
                pass

    def _connect(self) -> bool:
        """Dial the router and say hello; bounded reads from then on."""
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=30)
        except OSError:
            return False
        sock.settimeout(self.read_timeout_s)
        self._sock = sock
        self._last_frame = time.monotonic()
        try:
            self._send({"kind": "hello", "worker_id": self.worker_id,
                        "token": self.token, "pid": os.getpid(),
                        "protocol": PROTOCOL_VERSION})
        except OSError:
            return False
        return True

    def _reconnect(self) -> bool:
        """Replace a dead or half-open socket, with exponential backoff.
        Returns ``False`` when the router stays unreachable — the caller
        exits cleanly instead of spinning forever."""
        try:
            self._sock.close()
        except OSError:
            pass
        delay = 0.1
        for _ in range(self.reconnect_attempts):
            time.sleep(delay)
            delay = min(delay * 2, 2.0)
            if self._connect():
                return True
        return False

    def _handle(self, header: dict, blob: bytes) -> bool:
        """Process one frame; returns ``False`` to exit the loop."""
        kind = header.get("kind")
        if kind == "submit":
            self._accept_submit(header, blob)
        elif kind == "ping":
            self._send({"kind": "pong", "worker_id": self.worker_id,
                        "inflight": self._inflight,
                        "draining": self._draining,
                        "ts": time.time()})
        elif kind == "keys":
            self._install_keys(blob)
        elif kind == "stats":
            self._send_stats("stats_reply")
        elif kind == "drain":
            self._draining = True
            with self._inflight_cond:
                while self._inflight > 0:
                    self._inflight_cond.wait(0.05)
            self._send_stats("drained")
        elif kind == "shutdown":
            return False
        else:
            raise ProtocolError(f"worker got unexpected frame {kind!r}")
        return True

    # ------------------------------------------------------------------ #
    # Trust: replicated keys + worker-side freshness/staleness re-checks

    def _install_keys(self, blob: bytes) -> None:
        """Adopt the router's signed key manifest (verify-then-install);
        a bad signature leaves the previous vault state untouched."""
        try:
            count = self._keyvault.install_manifest(pickle.loads(blob))
        except Exception as exc:  # ManifestSignatureError, bad pickle...
            self.session.record_trust(
                event="key_manifest_rejected", target=self.worker_id,
                detail={"error": f"{type(exc).__name__}: {exc}"})
        else:
            self.session.record_trust(
                event="keys_installed", target=self.worker_id,
                detail={"records": count})

    def _trust_check(self, header: dict) -> Optional[str]:
        """Re-check a submit's freshness envelope and key version on this
        side of the wire; returns a rejection reason or ``None``.

        The router mints a *fresh* envelope per dispatch attempt, so a
        legitimate submit (including a failover re-dispatch) never trips
        this guard — only a frame replayed on the wire does.  Key checks
        reject only *revoked* or never-issued versions: a merely retired
        one may be a mid-rotation race the router already admitted under
        its grace window.
        """
        tenant = header.get("tenant", "default")
        envelope = FreshnessEnvelope.from_header(header)
        if envelope is not None:
            try:
                self._replay_guard.check(envelope)
            except FreshnessError as exc:
                event = ("replay_rejected" if isinstance(exc, ReplayError)
                         else "stale_request")
                self.session.record_trust(
                    event=event, target=tenant,
                    detail={"worker": self.worker_id,
                            "nonce": envelope.nonce,
                            "reason": getattr(exc, "reason", "stale")})
                return f"{type(exc).__name__}: {exc}"
        version = header.get("key_version")
        if version is not None and self._keyvault.tenants():
            try:
                self._keyvault.validate(tenant, int(version))
            except UnknownKeyError as exc:
                self.session.record_trust(
                    event="stale_key", target=tenant,
                    detail={"worker": self.worker_id, "version": version,
                            "status": "unknown"})
                return f"{type(exc).__name__}: {exc}"
            except StaleKeyError as exc:
                if exc.status == REVOKED:
                    self.session.record_trust(
                        event="stale_key", target=tenant,
                        detail={"worker": self.worker_id,
                                "version": version, "status": REVOKED})
                    return f"{type(exc).__name__}: {exc}"
        return None

    def _take_chaos_fault(self) -> Optional[FaultSchedule]:
        """Consume one armed chip-kill fault (None once drained)."""
        if self._chaos_remaining <= 0:
            return None
        with self._chaos_lock:
            if self._chaos_remaining <= 0:
                return None
            self._chaos_remaining -= 1
        return FaultSchedule().chip_crash(chip=0, cycle=self.chaos_cycle)

    def _refund_chaos_fault(self) -> None:
        """Re-arm a fault that was taken but never fired."""
        with self._chaos_lock:
            self._chaos_remaining += 1

    # ------------------------------------------------------------------ #
    # Submit execution

    def _accept_submit(self, header: dict, blob: bytes) -> None:
        if self._draining:
            self._send_error(header, "worker is draining")
            return
        reason = self._trust_check(header)
        if reason is not None:
            self._send_error(header, reason, retryable=False)
            return
        self._submits_total.inc()
        with self._inflight_cond:
            self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        self._pool.submit(self._execute, header, blob)

    def _execute(self, header: dict, blob: bytes) -> None:
        started = time.monotonic()
        request_id = header.get("request_id", 0)
        name = header.get("name", f"req-{request_id}")
        span = None
        trace_id = header.get("trace_id")
        if trace_id:
            # Re-hydrate the router-side request span as this job's
            # parent so every journal row recorded here joins the trace.
            span = tracing.Span(
                f"worker:{name}", kind="execute", trace_id=trace_id,
                parent_id=header.get("parent_span_id"),
                attrs={"worker": self.worker_id,
                       "request_id": request_id})
            tracing.tracer().add_span(span)
        try:
            program, params, machine, options = unpack_submit(header, blob)
            # Options arrive pre-resolved (machine folded in, tuning swap
            # applied) so the fingerprint here matches the router's and
            # the shared disk cache key lines up; machine=None keeps the
            # session from re-resolving on top.
            schedule = self._take_chaos_fault()
            recoveries = 0
            attempts = 0
            while True:
                attempts += 1
                job = CompileJob(
                    program=program, params=params, machine=None,
                    options=options,
                    simulate=header.get("simulate", True),
                    tag=header.get("tag", ""), name=name,
                    fault_schedule=schedule, span=span)
                try:
                    job_result = self.session.run(job)
                    if schedule is not None:
                        # Armed but never fired — the program ended
                        # before the crash cycle.  Put the budget back
                        # so a later submit triggers the drill.
                        self._refund_chaos_fault()
                    break
                except MachineFaultError as exc:
                    # A die died mid-simulation (chaos or real): recover
                    # in-process by recompiling for the degrade ladder's
                    # next rung, exactly like the serve layer.  The
                    # fault budget was spent on the faulted attempt, so
                    # the replay runs clean.
                    schedule = None
                    if recoveries >= MAX_RECOVERIES:
                        raise
                    machine_name = exc.machine or getattr(
                        getattr(options, "machine", None), "name", "")
                    try:
                        degraded = degraded_machine(machine_name)
                    except (ValueError, TypeError):
                        raise exc  # out of rungs (or unresolvable)
                    recoveries += 1
                    self.session.record_recovery(
                        job=name,
                        fault=(exc.fault.kind if exc.fault
                               else "chip_crash"),
                        chip=exc.chip, cycle=exc.cycle,
                        machine_from=machine_name,
                        machine_to=degraded.name,
                        detection_s=time.monotonic() - started)
                    options = options.with_machine(degraded)
            done = time.monotonic()
            sim = job_result.result
            result = RequestResult(
                request_id=request_id, name=name,
                status=RequestStatus.OK,
                latency=LatencyBreakdown(execute_s=done - started,
                                         total_s=done - started),
                attempts=attempts, shard=None, batch_size=1,
                cache=job_result.cache,
                cycles=sim.cycles if sim is not None else None,
                cost=cost_rollup(program, job_result.cache,
                                 job_result.compiled, sim))
        except Exception as exc:
            result = RequestResult(
                request_id=request_id, name=name,
                status=RequestStatus.FAILED,
                latency=LatencyBreakdown(
                    total_s=time.monotonic() - started),
                attempts=1, batch_size=1,
                error=f"{type(exc).__name__}: {exc}")
        finally:
            if span is not None:
                span.finish()
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
            self._inflight_gauge.set(self._inflight)
        res_header, res_blob = pack_result(result)
        res_header["worker_id"] = self.worker_id
        try:
            # Ship journal rows eagerly *ahead of* every result: any
            # request whose result the router holds also has its
            # compile/simulate trace rows router-side, so a SIGKILL of
            # this process can never orphan an already-answered trace.
            # (A kill between the two frames loses only the result, and
            # the router's failover path re-runs the request.)
            self._ship_journal()
            self._send(res_header, res_blob)
        except OSError:
            pass  # router died; its failover path re-runs the request

    def _send_error(self, header: dict, reason: str,
                    retryable: bool = True) -> None:
        """``retryable=False`` marks a terminal rejection (a trust
        refusal): re-dispatching the same frame cannot succeed."""
        result = RequestResult(
            request_id=header.get("request_id", 0),
            name=header.get("name", "?"), status=RequestStatus.FAILED,
            error=reason)
        res_header, res_blob = pack_result(result)
        res_header["worker_id"] = self.worker_id
        res_header["retryable"] = retryable
        self._send(res_header, res_blob)

    # ------------------------------------------------------------------ #
    # Streaming telemetry

    def _telemetry_loop(self) -> None:
        """Push a delta-encoded metrics sample every interval.  A send
        that fails (router briefly gone, socket mid-reconnect) is
        dropped — the next interval's delta still reflects the full
        cumulative state, and the router's stats poll backstops any
        gap."""
        from ..obs.live.timeseries import snapshot_delta

        while not self._telemetry_stop.wait(self.telemetry_interval_s):
            snapshot = self._metrics.snapshot()
            delta = snapshot_delta(self._last_telemetry, snapshot)
            self._last_telemetry = snapshot
            if not delta:
                continue
            self._telemetry_seq += 1
            header, blob = pack_telemetry(
                self.worker_id, self._telemetry_seq, delta, time.time(),
                inflight=self._inflight)
            try:
                self._send(header, blob)
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------------ #
    # Stats / journal shipping

    def _fresh_journal_rows(self) -> list:
        """Journal rows recorded since the last ship (cursor semantics:
        each row crosses the wire exactly once)."""
        with self._journal_lock:
            jobs = self.session.trace()["jobs"]
            fresh = jobs[self._journal_cursor:]
            self._journal_cursor = len(jobs)
        return fresh

    def _ship_journal(self) -> None:
        fresh = self._fresh_journal_rows()
        if fresh:
            self._send({"kind": "journal", "worker_id": self.worker_id},
                       pickle.dumps(fresh, pickle.HIGHEST_PROTOCOL))

    def _send_stats(self, kind: str) -> None:
        payload = {
            "snapshot": self._metrics.snapshot(),
            "journal": self._fresh_journal_rows(),
            "cache": self.session.cache_stats.as_dict(),
            "trust": {
                "replay": self._replay_guard.stats(),
                "keys": self._keyvault.counts(),
                "chaos_chip_crash_remaining": self._chaos_remaining,
            },
        }
        self._send({"kind": kind, "worker_id": self.worker_id,
                    "inflight": self._inflight},
                   pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))

    def _send(self, header: dict, blob: bytes = b"") -> None:
        with self._send_lock:
            send_frame(self._sock, header, blob,
                       token=self.token or None)


# ---------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Cinnamon cluster worker (spawned by ClusterRouter).")
    parser.add_argument("--connect", type=int, required=True,
                        help="router listener port on --host")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk compile cache directory")
    parser.add_argument("--capacity", type=int, default=None,
                        help="in-memory LRU bound for the session cache")
    parser.add_argument("--threads", type=int, default=2,
                        help="session thread pool size")
    parser.add_argument("--watchdog-s", type=float, default=None)
    parser.add_argument("--read-timeout-s", type=float, default=5.0,
                        help="bounded per-read socket timeout")
    parser.add_argument("--liveness-timeout-s", type=float, default=15.0,
                        help="silence past this means a half-open router "
                             "connection (reconnect with backoff)")
    parser.add_argument("--chaos-chip-crash", type=int, default=0,
                        help="arm N scripted chip-kill faults, one per "
                             "submit, refunded until each fires "
                             "(chaos testing)")
    parser.add_argument("--chaos-cycle", type=int, default=2000,
                        help="simulated cycle at which a chaos chip dies")
    parser.add_argument("--telemetry-interval-s", type=float, default=0.0,
                        help="push delta-encoded metric samples to the "
                             "router every N seconds (0 = disabled; the "
                             "router's stats poll is the fallback)")
    parser.add_argument("--obs", action="store_true",
                        help="enable repro.obs span tracing in-process")
    args = parser.parse_args(argv)
    if args.obs:
        tracing.enable()
    worker = ClusterWorker(
        worker_id=args.worker_id, host=args.host, port=args.connect,
        token=os.environ.get(TOKEN_ENV, ""), cache_dir=args.cache_dir,
        capacity=args.capacity, threads=args.threads,
        watchdog_s=args.watchdog_s,
        read_timeout_s=args.read_timeout_s,
        liveness_timeout_s=args.liveness_timeout_s,
        chaos_chip_crash=args.chaos_chip_crash,
        chaos_cycle=args.chaos_cycle,
        telemetry_interval_s=args.telemetry_interval_s)
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
