"""The cluster worker process: one socket, one session, a small pool.

``python -m repro.cluster.worker --connect PORT --worker-id w0`` dials
the router's loopback listener, authenticates with the token the router
exported in ``CINNAMON_CLUSTER_TOKEN``, and then serves frames until the
socket closes or a ``shutdown`` frame arrives:

* ``submit`` frames are handed to a small thread pool (default 2) where
  a :class:`~repro.runtime.session.CinnamonSession` compiles/simulates
  the job and the ``result`` frame goes back under a send lock;
* ``ping`` is answered inline with ``pong`` (carrying inflight depth) so
  heartbeats stay timely while the pool is busy;
* ``stats`` streams back the process's metrics snapshot plus the journal
  rows recorded since the previous ask (a cursor, so nothing is ever
  shipped twice or lost);
* ``drain`` stops accepting new submits, waits out the in-flight jobs,
  and answers ``drained`` with the final stats payload.

Trace propagation: a ``submit`` carrying ``trace_id``/``parent_span_id``
executes under a re-hydrated :class:`~repro.obs.tracing.Span`, so the
compile/simulate journal rows recorded in *this* process join the
router-side serve row on the same ``trace_id`` (trace schema 6).

The worker trusts its socket because the router spawned it and handed it
a per-cluster random token over the environment — the same trust model
as ``multiprocessing.connection`` — and listens on loopback only.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..obs import tracing
from ..obs.metrics import default_registry
from ..runtime.session import CinnamonSession, CompileJob
from ..serve.request import LatencyBreakdown, RequestResult, RequestStatus
from .protocol import (ConnectionClosed, PROTOCOL_VERSION, ProtocolError,
                       TOKEN_ENV, pack_result, recv_frame, send_frame,
                       unpack_submit)


class ClusterWorker:
    """One worker process's event loop (see module docstring)."""

    def __init__(self, worker_id: str, host: str, port: int,
                 token: str = "", cache_dir=None,
                 capacity: Optional[int] = None, threads: int = 2,
                 watchdog_s: Optional[float] = None):
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.token = token
        self.threads = threads
        self.session = CinnamonSession(cache_dir=cache_dir,
                                       capacity=capacity,
                                       watchdog_s=watchdog_s)
        self._pool = ThreadPoolExecutor(
            max_workers=threads,
            thread_name_prefix=f"cluster-{worker_id}")
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = False
        self._journal_cursor = 0
        self._journal_lock = threading.Lock()
        self._metrics = default_registry()
        self._submits_total = self._metrics.counter(
            "cluster_worker_submits_total",
            "Submit frames accepted by this worker.")
        self._inflight_gauge = self._metrics.gauge(
            "cluster_worker_inflight",
            "Jobs executing or queued on the worker pool.")

    # ------------------------------------------------------------------ #
    # Lifecycle

    def run(self) -> int:
        """Connect, say hello, serve frames until EOF/shutdown."""
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=30)
        self._sock.settimeout(None)
        self._send({"kind": "hello", "worker_id": self.worker_id,
                    "token": self.token, "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION})
        try:
            while True:
                try:
                    header, blob = recv_frame(self._sock)
                except (ConnectionClosed, OSError):
                    # Router went away: nothing to serve results to.
                    return 0
                if not self._handle(header, blob):
                    return 0
        finally:
            self._pool.shutdown(wait=False)
            try:
                self._sock.close()
            except OSError:
                pass

    def _handle(self, header: dict, blob: bytes) -> bool:
        """Process one frame; returns ``False`` to exit the loop."""
        kind = header.get("kind")
        if kind == "submit":
            self._accept_submit(header, blob)
        elif kind == "ping":
            self._send({"kind": "pong", "worker_id": self.worker_id,
                        "inflight": self._inflight,
                        "draining": self._draining,
                        "ts": time.time()})
        elif kind == "stats":
            self._send_stats("stats_reply")
        elif kind == "drain":
            self._draining = True
            with self._inflight_cond:
                while self._inflight > 0:
                    self._inflight_cond.wait(0.05)
            self._send_stats("drained")
        elif kind == "shutdown":
            return False
        else:
            raise ProtocolError(f"worker got unexpected frame {kind!r}")
        return True

    # ------------------------------------------------------------------ #
    # Submit execution

    def _accept_submit(self, header: dict, blob: bytes) -> None:
        if self._draining:
            self._send_error(header, "worker is draining")
            return
        self._submits_total.inc()
        with self._inflight_cond:
            self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        self._pool.submit(self._execute, header, blob)

    def _execute(self, header: dict, blob: bytes) -> None:
        started = time.monotonic()
        request_id = header.get("request_id", 0)
        name = header.get("name", f"req-{request_id}")
        span = None
        trace_id = header.get("trace_id")
        if trace_id:
            # Re-hydrate the router-side request span as this job's
            # parent so every journal row recorded here joins the trace.
            span = tracing.Span(
                f"worker:{name}", kind="execute", trace_id=trace_id,
                parent_id=header.get("parent_span_id"),
                attrs={"worker": self.worker_id,
                       "request_id": request_id})
            tracing.tracer().add_span(span)
        try:
            program, params, machine, options = unpack_submit(header, blob)
            # Options arrive pre-resolved (machine folded in, tuning swap
            # applied) so the fingerprint here matches the router's and
            # the shared disk cache key lines up; machine=None keeps the
            # session from re-resolving on top.
            job = CompileJob(
                program=program, params=params, machine=None,
                options=options, simulate=header.get("simulate", True),
                tag=header.get("tag", ""), name=name, span=span)
            job_result = self.session.run(job)
            done = time.monotonic()
            sim = job_result.result
            result = RequestResult(
                request_id=request_id, name=name,
                status=RequestStatus.OK,
                latency=LatencyBreakdown(execute_s=done - started,
                                         total_s=done - started),
                attempts=1, shard=None, batch_size=1,
                cache=job_result.cache,
                cycles=sim.cycles if sim is not None else None)
        except Exception as exc:
            result = RequestResult(
                request_id=request_id, name=name,
                status=RequestStatus.FAILED,
                latency=LatencyBreakdown(
                    total_s=time.monotonic() - started),
                attempts=1, batch_size=1,
                error=f"{type(exc).__name__}: {exc}")
        finally:
            if span is not None:
                span.finish()
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
            self._inflight_gauge.set(self._inflight)
        res_header, res_blob = pack_result(result)
        res_header["worker_id"] = self.worker_id
        try:
            self._send(res_header, res_blob)
            # Ship journal rows eagerly behind every result: any request
            # whose result the router holds also has its compile/simulate
            # trace rows router-side, so a later SIGKILL of this process
            # cannot orphan an already-answered trace.
            self._ship_journal()
        except OSError:
            pass  # router died; its failover path re-runs the request

    def _send_error(self, header: dict, reason: str) -> None:
        result = RequestResult(
            request_id=header.get("request_id", 0),
            name=header.get("name", "?"), status=RequestStatus.FAILED,
            error=reason)
        res_header, res_blob = pack_result(result)
        res_header["worker_id"] = self.worker_id
        res_header["retryable"] = True
        self._send(res_header, res_blob)

    # ------------------------------------------------------------------ #
    # Stats / journal shipping

    def _fresh_journal_rows(self) -> list:
        """Journal rows recorded since the last ship (cursor semantics:
        each row crosses the wire exactly once)."""
        with self._journal_lock:
            jobs = self.session.trace()["jobs"]
            fresh = jobs[self._journal_cursor:]
            self._journal_cursor = len(jobs)
        return fresh

    def _ship_journal(self) -> None:
        fresh = self._fresh_journal_rows()
        if fresh:
            self._send({"kind": "journal", "worker_id": self.worker_id},
                       pickle.dumps(fresh, pickle.HIGHEST_PROTOCOL))

    def _send_stats(self, kind: str) -> None:
        payload = {
            "snapshot": self._metrics.snapshot(),
            "journal": self._fresh_journal_rows(),
            "cache": self.session.cache_stats.as_dict(),
        }
        self._send({"kind": kind, "worker_id": self.worker_id,
                    "inflight": self._inflight},
                   pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))

    def _send(self, header: dict, blob: bytes = b"") -> None:
        with self._send_lock:
            send_frame(self._sock, header, blob)


# ---------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Cinnamon cluster worker (spawned by ClusterRouter).")
    parser.add_argument("--connect", type=int, required=True,
                        help="router listener port on --host")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk compile cache directory")
    parser.add_argument("--capacity", type=int, default=None,
                        help="in-memory LRU bound for the session cache")
    parser.add_argument("--threads", type=int, default=2,
                        help="session thread pool size")
    parser.add_argument("--watchdog-s", type=float, default=None)
    parser.add_argument("--obs", action="store_true",
                        help="enable repro.obs span tracing in-process")
    args = parser.parse_args(argv)
    if args.obs:
        tracing.enable()
    worker = ClusterWorker(
        worker_id=args.worker_id, host=args.host, port=args.connect,
        token=os.environ.get(TOKEN_ENV, ""), cache_dir=args.cache_dir,
        capacity=args.capacity, threads=args.threads,
        watchdog_s=args.watchdog_s)
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
