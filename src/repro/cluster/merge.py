"""Merging per-worker observability into one cluster view.

Each worker process owns its own :class:`~repro.obs.metrics.MetricsRegistry`
and trace journal; the router periodically pulls ``snapshot()`` dicts and
journal rows over the ``stats`` protocol message and folds them together:

* **counters** — summed per (name, labels) series;
* **gauges** — summed (queue depths, inflight counts: the cluster value
  of a worker-local level *is* the sum);
* **histograms** — ``count``/``sum``/``max`` merge exactly; ``mean`` is
  recomputed from the merged sum/count; bucket counts sum elementwise
  when every side shares the same bounds.  Quantiles merge **exactly**
  when every contributing side still carries its complete reservoir in
  the snapshot (``"samples"``, present while ``count`` ≤
  :data:`~repro.obs.metrics.SNAPSHOT_SAMPLES_MAX`): the reservoirs are
  concatenated and re-ranked, flagged ``"quantiles": "exact"`` — so
  small-N cluster p99s match the single-process value.  Larger
  histograms fall back to count-weighted averages of the per-worker
  quantiles (an approximation, flagged ``"quantiles": "weighted"``).

Journal rows merge by concatenation: rows are self-describing (schema 6
stamps each absorbed row with its ``worker``) and already carry the
``trace_id`` the router propagated, so one request's serve row (router
side) and compile/simulate rows (worker side) join exactly as they do in
a single process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import SNAPSHOT_SAMPLES_MAX, quantile_from_sorted

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _series_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merge_histogram_values(values: List[dict]) -> dict:
    """Fold N worker-side histogram snapshots into one."""
    count = sum(v.get("count", 0) for v in values)
    total = sum(v.get("sum", 0.0) for v in values)
    merged = {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "max": max((v.get("max", 0.0) for v in values), default=0.0),
    }
    contributing = [v for v in values if v.get("count", 0) > 0]

    bounds = {tuple(v.get("buckets", {}).get("le", ()))
              for v in contributing}
    if contributing and len(bounds) == 1 and all(
            v.get("buckets", {}).get("counts") for v in contributing):
        le = list(bounds.pop())
        width = len(le) + 1   # +inf tail
        counts = [0] * width
        if all(len(v["buckets"]["counts"]) == width for v in contributing):
            for v in contributing:
                for i, c in enumerate(v["buckets"]["counts"]):
                    counts[i] += c
            merged["buckets"] = {"le": le, "counts": counts}

    samples: List[float] = []
    exact = bool(contributing)
    for v in contributing:
        carried = v.get("samples")
        if carried is None or len(carried) != v.get("count", 0):
            exact = False
            break
        samples.extend(carried)
    if exact:
        samples.sort()
        merged["quantiles"] = "exact"
        for q, frac in _QUANTILES:
            merged[q] = quantile_from_sorted(samples, frac)
        if len(samples) <= SNAPSHOT_SAMPLES_MAX:
            merged["samples"] = samples   # keep nested merges exact too
    else:
        merged["quantiles"] = "weighted"
        for q, _ in _QUANTILES:
            weighted = [(v.get("count", 0), v[q]) for v in contributing
                        if v.get(q) is not None]
            weight = sum(c for c, _ in weighted)
            merged[q] = (sum(c * x for c, x in weighted) / weight
                         if weight else None)
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts into one cluster
    snapshot of the same shape."""
    acc: Dict[str, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, entry in snapshot.items():
            kind = entry.get("type", "gauge")
            slot = acc.setdefault(name, {"type": kind, "series": {}})
            for series in entry.get("series", ()):
                labels = series.get("labels", {})
                slot["series"].setdefault(
                    _series_key(labels),
                    {"labels": dict(labels), "values": []},
                )["values"].append(series.get("value"))
    out: Dict[str, dict] = {}
    for name, entry in acc.items():
        kind = entry["type"]
        merged_series = []
        for bucket in entry["series"].values():
            values = [v for v in bucket["values"] if v is not None]
            if kind == "histogram":
                value = merge_histogram_values(
                    [v for v in values if isinstance(v, dict)])
            else:  # counter and gauge both sum across processes
                value = float(sum(values))
            merged_series.append({"labels": bucket["labels"],
                                  "value": value})
        out[name] = {"type": kind, "series": merged_series}
    return out


def merged_scalar(snapshot: dict, name: str,
                  labels: Optional[dict] = None) -> float:
    """Convenience: one counter/gauge value out of a merged snapshot
    (summed across label sets when ``labels`` is ``None``)."""
    entry = snapshot.get(name)
    if not entry:
        return 0.0
    want = _series_key(labels) if labels is not None else None
    total = 0.0
    for series in entry.get("series", ()):
        if want is not None and _series_key(series["labels"]) != want:
            continue
        value = series.get("value")
        if isinstance(value, (int, float)):
            total += value
    return total


def merge_journals(journals: Dict[str, List[dict]]) -> List[dict]:
    """Concatenate per-worker journal rows, stamping each with its
    ``worker`` of origin (rows keep their own trace/span ids)."""
    merged: List[dict] = []
    for worker_id, rows in journals.items():
        for row in rows:
            row = dict(row)
            row.setdefault("worker", worker_id)
            merged.append(row)
    return merged
