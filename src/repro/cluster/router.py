"""The cluster front-end: routing, quotas, failover, autoscaling.

``ClusterRouter`` is API-compatible with
:class:`~repro.serve.CinnamonServer` (``submit``/``drain``/``shutdown``/
``metrics_snapshot``/``trace``/context manager), but instead of a pool
of in-process thread shards it owns N *worker processes*, each hosting
one :class:`~repro.runtime.session.CinnamonSession` — so compiles and
simulations run on separate interpreters and the GIL stops being the
cluster's throughput ceiling.

Data path of one request::

    submit() --fingerprint/tuning-swap--> FairShareQueue (quotas)
        --dispatcher--> HashRing.owner(fingerprint) --> worker socket
        --worker session--> result frame --> RequestHandle

Design notes:

* **Topology.**  The router binds one loopback listener; workers are
  spawned with ``python -m repro.cluster.worker --connect PORT`` and
  dial *in*, authenticating with a per-cluster random token passed via
  the environment.  One reader thread per worker demultiplexes result/
  pong/stats frames; sends are serialized per socket.
* **Routing.**  Consistent hashing on the compile fingerprint gives
  every program a home worker whose in-memory cache stays warm, and
  :meth:`HashRing.preferred` yields the failover order when that worker
  is gone.  Membership changes remap only ~1/N of the key space.
* **Failover.**  A worker death (EOF on its socket — covers SIGKILL)
  removes it from the ring, requeues its in-flight requests with
  ``force=True`` (bypassing quotas and the drain-closed check: they were
  already admitted once), and lets the monitor respawn a replacement up
  to the current target.  Requests exceeding ``max_retries`` failovers
  resolve FAILED.  Zero requests are ever dropped.
* **Autoscaling.**  The monitor thread feeds queue-depth/inflight
  observations to :class:`~repro.cluster.autoscaler.Autoscaler` and
  spawns or drains workers between ``min_workers``/``max_workers``.
* **Observability.**  The router opens one long-lived ``cluster`` root
  span; membership/failover events become ``kind="cluster"`` journal
  rows under it (trace schema 6).  Each submit ships its request span's
  ``trace_id`` to the worker, whose compile/simulate rows come back in
  ``stats``/``drained`` replies and are absorbed into the router's
  journal — one merged timeline across processes.
"""

from __future__ import annotations

import itertools
import os
import pickle
import secrets
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.tracing import tracer
from ..runtime.fingerprint import fingerprint
from ..runtime.session import resolve_request_options
from ..runtime.trace import TraceRecorder
from ..serve.metrics import MetricsRegistry
from ..serve.queue import Empty, QueueClosedError, QueueSaturatedError
from ..serve.request import (InferenceRequest, LatencyBreakdown,
                             RequestHandle, RequestResult, RequestStatus)
from ..serve.server import ServerClosedError
from ..sim.config import resolve_machine
from ..trust.errors import FreshnessError, KeyVaultError
from ..trust.freshness import (DEFAULT_WINDOW_S, EnvelopeMinter,
                               ReplayGuard)
from .autoscaler import Autoscaler, AutoscalerState
from .merge import merge_snapshots
from .protocol import (ConnectionClosed, ProtocolError, TOKEN_ENV,
                       pack_submit, recv_frame, send_frame, unpack_result,
                       unpack_telemetry)
from .quotas import FairShareQueue, QuotaExceededError, TenantQuota
from .ring import HashRing

#: Dispatcher poll period while idle.
_IDLE_POLL_S = 0.05


class _Worker:
    """Router-side state of one worker process."""

    def __init__(self, worker_id: str, index: int,
                 proc: subprocess.Popen):
        self.id = worker_id
        self.index = index             # numeric shard id in results
        self.proc = proc
        self.sock: Optional[socket.socket] = None
        self.reader: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.connected = threading.Event()
        self.drained = threading.Event()
        self.pending: Dict[int, InferenceRequest] = {}
        self.dispatched_at: Dict[int, float] = {}
        self.last_pong = time.monotonic()
        self.draining = False
        self.retired = False
        self.dead = False
        self.snapshot: dict = {}
        self.cache: dict = {}
        self.token = ""                # cluster token: HMAC frame auth

    @property
    def live(self) -> bool:
        return self.connected.is_set() and not self.dead \
            and not self.draining

    def send(self, header: dict, blob: bytes = b"") -> None:
        sock = self.sock
        if sock is None:
            raise OSError("worker not connected")
        with self.send_lock:
            send_frame(sock, header, blob, token=self.token or None)


class ClusterRouter:
    """Multi-process scale-out serving front-end (see module docstring).

    ``num_workers`` is the initial (and, without autoscaling, constant)
    process count; ``autoscale=True`` lets the cluster breathe between
    ``min_workers`` and ``max_workers``.  ``quotas`` maps tenant name to
    :class:`~repro.cluster.quotas.TenantQuota`; ``default_quota`` (if
    set) applies to tenants without an explicit entry.  ``cache_dir``
    is the shared on-disk compile cache every worker mounts — by default
    a private temporary directory that lives as long as the router.
    """

    def __init__(self, num_workers: int = 2, queue_depth: int = 256,
                 max_retries: int = 2,
                 request_timeout_s: Optional[float] = None,
                 default_machine=None, cache_dir=None,
                 capacity: Optional[int] = None,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: Optional[TenantQuota] = None,
                 autoscale: bool = False, min_workers: int = 1,
                 max_workers: Optional[int] = None,
                 autoscaler: Optional[Autoscaler] = None,
                 disk_cache: bool = True,
                 worker_threads: int = 2, heartbeat_s: float = 0.5,
                 liveness_timeout_s: float = 15.0,
                 stats_interval_s: float = 2.0,
                 metrics: Optional[MetricsRegistry] = None,
                 tuned: bool = False, tuning_db=None,
                 spawn_workers: bool = True,
                 keyvault=None,
                 replay_window_s: float = DEFAULT_WINDOW_S,
                 chaos_chip_crash: int = 0, chaos_cycle: int = 2000,
                 slos: Sequence = (), flight_dir=None,
                 live_status_path=None,
                 telemetry_interval_s: float = 0.0,
                 slo_window_scale: float = 1.0,
                 slo_min_events: int = 10,
                 slo_cooldown_s: float = 60.0):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.max_retries = max_retries
        self.request_timeout_s = request_timeout_s
        self.default_machine = default_machine
        self.worker_threads = worker_threads
        self.capacity = capacity
        self.heartbeat_s = heartbeat_s
        self.liveness_timeout_s = liveness_timeout_s
        self.stats_interval_s = stats_interval_s
        self._spawn_enabled = spawn_workers

        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None and disk_cache:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="cinnamon-cluster-")
            cache_dir = self._tmpdir.name
        # None = workers run memory-only sessions (bench isolation mode).
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

        self._tuning_db = tuning_db
        if tuned and self._tuning_db is None:
            from ..tune.db import TuningDB, default_db_path

            self._tuning_db = TuningDB(default_db_path(self.cache_dir))

        self._queue = FairShareQueue(maxsize=queue_depth, quotas=quotas,
                                     default_quota=default_quota)
        self._ring = HashRing()
        self._recorder = TraceRecorder()
        self._workers: Dict[str, _Worker] = {}
        self._worker_seq = itertools.count()
        self._handles: Dict[int, RequestHandle] = {}
        self._attempts: Dict[int, int] = {}
        self._pending_cond = threading.Condition()
        self._lock = threading.RLock()
        self._target = num_workers
        self._autoscaler = autoscaler
        if autoscale and self._autoscaler is None:
            self._autoscaler = Autoscaler(
                min_workers=min_workers,
                max_workers=max_workers or max(num_workers, min_workers),
                slots_per_worker=worker_threads)
        self._token = secrets.token_hex(16)
        self._stats_waiters: Dict[str, threading.Event] = {}

        # Trust layer (repro.trust): evaluation-key lifecycle, replay
        # window on client submits, fresh per-dispatch envelopes so a
        # legitimate failover re-dispatch is never itself "a replay".
        self.keyvault = keyvault
        if keyvault is not None and keyvault.on_event is None:
            keyvault.on_event = self._on_key_event
        self._replay_guard = ReplayGuard(window_s=replay_window_s)
        self._minter = EnvelopeMinter(sender="router")
        # Chaos: every spawned worker injects up to N chip-crash faults
        # (worker-side degrade-ladder recovery, mirroring the serve path).
        self.chaos_chip_crash = chaos_chip_crash
        self.chaos_cycle = chaos_cycle

        self._started = False
        self._stopping = False
        self._listener: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._cluster_span = None

        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self._requests_total = {
            status: m.counter("serve_requests_total",
                              "Requests by terminal status.",
                              labels={"status": status.value})
            for status in RequestStatus
        }
        self._retries_total = m.counter(
            "serve_retries_total", "Request re-dispatches after failover.")
        self._tuned_total = m.counter(
            "serve_tuned_requests_total",
            "Requests whose options came from the tuning DB.")
        self._queue_depth_g = m.gauge(
            "serve_queue_depth", "Requests waiting for dispatch.")
        self._inflight_g = m.gauge(
            "serve_inflight_requests", "Requests dispatched, not resolved.")
        self._queue_wait_h = m.histogram(
            "serve_queue_wait_seconds",
            "Admission wait before dispatch to a worker.")
        self._execute_h = m.histogram(
            "serve_execute_seconds", "Worker-side execution time.")
        self._latency_h = m.histogram(
            "serve_request_latency_seconds",
            "End-to-end latency, submit to resolution.")
        self._workers_g = m.gauge(
            "cluster_workers", "Live (connected, serving) workers.")
        self._deaths_total = m.counter(
            "cluster_worker_deaths_total",
            "Workers lost to crashes/kills (not graceful retirement).")
        self._requeued_total = m.counter(
            "cluster_requeued_total",
            "Requests re-queued after their worker died.")
        self._quota_rejected_total = m.counter(
            "cluster_quota_rejections_total",
            "Submits rejected by a tenant's token bucket.")
        self._trust_rejected_total = {
            reason: m.counter(
                "cluster_trust_rejections_total",
                "Submits rejected by the trust layer.",
                labels={"reason": reason})
            for reason in ("replay", "stale-request", "stale-key")
        }
        self._dispatch_total = m.counter(
            "cluster_dispatches_total", "Submit frames sent to workers.")
        self._autoscale_total = {
            direction: m.counter(
                "cluster_autoscale_events_total",
                "Autoscaler decisions applied.",
                labels={"direction": direction})
            for direction in ("up", "down")
        }

        # Live telemetry (repro.obs.live): workers stream delta-encoded
        # metric samples over CNC1 ``telemetry`` frames into a bounded
        # time-series store; the monitor loop drives SLO burn-rate
        # evaluation, the flight recorder, and the status document.
        self.telemetry_interval_s = telemetry_interval_s
        self.live = None
        if slos or flight_dir is not None or live_status_path is not None \
                or telemetry_interval_s > 0:
            from ..obs.live import LivePipeline

            self.live = LivePipeline(
                slos=slos, flight_dir=flight_dir, process="router",
                recorder=self._recorder, registry=self.metrics,
                interval_s=max(heartbeat_s, 0.1),
                window_scale=slo_window_scale,
                cooldown_s=slo_cooldown_s, min_events=slo_min_events,
                status_path=live_status_path,
                workers_fn=self._worker_table)

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self) -> "ClusterRouter":
        if self._started:
            return self
        self._started = True
        tr = tracer()
        if tr.enabled:
            # Long-lived root span: membership/failover journal rows
            # recorded under it carry a trace_id (obs check() invariant).
            self._cluster_span = tr.begin(
                "cluster", kind="cluster",
                attrs={"target_workers": self._target})
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True)
        self._accept_thread.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="cluster-dispatch",
            daemon=True)
        self._dispatcher.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True)
        self._monitor.start()
        if self._spawn_enabled:
            for _ in range(self._target):
                self._spawn_worker()
        return self

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def wait_ready(self, count: Optional[int] = None,
                   timeout: float = 30.0) -> bool:
        """Block until ``count`` (default: the target) workers are
        connected; loadgen uses this so throughput timing starts with
        the fleet actually up."""
        want = count if count is not None else self._target
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self._live_workers()) >= want:
                return True
            time.sleep(0.02)
        return False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and wait until all accepted work resolves."""
        self._queue.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._pending_cond:
            while len(self._handles) > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._pending_cond.wait(
                    remaining if remaining is not None else 0.1)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        if self._stopping:
            return
        self._queue.close()
        if drain and self._started:
            self.drain(timeout=timeout)
        else:
            while True:
                try:
                    request = self._queue.get(timeout=0)
                except Empty:
                    break
                self._resolve_rejected(request, "cluster shut down")
        self._stopping = True
        self._monitor_stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10)
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        # Graceful worker teardown: drain (collect the final journal),
        # then shutdown; SIGKILL only as a last resort.
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            if worker.dead or worker.sock is None:
                continue
            try:
                worker.send({"kind": "drain"})
            except OSError:
                continue
        for worker in workers:
            if worker.dead or worker.sock is None:
                continue
            worker.drained.wait(timeout=15)
            try:
                worker.send({"kind": "shutdown"})
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for worker in workers:
            if worker.proc.poll() is None:
                try:
                    worker.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.proc.kill()
                    worker.proc.wait(timeout=5)
            if not worker.dead and not worker.retired:
                self._record_cluster("worker_exit", worker=worker.id,
                                     detail={"pid": worker.proc.pid})
                worker.retired = True
        if self._cluster_span is not None:
            self._cluster_span.finish()
        if self.live is not None:
            self.live.stop(final_tick=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # ------------------------------------------------------------------ #
    # Admission (mirrors CinnamonServer.submit)

    def submit(self, request: InferenceRequest) -> RequestHandle:
        """Admit one request; raises
        :class:`~repro.serve.queue.QueueSaturatedError` under
        backpressure, :class:`~repro.cluster.quotas.QuotaExceededError`
        over quota, and :class:`~repro.serve.server.ServerClosedError`
        after shutdown."""
        if not self._started:
            self.start()
        if request.machine is None and request.options is None \
                and self.default_machine is not None:
            request.machine = self.default_machine
        if request.deadline_s is None:
            request.deadline_s = self.request_timeout_s
        options = resolve_request_options(request.machine, request.options)
        request.machine_name = resolve_machine(
            request.machine if request.machine is not None
            else (options.machine or options.num_chips)).name
        if self._tuning_db is not None:
            tuned_options = self._tuning_db.tuned_options(
                request.program, request.params, request.machine_name,
                options)
            if tuned_options is not None:
                options = tuned_options
                request.options = tuned_options
                request.machine = None
                request.tuned = True
                self._tuned_total.inc()
        # The resolved options ship to the worker so its session computes
        # the identical fingerprint (shared disk-cache affinity).
        request.options = options
        request.machine = None
        request.key = fingerprint(request.program, request.params, options)
        request.submitted_at = time.monotonic()
        tr = tracer()
        request.span = tr.begin(
            f"serve:{request.label}", kind="serve", parent=None,
            attrs={"request_id": request.request_id,
                   "machine": request.machine_name,
                   "tenant": request.tenant,
                   "fingerprint": request.key})
        request.queue_span = tr.begin("queue", kind="queue",
                                      parent=request.span)
        handle = RequestHandle(request)
        with self._pending_cond:
            self._handles[request.request_id] = handle
        self._attempts[request.request_id] = 0
        # Trust admission: key-version staleness, then replay/freshness.
        # Typed errors propagate to the caller; the handle resolves
        # REJECTED so an attacker's submit can never hang a waiter.
        if self.keyvault is not None:
            try:
                self.keyvault.validate(request.tenant, request.key_version)
            except KeyVaultError as exc:
                self._trust_rejected_total["stale-key"].inc()
                self._record_trust(
                    "stale_key", target=request.tenant, request=request,
                    detail={"key_version": request.key_version,
                            "error": str(exc)})
                self._resolve_rejected(request, str(exc))
                raise
        if request.envelope is not None:
            try:
                self._replay_guard.check(request.envelope)
            except FreshnessError as exc:
                reason = getattr(exc, "reason", "stale-request")
                self._trust_rejected_total[
                    "replay" if reason in ("nonce-reuse",
                                           "sequence-reorder")
                    else "stale-request"].inc()
                event = ("replay_rejected"
                         if reason in ("nonce-reuse", "sequence-reorder")
                         else "stale_request")
                self._record_trust(
                    event, target=request.tenant, request=request,
                    detail={"reason": reason,
                            "nonce": getattr(exc, "nonce", ""),
                            "name": request.label})
                self._resolve_rejected(request, str(exc))
                raise
        try:
            self._queue.put(request)
        except QuotaExceededError:
            self._quota_rejected_total.inc()
            self._resolve_rejected(request, "tenant quota exceeded")
            raise
        except QueueSaturatedError:
            self._resolve_rejected(request, "admission queue saturated")
            raise
        except QueueClosedError as exc:
            self._resolve_rejected(request, "cluster shutting down")
            raise ServerClosedError(str(exc)) from exc
        self._queue_depth_g.set(self._queue.depth())
        return handle

    def submit_many(self, requests: Sequence[InferenceRequest]
                    ) -> List[RequestHandle]:
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------ #
    # Dispatch

    def _dispatch_loop(self) -> None:
        while not self._stopping:
            try:
                request = self._queue.get(timeout=_IDLE_POLL_S)
            except Empty:
                if (self._queue.closed and self._queue.depth() == 0
                        and self._total_pending() == 0):
                    return
                continue
            self._dispatch(request)
            self._queue_depth_g.set(self._queue.depth())

    def _total_pending(self) -> int:
        with self._lock:
            return sum(len(w.pending) for w in self._workers.values())

    def _live_workers(self) -> List[_Worker]:
        with self._lock:
            return [w for w in self._workers.values() if w.live]

    def _dispatch(self, request: InferenceRequest) -> None:
        now = time.monotonic()
        if request.expired(now):
            self._resolve_timeout(request, now, stage="queued")
            return
        worker = self._pick_worker(request.key)
        if worker is None:
            # No live worker right now (cold start or mid-failover):
            # park briefly and requeue — admission already happened, so
            # force past quotas and a drain-closed queue.
            time.sleep(0.02)
            self._queue.put(request, force=True)
            return
        self._attempts[request.request_id] = \
            self._attempts.get(request.request_id, 0) + 1
        span = request.span
        # A fresh envelope per dispatch attempt: the worker-side replay
        # guard must accept a legitimate failover re-dispatch.
        header, blob = pack_submit(
            request, request.options, request.key,
            trace_id=span.trace_id if span is not None else None,
            parent_span_id=span.span_id if span is not None else None,
            envelope=self._minter.mint(),
            key_version=request.key_version)
        with self._lock:
            worker.pending[request.request_id] = request
            worker.dispatched_at[request.request_id] = now
        try:
            worker.send(header, blob)
        except OSError:
            # The send never reached a worker: not an execution attempt.
            # Stop routing to this socket now (the reader thread's EOF
            # does the full worker_lost bookkeeping) or the dispatcher
            # would tight-loop the corpse until the EOF lands.
            with self._lock:
                worker.pending.pop(request.request_id, None)
                worker.dispatched_at.pop(request.request_id, None)
                self._attempts[request.request_id] = max(
                    0, self._attempts.get(request.request_id, 1) - 1)
            worker.connected.clear()
            try:
                worker.sock.close()
            except OSError:
                pass
            self._queue.put(request, force=True)
            return
        self._dispatch_total.inc()
        self._inflight_g.set(self._total_pending())

    def _pick_worker(self, key: str) -> Optional[_Worker]:
        with self._lock:
            for worker_id in self._ring.preferred(key):
                worker = self._workers.get(worker_id)
                if worker is not None and worker.live:
                    return worker
            # Ring empty (all lost): any connected, non-draining worker.
            for worker in self._workers.values():
                if worker.live:
                    return worker
        return None

    # ------------------------------------------------------------------ #
    # Worker processes

    def _spawn_worker(self) -> _Worker:
        index = next(self._worker_seq)
        worker_id = f"w{index}"
        argv = [sys.executable, "-m", "repro.cluster.worker",
                "--connect", str(self._port),
                "--worker-id", worker_id,
                "--threads", str(self.worker_threads)]
        if self.cache_dir is not None:
            argv += ["--cache-dir", str(self.cache_dir)]
        if self.capacity is not None:
            argv += ["--capacity", str(self.capacity)]
        if self.telemetry_interval_s > 0:
            argv += ["--telemetry-interval-s",
                     str(self.telemetry_interval_s)]
        if tracer().enabled:
            argv += ["--obs"]
        if self.chaos_chip_crash > 0:
            # Every worker carries the fault budget: hash routing may
            # concentrate the whole mix on one worker, and a budget
            # armed on an idle process would never fire.  Workers
            # refund faults that don't land, so each loaded worker
            # injects at most chaos_chip_crash faults.
            argv += ["--chaos-chip-crash", str(self.chaos_chip_crash),
                     "--chaos-cycle", str(self.chaos_cycle)]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH",
                                                            "")
        env[TOKEN_ENV] = self._token
        proc = subprocess.Popen(argv, env=env)
        worker = _Worker(worker_id, index, proc)
        worker.token = self._token
        with self._lock:
            self._workers[worker_id] = worker
        return worker

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.settimeout(5)
            try:
                header, _blob = recv_frame(sock,
                                           token=self._token or None)
            except (ConnectionClosed, ProtocolError, OSError):
                sock.close()
                continue
            if header.get("kind") != "hello" \
                    or header.get("token") != self._token:
                sock.close()
                continue
            worker_id = str(header.get("worker_id"))
            with self._lock:
                worker = self._workers.get(worker_id)
            if worker is None or worker.connected.is_set() \
                    or worker.dead or worker.retired:
                # Unknown id, duplicate hello, or a reconnect attempt
                # from a worker the router already failed over (its
                # replacement is spawning): refuse, the process exits
                # cleanly once its reconnect budget drains.
                sock.close()
                continue
            sock.settimeout(None)
            worker.sock = sock
            worker.last_pong = time.monotonic()
            worker.connected.set()
            with self._lock:
                self._ring.add(worker_id)
            self._workers_g.set(len(self._live_workers()))
            self._record_cluster(
                "worker_spawned", worker=worker_id,
                detail={"pid": header.get("pid"),
                        "ring_size": len(self._ring)})
            # Hello-time key replication: the worker validates key
            # versions against the same vault view as the router.
            self._replicate_keys([worker])
            worker.reader = threading.Thread(
                target=self._reader_loop, args=(worker,),
                name=f"cluster-read-{worker_id}", daemon=True)
            worker.reader.start()

    def _reader_loop(self, worker: _Worker) -> None:
        while True:
            try:
                header, blob = recv_frame(worker.sock,
                                          token=self._token or None)
            except (ConnectionClosed, ProtocolError, OSError):
                break
            kind = header.get("kind")
            if kind == "result":
                self._on_result(worker, header, blob)
            elif kind == "pong":
                worker.last_pong = time.monotonic()
            elif kind == "journal":
                try:
                    rows = pickle.loads(blob)
                except Exception:
                    rows = []
                if rows:
                    self._recorder.absorb(rows, worker=worker.id)
            elif kind == "telemetry":
                self._on_telemetry(worker, header, blob)
            elif kind in ("stats_reply", "drained"):
                self._on_stats(worker, header, blob,
                               drained=kind == "drained")
        self._on_worker_lost(worker)

    def _on_telemetry(self, worker: _Worker, header: dict,
                      blob: bytes) -> None:
        if self.live is None:
            return
        try:
            delta = unpack_telemetry(header, blob)
        except ProtocolError:
            return
        if delta:
            self.live.ingest_delta(worker.id, delta,
                                   now=header.get("unix"))

    def _on_stats(self, worker: _Worker, header: dict, blob: bytes,
                  drained: bool) -> None:
        try:
            payload = pickle.loads(blob)
        except Exception:
            payload = {}
        rows = payload.get("journal") or []
        if rows:
            self._recorder.absorb(rows, worker=worker.id)
        worker.snapshot = payload.get("snapshot") or worker.snapshot
        worker.cache = payload.get("cache") or worker.cache
        if self.live is not None and payload.get("snapshot"):
            # Poll fallback: cumulative snapshots land in the same store
            # as the streamed deltas (idempotent — both are absolute).
            self.live.ingest(worker.id, worker.snapshot)
        waiter = self._stats_waiters.pop(worker.id, None)
        if waiter is not None:
            waiter.set()
        if drained:
            worker.drained.set()

    def _on_result(self, worker: _Worker, header: dict,
                   blob: bytes) -> None:
        request_id = header.get("request_id")
        with self._lock:
            request = worker.pending.pop(request_id, None)
            dispatched_at = worker.dispatched_at.pop(request_id, None)
        if request is None:
            return  # already resolved (e.g. raced with a timeout)
        self._inflight_g.set(self._total_pending())
        try:
            result = unpack_result(header, blob)
        except Exception as exc:
            self._fail_or_retry(request, f"undecodable result: {exc}")
            return
        now = time.monotonic()
        if header.get("retryable") and not result.ok:
            # Worker refused (draining race): not a real failure.
            self._fail_or_retry(request, result.error or "worker refused")
            return
        if request.expired(now):
            self._resolve_timeout(request, now, stage="dispatched",
                                  shard=worker.index)
            return
        queue_s = ((dispatched_at or now)
                   - (request.submitted_at or now))
        latency = LatencyBreakdown(
            queue_s=max(0.0, queue_s),
            execute_s=result.latency.execute_s,
            total_s=now - (request.submitted_at or now))
        final = RequestResult(
            request_id=request.request_id, name=request.label,
            status=result.status, latency=latency,
            attempts=self._attempts.get(request.request_id, 1),
            shard=worker.index, batch_size=result.batch_size,
            cache=result.cache, cycles=result.cycles,
            error=result.error, cost=result.cost)
        self._queue_wait_h.observe(latency.queue_s)
        self._execute_h.observe(latency.execute_s)
        self._finish(request, final)

    def _fail_or_retry(self, request: InferenceRequest,
                       error: str) -> None:
        attempts = self._attempts.get(request.request_id, 1)
        if attempts > self.max_retries:
            now = time.monotonic()
            result = RequestResult(
                request_id=request.request_id, name=request.label,
                status=RequestStatus.FAILED,
                latency=LatencyBreakdown(
                    total_s=now - (request.submitted_at or now)),
                attempts=attempts, error=error)
            self._finish(request, result)
            return
        self._retries_total.inc()
        self._queue.put(request, force=True)

    def _on_worker_lost(self, worker: _Worker) -> None:
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
            self._ring.remove(worker.id)
            orphans = list(worker.pending.values())
            worker.pending.clear()
            worker.dispatched_at.clear()
        waiter = self._stats_waiters.pop(worker.id, None)
        if waiter is not None:
            waiter.set()
        worker.drained.set()
        self._workers_g.set(len(self._live_workers()))
        if worker.retired or self._stopping:
            self._record_cluster("worker_exit", worker=worker.id,
                                 detail={"pid": worker.proc.pid})
            return
        self._deaths_total.inc()
        self._record_cluster(
            "worker_lost", worker=worker.id,
            detail={"pid": worker.proc.pid,
                    "orphaned_requests": len(orphans),
                    "ring_size": len(self._ring)})
        if self.live is not None:
            # Post-mortem bundle first (the worker's last telemetry is
            # still in the store), then drop the dead source so its
            # gauges stop contributing to cluster levels.
            if self.live.flight is not None:
                self.live.flight.dump(
                    "worker_death", key=worker.id,
                    extra={"pid": worker.proc.pid,
                           "orphaned_requests": len(orphans)})
            self.live.forget(worker.id)
        # Zero-loss failover: everything in flight on the dead worker
        # goes back through the dispatcher to the ring's survivors.
        for request in orphans:
            self._requeued_total.inc()
            self._record_cluster(
                "requeued", worker=worker.id,
                detail={"request_id": request.request_id,
                        "name": request.label})
            self._fail_or_retry(request,
                                f"worker {worker.id} died mid-request")
        self._inflight_g.set(self._total_pending())

    # ------------------------------------------------------------------ #
    # Monitor: heartbeats, respawn, autoscale, stats polling

    def _monitor_loop(self) -> None:
        last_stats = 0.0
        while not self._monitor_stop.wait(self.heartbeat_s):
            now = time.monotonic()
            for worker in self._live_workers():
                try:
                    worker.send({"kind": "ping"})
                except OSError:
                    pass
                if now - worker.last_pong > self.liveness_timeout_s:
                    # Hung worker: kill it; the reader's EOF path does
                    # the failover bookkeeping.
                    worker.proc.kill()
            self._reap_and_respawn()
            self._autoscale_tick()
            if now - last_stats >= self.stats_interval_s:
                last_stats = now
                self._poll_stats(timeout=0)
            if self.live is not None:
                try:
                    self.live.tick()
                except Exception:   # pragma: no cover - keep monitoring
                    pass

    def _reap_and_respawn(self) -> None:
        if self._stopping or not self._spawn_enabled:
            return
        with self._lock:
            live_or_starting = [
                w for w in self._workers.values()
                if not w.dead and not w.retired and not w.draining
                and w.proc.poll() is None
            ]
            deficit = self._target - len(live_or_starting)
        for _ in range(max(0, deficit)):
            self._spawn_worker()

    def _autoscale_tick(self) -> None:
        if self._autoscaler is None or self._stopping:
            return
        live = self._live_workers()
        state = AutoscalerState(workers=len(live),
                                queue_depth=self._queue.depth(),
                                inflight=self._total_pending())
        target = self._autoscaler.decide(state)
        if target > self._target:
            self._autoscale_total["up"].inc()
            self._record_cluster("scale_up",
                                 detail={"from": self._target,
                                         "to": target, **vars(state)})
            self._target = target
        elif target < self._target:
            self._autoscale_total["down"].inc()
            self._record_cluster("scale_down",
                                 detail={"from": self._target,
                                         "to": target, **vars(state)})
            self._target = target
            self._retire_one()

    def _retire_one(self) -> None:
        """Gracefully drain the newest live worker out of the fleet."""
        with self._lock:
            live = [w for w in self._workers.values() if w.live]
            if len(live) <= 1:
                return
            worker = max(live, key=lambda w: w.index)
            worker.draining = True
            worker.retired = True
            self._ring.remove(worker.id)
        self._workers_g.set(len(self._live_workers()))
        try:
            worker.send({"kind": "drain"})
        except OSError:
            return

        def _finish_retirement():
            worker.drained.wait(timeout=30)
            try:
                worker.send({"kind": "shutdown"})
            except OSError:
                pass

        threading.Thread(target=_finish_retirement, daemon=True).start()

    def _poll_stats(self, timeout: float = 2.0) -> None:
        """Ask every live worker for metrics + fresh journal rows; with
        ``timeout > 0`` wait for the replies (trace()/metrics use this
        for a consistent cut)."""
        waiters = []
        for worker in self._live_workers():
            event = threading.Event()
            self._stats_waiters[worker.id] = event
            try:
                worker.send({"kind": "stats"})
            except OSError:
                self._stats_waiters.pop(worker.id, None)
                continue
            waiters.append(event)
        if timeout > 0:
            deadline = time.monotonic() + timeout
            for event in waiters:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                event.wait(remaining)

    # ------------------------------------------------------------------ #
    # Resolution

    def _record_cluster(self, event: str, worker: Optional[str] = None,
                        detail: Optional[dict] = None) -> None:
        with tracer().use_span(self._cluster_span):
            self._recorder.record_cluster(event=event, worker=worker,
                                          detail=detail)

    def _record_trust(self, event: str, target: str = "",
                      request: Optional[InferenceRequest] = None,
                      detail: Optional[dict] = None) -> None:
        """Journal one trust decision under the request's span (so the
        rejection joins its trace) or the long-lived cluster span."""
        span = getattr(request, "span", None) or self._cluster_span
        with tracer().use_span(span):
            self._recorder.record_trust(event=event, target=target,
                                        detail=detail)

    def _on_key_event(self, event: str, record) -> None:
        """KeyVault rotation/revocation hook: journal it and push the
        refreshed signed key manifest to every live worker."""
        self._record_trust(
            "key_rotation" if event == "rotation" else "key_revocation",
            target=record.tenant,
            detail={"version": record.version, "key_id": record.key_id})
        self._replicate_keys(self._live_workers())

    def _replicate_keys(self, workers) -> int:
        """Ship the vault's signed key manifest to ``workers``."""
        if self.keyvault is None:
            return 0
        doc = self.keyvault.manifest()
        blob = pickle.dumps(doc, pickle.HIGHEST_PROTOCOL)
        shipped = 0
        for worker in workers:
            try:
                worker.send({"kind": "keys"}, blob)
                shipped += 1
            except OSError:
                continue
        if shipped:
            self._record_trust(
                "keys_replicated", target="cluster",
                detail={"workers": shipped,
                        "records": len(doc.get("records", ()))})
        return shipped

    def _bill_tenant(self, request: InferenceRequest,
                     result: RequestResult) -> None:
        """Per-tenant cost attribution: every terminal outcome counts a
        request; executed ones also bill their cost rollup (schema 8)."""
        m = self.metrics
        tenant = request.tenant
        m.counter("cluster_tenant_requests_total",
                  "Requests by tenant and terminal status.",
                  labels={"tenant": tenant,
                          "status": result.status.value}).inc()
        cost = result.cost or {}
        if not cost:
            return
        m.counter("cluster_tenant_sim_cycles_total",
                  "Simulated accelerator cycles billed to the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("sim_cycles", 0) or 0)
        m.counter("cluster_tenant_bootstraps_total",
                  "Bootstrap operations billed to the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("bootstraps", 0) or 0)
        m.counter("cluster_tenant_bytes_total",
                  "HBM + network bytes moved for the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("bytes", 0) or 0)
        m.counter("cluster_tenant_compile_seconds_total",
                  "Compile wall seconds billed (cache misses only).",
                  labels={"tenant": tenant}).inc(
                      cost.get("compile_s", 0.0) or 0.0)

    def _finish(self, request: InferenceRequest,
                result: RequestResult) -> None:
        self._requests_total[result.status].inc()
        self._latency_h.observe(result.latency.total_s)
        self._bill_tenant(request, result)
        tr = tracer()
        for span in (request.queue_span, request.span):
            if span is not None:
                span.finish()
        if request.span is not None:
            request.span.set_attr("status", result.status.value)
            request.span.set_attr("shard", result.shard)
        with tr.use_span(request.span):
            self._recorder.record_serve(
                job=request.label, status=result.status.value,
                machine=request.machine_name or "", shard=result.shard,
                attempts=result.attempts, batch_size=result.batch_size,
                cache=result.cache, seconds=result.latency.total_s,
                queue_s=result.latency.queue_s,
                execute_s=result.latency.execute_s,
                tenant=request.tenant, cost=result.cost)
        self._attempts.pop(request.request_id, None)
        with self._pending_cond:
            handle = self._handles.pop(request.request_id, None)
            self._pending_cond.notify_all()
        if handle is not None:
            handle.resolve(result)

    def _elapsed(self, request: InferenceRequest, now: float) -> float:
        return now - (request.submitted_at or now)

    def _resolve_timeout(self, request, now: float, *, stage: str,
                         shard: Optional[int] = None) -> None:
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.TIMEOUT,
            latency=LatencyBreakdown(total_s=self._elapsed(request, now)),
            attempts=self._attempts.get(request.request_id, 0),
            shard=shard,
            error=f"deadline of {request.deadline_s}s exceeded "
                  f"while {stage}")
        self._finish(request, result)

    def _resolve_rejected(self, request, reason: str) -> None:
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.REJECTED,
            latency=LatencyBreakdown(
                total_s=self._elapsed(request, time.monotonic())),
            error=reason)
        self._finish(request, result)

    # ------------------------------------------------------------------ #
    # Introspection (CinnamonServer-compatible surface)

    @property
    def queue_depth(self) -> int:
        return self._queue.depth()

    @property
    def num_workers(self) -> int:
        return len(self._live_workers())

    def worker_ids(self) -> List[str]:
        return [w.id for w in self._live_workers()]

    def _worker_table(self) -> List[dict]:
        """Fleet rows for the live status document (obs top)."""
        with self._lock:
            workers = list(self._workers.values())
        return [{"id": w.id, "index": w.index, "pid": w.proc.pid,
                 "live": w.live, "draining": w.draining,
                 "dead": w.dead, "pending": len(w.pending)}
                for w in workers]

    def cache_stats(self) -> dict:
        """Summed compile-cache counters across worker processes."""
        if not self._stopping:
            self._poll_stats(timeout=2.0)
        return self._cache_totals()

    def _cache_totals(self) -> dict:
        totals: Dict[str, int] = {}
        with self._lock:
            caches = [dict(w.cache) for w in self._workers.values()]
        for cache in caches:
            for field, value in cache.items():
                totals[field] = totals.get(field, 0) + value
        return totals

    def metrics_snapshot(self) -> dict:
        """Merged cluster snapshot: the router's own registry plus every
        worker's last-polled snapshot (counters/gauges summed,
        histograms count-weight merged)."""
        if not self._stopping:
            self._poll_stats(timeout=2.0)
        with self._lock:
            worker_snaps = [dict(w.snapshot)
                            for w in self._workers.values() if w.snapshot]
        return merge_snapshots([self.metrics.snapshot()] + worker_snaps)

    def trace(self) -> dict:
        """The merged journal: router-side serve/cluster rows plus every
        absorbed worker row (compile/simulate), trace_ids intact."""
        if not self._stopping:
            self._poll_stats(timeout=2.0)
        return self._recorder.document(self._cache_totals())

    def export_trace(self, path):
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.trace(), indent=2))
        return path

    def metrics_prometheus(self) -> str:
        return self.metrics.render_prometheus()

    # ------------------------------------------------------------------ #
    # Chaos hooks (tests / loadgen --chaos-kill-worker)

    def kill_worker(self, worker_id: Optional[str] = None) -> Optional[str]:
        """SIGKILL one live worker (default: the one with the most
        in-flight requests — the most disruptive choice).  Returns the
        killed worker's id, or ``None`` if none are live."""
        with self._lock:
            live = [w for w in self._workers.values() if w.live]
            if worker_id is not None:
                live = [w for w in live if w.id == worker_id]
            if not live:
                return None
            victim = max(live, key=lambda w: len(w.pending))
        victim.proc.kill()
        return victim.id
