"""Per-tenant token-bucket quotas and fair-share admission.

The cluster front door layers two policies over the single-server
:class:`~repro.serve.queue.AdmissionQueue` semantics (same exceptions,
same close/drain contract):

* **Token-bucket quotas** — each tenant owns a bucket refilled at
  ``rate_per_s`` up to ``burst``; an empty bucket rejects the submit
  with :class:`QuotaExceededError` (explicit backpressure, never
  blocking, exactly like queue saturation).
* **Fair share** — dequeue round-robins across tenants that have queued
  work, so one chatty tenant cannot starve the others even when its
  quota admits a flood.  Within a tenant, ordering is the familiar
  (priority, admission sequence).

``put(..., force=True)`` bypasses the closed check *and* quotas: it is
the router's internal requeue path for failover after a worker death —
a request already admitted once must not be double-charged or dropped
because the queue closed for drain meanwhile.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..serve.queue import Empty, QueueClosedError, QueueSaturatedError
from ..serve.request import InferenceRequest

__all__ = [
    "TenantQuota", "TokenBucket", "QuotaExceededError", "FairShareQueue",
    "Empty", "QueueClosedError", "QueueSaturatedError",
]


class QuotaExceededError(RuntimeError):
    """Raised by ``put`` when the tenant's token bucket is empty."""

    def __init__(self, tenant: str, retry_after_s: float):
        super().__init__(
            f"tenant {tenant!r} exceeded its request quota; "
            f"retry in ~{retry_after_s:.2f}s")
        self.tenant = tenant
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class TenantQuota:
    """Admission budget for one tenant.

    ``rate_per_s`` is the sustained request rate; ``burst`` the bucket
    capacity (how far a tenant may run ahead of its sustained rate).
    """

    rate_per_s: float
    burst: float

    def bucket(self, clock=time.monotonic) -> "TokenBucket":
        return TokenBucket(self.rate_per_s, self.burst, clock=clock)


class TokenBucket:
    """Classic token bucket; thread-safe; monotonic-clock driven."""

    def __init__(self, rate_per_s: float, burst: float,
                 clock=time.monotonic):
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate_per_s and burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst,
                           self._tokens + elapsed * self.rate_per_s)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate_per_s)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class FairShareQueue:
    """Bounded multi-tenant admission queue with round-robin dequeue.

    Drop-in for :class:`~repro.serve.queue.AdmissionQueue` (same
    ``put``/``get``/``close``/``depth`` surface, same exceptions) plus
    tenant awareness.  ``maxsize`` bounds the *total* queued depth
    across tenants; quotas bound per-tenant admission *rate*.
    """

    def __init__(self, maxsize: int = 0,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: Optional[TenantQuota] = None,
                 clock=time.monotonic):
        self.maxsize = maxsize
        self.default_quota = default_quota
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        for tenant, quota in (quotas or {}).items():
            self._buckets[tenant] = quota.bucket(clock)
        self._heaps: Dict[str, List[Tuple[int, int, InferenceRequest]]] = {}
        self._rotation: List[str] = []   # round-robin order of tenants
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.rejected_quota = 0          # counters for the cluster view
        self.rejected_saturated = 0

    # ------------------------------------------------------------------ #

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._buckets[tenant] = quota.bucket(self._clock)

    def _bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None and self.default_quota is not None:
            bucket = self.default_quota.bucket(self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def put(self, request: InferenceRequest, force: bool = False) -> None:
        """Admit ``request`` or raise (never blocks).

        ``force`` is the internal requeue path: skips the closed check
        and the quota charge (the request was already admitted once).
        """
        with self._lock:
            if self._closed and not force:
                raise QueueClosedError("admission queue is closed")
            depth = sum(len(h) for h in self._heaps.values())
            if not force and self.maxsize > 0 and depth >= self.maxsize:
                self.rejected_saturated += 1
                raise QueueSaturatedError(depth, self.maxsize)
            if not force:
                bucket = self._bucket_for(request.tenant)
                if bucket is not None and not bucket.try_acquire():
                    self.rejected_quota += 1
                    raise QuotaExceededError(
                        request.tenant, bucket.retry_after_s())
            heap = self._heaps.get(request.tenant)
            if heap is None:
                heap = self._heaps[request.tenant] = []
                self._rotation.append(request.tenant)
            heapq.heappush(
                heap, (int(request.priority), next(self._seq), request))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> InferenceRequest:
        """Pop from the next tenant in round-robin order.

        Raises :class:`Empty` on timeout, or immediately once the queue
        is both closed and drained.
        """
        with self._not_empty:
            while True:
                request = self._pop_locked()
                if request is not None:
                    return request
                if self._closed:
                    raise Empty
                if not self._not_empty.wait(timeout):
                    raise Empty

    def _pop_locked(self) -> Optional[InferenceRequest]:
        for index, tenant in enumerate(self._rotation):
            heap = self._heaps.get(tenant)
            if heap:
                request = heapq.heappop(heap)[2]
                # Served tenant goes to the back of the rotation.
                self._rotation.append(self._rotation.pop(index))
                return request
        return None

    def close(self) -> None:
        """Stop admitting; queued requests remain retrievable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        with self._lock:
            return sum(len(h) for h in self._heaps.values())

    def depth_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return {tenant: len(heap)
                    for tenant, heap in self._heaps.items() if heap}

    def __len__(self) -> int:
        return self.depth()
