"""Machine-level fault model: schedules and typed failures.

A :class:`FaultSchedule` scripts *machine* faults — a chip dying, a
network link losing bandwidth or severing, a vector cluster slowing down
— against a simulated run.  Faults are pinned to a cycle and a chip, so
the same schedule replays identically (the recovery tests depend on
this); :meth:`FaultSchedule.from_yield_model` instead derives per-chip
failure probabilities from the Section 7.2 defect model and samples a
schedule with a seeded RNG, which is still deterministic per seed.

Fatal faults surface as typed exceptions carrying the exact failure
cycle and every chip's progress at detection time, which is what the
recovery orchestrator (:mod:`repro.resilience.recovery`) needs to pick a
checkpoint and re-partition the work onto the survivors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arch.yield_model import DEFECT_DENSITY_PER_CM2, die_yield

#: Fault kinds a schedule may carry.
CHIP_CRASH = "chip_crash"
LINK_DEGRADE = "link_degrade"
LINK_SEVER = "link_sever"
CLUSTER_SLOW = "cluster_slow"

FAULT_KINDS = (CHIP_CRASH, LINK_DEGRADE, LINK_SEVER, CLUSTER_SLOW)

#: Die area of one Cinnamon chip (Table 3), used by the yield sampler.
CINNAMON_DIE_AREA_MM2 = 223.18


class MachineFaultError(RuntimeError):
    """Base of all fatal machine faults raised by the simulator.

    Carries everything recovery needs: which chip, the scheduled cycle,
    each chip's instruction frontier (``progress``: chip id -> program
    counter) and local completion time at detection.
    """

    def __init__(self, message: str, *, chip: int, cycle: int,
                 machine: str = "",
                 progress: Optional[Dict[int, int]] = None,
                 per_chip_cycles: Optional[Dict[int, int]] = None,
                 fault: Optional["MachineFault"] = None):
        super().__init__(message)
        self.chip = chip
        self.cycle = cycle
        self.machine = machine
        self.progress = dict(progress or {})
        self.per_chip_cycles = dict(per_chip_cycles or {})
        self.fault = fault

    @property
    def completed_instructions(self) -> int:
        return sum(self.progress.values())


class ChipFailure(MachineFaultError):
    """A chip died mid-run (the die the yield model says will fail)."""


class LinkFailure(MachineFaultError):
    """A network link severed; the chip is unreachable mid-collective."""


class WatchdogTimeout(TimeoutError):
    """A simulation exceeded its wall-clock deadline and was cancelled."""

    def __init__(self, message: str, *, deadline_s: float,
                 elapsed_s: float, machine: str = ""):
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.machine = machine


@dataclass(frozen=True)
class MachineFault:
    """One scheduled fault: ``kind`` hits ``chip`` at ``cycle``.

    ``factor`` scales the affected resource for the non-fatal kinds: the
    link's bytes/cycle for ``link_degrade``, the vector occupancy for
    ``cluster_slow``.
    """

    kind: str
    chip: int
    cycle: int
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")
        if self.kind in (LINK_DEGRADE, CLUSTER_SLOW) and self.factor <= 0:
            raise ValueError(f"{self.kind} needs a positive factor")

    @property
    def fatal(self) -> bool:
        return self.kind in (CHIP_CRASH, LINK_SEVER)


@dataclass
class FaultSchedule:
    """A deterministic script of machine faults for one simulated run.

    Build fluently::

        FaultSchedule().chip_crash(chip=3, cycle=20_000) \\
                       .link_degrade(chip=1, cycle=5_000, factor=0.25)

    or sample one from the yield model::

        FaultSchedule.from_yield_model("cinnamon_12", horizon_cycles=1e6,
                                       seed=7)

    The schedule itself is immutable during a run — the simulator copies
    the fault list and consumes its copy — so one schedule can be
    replayed any number of times.
    """

    faults: List[MachineFault] = field(default_factory=list)
    seed: Optional[int] = None

    # ------------------------- fluent builders ------------------------ #

    def add(self, fault: MachineFault) -> "FaultSchedule":
        self.faults.append(fault)
        return self

    def chip_crash(self, chip: int, cycle: int) -> "FaultSchedule":
        return self.add(MachineFault(CHIP_CRASH, chip, cycle))

    def link_sever(self, chip: int, cycle: int) -> "FaultSchedule":
        return self.add(MachineFault(LINK_SEVER, chip, cycle))

    def link_degrade(self, chip: int, cycle: int,
                     factor: float = 0.5) -> "FaultSchedule":
        return self.add(MachineFault(LINK_DEGRADE, chip, cycle, factor))

    def cluster_slow(self, chip: int, cycle: int,
                     factor: float = 2.0) -> "FaultSchedule":
        return self.add(MachineFault(CLUSTER_SLOW, chip, cycle, factor))

    # ------------------------------------------------------------------ #

    @classmethod
    def from_yield_model(cls, machine, horizon_cycles: int, seed: int = 0,
                         die_area_mm2: float = CINNAMON_DIE_AREA_MM2,
                         defect_scale: float = 1.0) -> "FaultSchedule":
        """Sample a schedule from the Section 7.2 defect model.

        Each chip fails within ``horizon_cycles`` with probability
        ``1 - yield(area)`` (scaled by ``defect_scale`` so tests can force
        faults without pretending dies are that bad); failure cycles are
        uniform over the horizon.  Same ``seed`` -> same schedule.
        """
        from ..sim.config import resolve_machine

        resolved = resolve_machine(machine)
        rng = random.Random(seed)
        p_fail = min(1.0, defect_scale * (1.0 - die_yield(
            die_area_mm2, d0=DEFECT_DENSITY_PER_CM2)))
        schedule = cls(seed=seed)
        for chip in range(resolved.num_chips):
            if rng.random() < p_fail:
                schedule.chip_crash(chip, rng.randrange(
                    1, max(2, int(horizon_cycles))))
        return schedule

    # ------------------------------------------------------------------ #

    def for_survivors(self, dead_chips: Sequence[int],
                      num_chips: Optional[int] = None) -> "FaultSchedule":
        """The schedule that applies after losing ``dead_chips``.

        Drops faults on dead chips and faults aimed beyond the surviving
        chip count (the degraded machine renumbers chips 0..n-1).
        """
        dead = set(dead_chips)
        survivors = [
            f for f in self.faults
            if f.chip not in dead
            and (num_chips is None or f.chip < num_chips)
        ]
        return FaultSchedule(survivors, seed=self.seed)

    def signature(self) -> str:
        """Stable identity of the schedule (for sim-cache keys/traces)."""
        parts = [f"{f.kind}:{f.chip}@{f.cycle}x{f.factor:g}"
                 for f in sorted(self.faults,
                                 key=lambda f: (f.cycle, f.chip, f.kind))]
        return ";".join(parts) or "clean"

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)


#: Inert schedule: simulating with it is identical to simulating without.
NO_MACHINE_FAULTS = FaultSchedule()
