"""Degraded-mode recovery: run a program to completion despite faults.

:class:`RecoveryOrchestrator` is the control loop that turns the pieces
of this package into the paper-level guarantee — *an encrypted inference
finishes even when a die fails mid-run*:

1. compile the program for the full machine and start simulating with a
   :class:`~repro.resilience.faults.FaultSchedule` armed and periodic
   checkpoints streaming into a :class:`CheckpointStore`;
2. when a fatal fault surfaces (:class:`ChipFailure` /
   :class:`LinkFailure`), look up the last checkpoint at or before the
   fault cycle, pick the next rung of the degrade ladder
   (:func:`repro.sim.config.degraded_machine`), and recompile the same
   program for the surviving chip count (re-partitioning every limb);
3. map the run's live values onto the new partitioning — the seq-0 data
   checkpoint holds the CRC-framed input ciphertexts, and the emulator's
   memory-image builder re-shards them for whatever machine the program
   was recompiled for — and replay on the survivors, with the fault
   schedule filtered down to chips that still exist;
4. record a ``kind == "recovery"`` entry (trace schema 3) with the
   detection / recompile / replay wall-time split.

The loop walks the ladder until the run completes or ``max_recoveries``
is exhausted, so a 12-chip machine losing two dies lands on 4 chips and
still produces bit-valid ciphertext outputs.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.tracing import tracer
from .checkpoint import Checkpoint, CheckpointStore
from .faults import FaultSchedule, MachineFaultError

__all__ = [
    "RecoveryEvent",
    "RecoveryExhausted",
    "ResilientRunResult",
    "RecoveryOrchestrator",
    "run_with_recovery",
]


class RecoveryExhausted(RuntimeError):
    """The degrade ladder ran out before the program completed."""

    def __init__(self, message: str, *, events=None, last_error=None):
        super().__init__(message)
        self.events = list(events or [])
        self.last_error = last_error


@dataclass(frozen=True)
class RecoveryEvent:
    """One fault -> degrade -> replay transition (mirrors the trace)."""

    fault: str
    chip: Optional[int]
    cycle: int
    machine_from: str
    machine_to: str
    checkpoint_cycle: int = 0
    lost_cycles: int = 0
    detection_s: float = 0.0
    recompile_s: float = 0.0
    replay_s: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "fault": self.fault,
            "chip": self.chip,
            "cycle": self.cycle,
            "machine_from": self.machine_from,
            "machine_to": self.machine_to,
            "checkpoint_cycle": self.checkpoint_cycle,
            "lost_cycles": self.lost_cycles,
            "detection_s": self.detection_s,
            "recompile_s": self.recompile_s,
            "replay_s": self.replay_s,
        }


@dataclass
class ResilientRunResult:
    """What a fault-tolerant run produced, and what it survived."""

    run_id: str
    result: object                       # SimulationResult of the final run
    compiled: object                     # CompiledProgram that completed
    machine: str                         # machine the run finished on
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    checkpoints_taken: int = 0
    outputs: Optional[Dict[str, object]] = None   # decrypted-able cts

    @property
    def recovered(self) -> bool:
        return bool(self.recoveries)

    @property
    def degraded(self) -> bool:
        return any(e.machine_from != e.machine_to for e in self.recoveries)


class RecoveryOrchestrator:
    """Runs compiled programs to completion across machine faults.

    ``session`` is any :class:`repro.runtime.CinnamonSession` (a private
    one is created when omitted) — degraded recompiles go through its
    compile cache, so walking the same ladder twice is nearly free.
    ``store`` receives every checkpoint; ``max_recoveries`` bounds ladder
    descents per run; ``checkpoint_interval`` is in simulated cycles.
    """

    def __init__(self, session=None, store: CheckpointStore = None, *,
                 max_recoveries: int = 2,
                 checkpoint_interval: Optional[int] = 10_000):
        if session is None:
            from ..runtime.session import CinnamonSession

            session = CinnamonSession()
        self.session = session
        self.store = store if store is not None else CheckpointStore()
        self.max_recoveries = max_recoveries
        self.checkpoint_interval = checkpoint_interval

    # ------------------------------------------------------------------ #

    def run(self, program, params, machine=None, *,
            fault_schedule: FaultSchedule = None,
            inputs: Dict[str, object] = None, context=None,
            plaintexts: Dict[str, object] = None,
            run_id: str = None, job: str = None,
            emulate_outputs: bool = False,
            watchdog_s: Optional[float] = None) -> ResilientRunResult:
        """Compile + simulate ``program``, surviving scheduled faults.

        With ``emulate_outputs`` (requires ``inputs`` and ``context``),
        the final — possibly degraded — compiled program is also run
        through the functional emulator on the checkpointed input
        ciphertexts, so callers can verify the recovered run decrypts to
        the same values as a fault-free one.
        """
        run_id = run_id or f"run-{uuid.uuid4().hex[:12]}"
        label = job or getattr(program, "name", "resilient-run")
        # The whole ladder shares one span; every compile/simulate it
        # performs (and every recovery row it records) joins that trace.
        with tracer().start_span(f"recover:{label}", kind="recovery",
                                 attrs={"run_id": run_id}) as span:
            result = self._run_ladder(
                program, params, machine, fault_schedule=fault_schedule,
                inputs=inputs, context=context, plaintexts=plaintexts,
                run_id=run_id, label=label,
                emulate_outputs=emulate_outputs, watchdog_s=watchdog_s)
            span.set_attr("machine", result.machine)
            span.set_attr("recoveries", len(result.recoveries))
            return result

    def _run_ladder(self, program, params, machine, *, fault_schedule,
                    inputs, context, plaintexts, run_id, label,
                    emulate_outputs, watchdog_s) -> ResilientRunResult:
        from ..sim.config import degraded_machine, resolve_machine

        schedule = fault_schedule or FaultSchedule()
        current = resolve_machine(machine, default_chips=4)

        compiled = self.session.compile(program, params, machine=current,
                                        job=label)

        # Seq-0 data checkpoint: the run's inputs, CRC-framed.  This is
        # the frontier that survives a re-partitioning — simulator
        # snapshots are machine-shaped and die with the machine.
        payload: Dict[str, bytes] = {}
        if inputs:
            payload = Checkpoint.serialize_values(inputs, params)
        self.store.save(Checkpoint(
            run_id=run_id, seq=0, cycle=0, machine=current.name,
            fingerprint=compiled.cache_key or "", payload=payload))
        seq = 1
        checkpoints_taken = 1
        events: List[RecoveryEvent] = []
        trace_entries: List[dict] = []

        for attempt in range(self.max_recoveries + 1):
            def hook(snapshot):
                nonlocal seq, checkpoints_taken
                self.store.save(Checkpoint(
                    run_id=run_id, seq=seq, cycle=snapshot.cycle,
                    machine=snapshot.machine,
                    fingerprint=compiled.cache_key or "",
                    frontier=dict(snapshot.frontier),
                    payload=payload, snapshot=snapshot))
                seq += 1
                checkpoints_taken += 1

            replay_started = time.perf_counter()
            try:
                result = self.session.simulate(
                    compiled, current, job=label,
                    fault_schedule=schedule,
                    checkpoint_interval=self.checkpoint_interval,
                    checkpoint_hook=hook,
                    watchdog_s=watchdog_s)
            except MachineFaultError as exc:
                detected = time.perf_counter()
                if attempt >= self.max_recoveries:
                    raise RecoveryExhausted(
                        f"{label}: fault on {current.name} chip "
                        f"{exc.chip} after {attempt} recoveries "
                        "(budget exhausted)", events=events,
                        last_error=exc) from exc
                restart = self.store.latest(run_id, max_cycle=exc.cycle)
                checkpoint_cycle = restart.cycle if restart else 0
                try:
                    degraded = degraded_machine(current, dead_chips=1)
                except ValueError:
                    raise RecoveryExhausted(
                        f"{label}: no degraded configuration left below "
                        f"{current.name}", events=events,
                        last_error=exc) from exc
                step = tracer().begin(
                    f"ladder:{current.name}->{degraded.name}",
                    kind="recovery-step",
                    attrs={"fault": exc.fault.kind if exc.fault
                           else "unknown",
                           "chip": exc.chip, "cycle": exc.cycle,
                           "checkpoint_cycle": checkpoint_cycle})
                recompile_started = time.perf_counter()
                with tracer().use_span(step):
                    compiled = self.session.compile(
                        program, params, machine=degraded, job=label)
                    recompile_s = time.perf_counter() - recompile_started
                    event = RecoveryEvent(
                        fault=exc.fault.kind if exc.fault else "unknown",
                        chip=exc.chip, cycle=exc.cycle,
                        machine_from=current.name, machine_to=degraded.name,
                        checkpoint_cycle=checkpoint_cycle,
                        lost_cycles=max(0, exc.cycle - checkpoint_cycle),
                        detection_s=detected - replay_started,
                        recompile_s=recompile_s)
                    events.append(event)
                    trace_entries.append(self.session.record_recovery(
                        job=label, **event.as_dict()))
                step.finish()
                schedule = schedule.for_survivors(
                    [exc.chip] if exc.chip is not None else [],
                    num_chips=degraded.num_chips)
                current = degraded
                continue
            replay_s = time.perf_counter() - replay_started
            if events:
                # Stamp the final replay time onto the last recovery,
                # both locally and in the already-recorded trace entry
                # (the recorder holds the dict by reference).
                events[-1] = RecoveryEvent(
                    **{**events[-1].as_dict(), "replay_s": replay_s})
                trace_entries[-1]["replay_s"] = replay_s
            outputs = None
            if emulate_outputs:
                if inputs is None or context is None:
                    raise ValueError(
                        "emulate_outputs requires inputs and context")
                restored = self.store.latest(run_id, max_cycle=0)
                live = (restored.restore_values(params)
                        if restored and restored.payload else dict(inputs))
                outputs = compiled.emulate(live, context=context,
                                           plaintexts=plaintexts)
            return ResilientRunResult(
                run_id=run_id, result=result, compiled=compiled,
                machine=current.name, recoveries=events,
                checkpoints_taken=checkpoints_taken, outputs=outputs)

        raise AssertionError("unreachable")  # pragma: no cover


def run_with_recovery(program, params, machine=None, **kwargs
                      ) -> ResilientRunResult:
    """One-shot convenience wrapper around :class:`RecoveryOrchestrator`."""
    orchestrator = RecoveryOrchestrator()
    return orchestrator.run(program, params, machine, **kwargs)
