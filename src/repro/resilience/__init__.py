"""Machine-level fault tolerance for scale-out encrypted execution.

The paper's machine is a multi-chip package of reticle-sized dies; at
realistic defect densities some fraction of deployments *will* lose a
die or link mid-run.  This package makes the reproduction stack survive
that:

* :mod:`~repro.resilience.faults` — seeded, deterministic
  :class:`FaultSchedule` injection (chip kill, link sever/degrade,
  vector-cluster slowdown) plus the typed failures the simulator raises;
* :mod:`~repro.resilience.checkpoint` — CRC-validated, versioned
  :class:`Checkpoint` snapshots through a :class:`CheckpointStore`;
* :mod:`~repro.resilience.recovery` — the
  :class:`RecoveryOrchestrator` loop: detect, recompile for the degrade
  ladder's next rung, map checkpointed values onto the new partitioning,
  replay on the survivors.

``faults`` is imported eagerly (the simulator itself depends on it);
``checkpoint``/``recovery`` load lazily because they pull in the runtime
session, which imports the simulator — eager imports here would cycle.
"""

from .faults import (
    CHIP_CRASH,
    CLUSTER_SLOW,
    LINK_DEGRADE,
    LINK_SEVER,
    NO_MACHINE_FAULTS,
    ChipFailure,
    FaultSchedule,
    LinkFailure,
    MachineFault,
    MachineFaultError,
    WatchdogTimeout,
)

__all__ = [
    "CHIP_CRASH",
    "CLUSTER_SLOW",
    "LINK_DEGRADE",
    "LINK_SEVER",
    "NO_MACHINE_FAULTS",
    "ChipFailure",
    "FaultSchedule",
    "LinkFailure",
    "MachineFault",
    "MachineFaultError",
    "WatchdogTimeout",
    # Lazily-loaded (see __getattr__):
    "Checkpoint",
    "CheckpointStore",
    "CorruptCheckpointError",
    "CHECKPOINT_VERSION",
    "RecoveryEvent",
    "RecoveryExhausted",
    "RecoveryOrchestrator",
    "ResilientRunResult",
    "run_with_recovery",
]

_LAZY_ATTRS = {
    "Checkpoint": "checkpoint",
    "CheckpointStore": "checkpoint",
    "CorruptCheckpointError": "checkpoint",
    "CHECKPOINT_VERSION": "checkpoint",
    "RecoveryEvent": "recovery",
    "RecoveryExhausted": "recovery",
    "RecoveryOrchestrator": "recovery",
    "ResilientRunResult": "recovery",
    "run_with_recovery": "recovery",
}


def __getattr__(name):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRS))
