"""Checkpoint/restore for in-flight encrypted executions.

A :class:`Checkpoint` snapshots one run at a consistent boundary:

* the **timing frontier** — a full
  :class:`~repro.sim.simulator.SimulationSnapshot` of the cycle
  simulator (per-chip program counters, register/FU/bandwidth state), so
  a transient fault resumes mid-run instead of from cycle 0; and
* the **live data frontier** — the run's ciphertext values serialized
  through :mod:`repro.fhe.serialize` (CRC-framed), which is what maps
  onto a *different* chip partitioning after a degraded-mode recompile.

The :class:`CheckpointStore` persists snapshots as versioned, CRC32-
validated blobs (in memory or under a directory); a bit-flipped or
truncated snapshot fails loudly with :class:`CorruptCheckpointError`
instead of resuming from garbage.

Directory-backed stores additionally keep a signed
:class:`~repro.trust.manifest.ArtifactManifest` per run directory: every
saved blob is recorded (sha256 of the file bytes), every load verifies
against the manifest before deserializing, and a recorded-but-mismatched
blob is *tampering* — :meth:`CheckpointStore.load` quarantines it and
raises :class:`CorruptCheckpointError` (after reporting through
``on_tamper``), while :meth:`CheckpointStore.list` skips it read-only.
Blobs with no manifest row (pre-trust checkpoint dirs) fall back to the
CRC-only validation they were written under.
"""

from __future__ import annotations

import pickle
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..fhe.serialize import dump_ciphertext, load_ciphertext
from ..sim.simulator import SimulationSnapshot
from ..trust.errors import TamperDetectedError
from ..trust.manifest import ArtifactManifest

#: Version of the checkpoint blob layout; bump on incompatible change.
CHECKPOINT_VERSION = 1

_MAGIC = b"CNCK"
_HEADER_FMT = ">HIQ"            # version: u16, crc32: u32, body_len: u64
_HEADER_LEN = len(_MAGIC) + struct.calcsize(_HEADER_FMT)


class CorruptCheckpointError(ValueError):
    """A checkpoint blob failed its CRC/magic/version validation."""


@dataclass
class Checkpoint:
    """One recoverable snapshot of a run.

    ``payload`` maps live-value names to CRC-framed ciphertext blobs
    (:func:`repro.fhe.serialize.dump_ciphertext` output); ``snapshot``
    is the simulator's timing state when the checkpoint was taken
    mid-run (``None`` for the data-only seq-0 checkpoint written at run
    start).
    """

    run_id: str
    seq: int
    cycle: int
    machine: str
    fingerprint: str = ""            # compile cache key of the program
    frontier: Dict[int, int] = field(default_factory=dict)
    payload: Dict[str, bytes] = field(default_factory=dict)
    snapshot: Optional[SimulationSnapshot] = None
    created_unix: float = field(default_factory=time.time)
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        body = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return _MAGIC + struct.pack(_HEADER_FMT, self.version, crc,
                                    len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if not data.startswith(_MAGIC):
            raise CorruptCheckpointError("not a cinnamon checkpoint blob")
        if len(data) < _HEADER_LEN:
            raise CorruptCheckpointError("truncated checkpoint header")
        version, crc, body_len = struct.unpack(
            _HEADER_FMT, data[len(_MAGIC):_HEADER_LEN])
        if version > CHECKPOINT_VERSION:
            raise CorruptCheckpointError(
                f"checkpoint v{version} is newer than this reader "
                f"(v{CHECKPOINT_VERSION})")
        body = data[_HEADER_LEN:]
        if len(body) != body_len:
            raise CorruptCheckpointError(
                f"truncated checkpoint body: {len(body)} of {body_len} "
                "bytes")
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise CorruptCheckpointError(
                "checkpoint CRC32 mismatch: snapshot is corrupt")
        restored = pickle.loads(body)
        if not isinstance(restored, cls):
            raise CorruptCheckpointError(
                f"checkpoint body decodes to {type(restored).__name__}")
        return restored

    # ------------------------------------------------------------------ #

    def restore_values(self, params) -> Dict[str, object]:
        """Deserialize the live ciphertexts (CRC-checked per value)."""
        return {name: load_ciphertext(blob, params)
                for name, blob in self.payload.items()}

    @staticmethod
    def serialize_values(values: Dict[str, object],
                         params) -> Dict[str, bytes]:
        """CRC-framed blobs for a dict of live ciphertexts."""
        return {name: dump_ciphertext(ct, params)
                for name, ct in values.items()}


class CheckpointStore:
    """Versioned checkpoint storage, in memory or directory-backed.

    With ``root`` set, every checkpoint lands in
    ``<root>/<run_id>/ckpt-<seq>.cnmnckpt`` and survives the process;
    without it the store is a per-process dict (fast tests, transient
    runs).  ``keep`` bounds snapshots retained per run — older ones are
    pruned after each save, newest last.
    """

    SUFFIX = ".cnmnckpt"

    def __init__(self, root=None, keep: int = 3, trust_key=None,
                 on_tamper=None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root) if root is not None else None
        self.keep = keep
        self.trust_key = trust_key
        self.on_tamper = on_tamper
        self._memory: Dict[str, List[Checkpoint]] = {}
        self._manifests: Dict[Path, ArtifactManifest] = {}

    def _manifest(self, run_dir: Path) -> ArtifactManifest:
        manifest = self._manifests.get(run_dir)
        if manifest is None:
            manifest = ArtifactManifest(run_dir, key=self.trust_key,
                                        target="checkpoint",
                                        on_tamper=self.on_tamper)
            self._manifests[run_dir] = manifest
        return manifest

    # ------------------------------------------------------------------ #

    def save(self, checkpoint: Checkpoint) -> Optional[Path]:
        """Persist one checkpoint; returns its path (None in memory)."""
        if self.root is None:
            chain = self._memory.setdefault(checkpoint.run_id, [])
            chain.append(checkpoint)
            del chain[:-self.keep]
            return None
        run_dir = self.root / checkpoint.run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / f"ckpt-{checkpoint.seq:06d}{self.SUFFIX}"
        path.write_bytes(checkpoint.to_bytes())
        self._manifest(run_dir).record(path.name, path=path)
        self._prune(run_dir)
        return path

    def load(self, path) -> Checkpoint:
        """Read + validate one snapshot file.

        Manifest-recorded blobs whose bytes mismatch are quarantined and
        fail with :class:`CorruptCheckpointError` (never deserialized);
        unrecorded blobs fall back to CRC-only validation.
        """
        path = Path(path)
        data = path.read_bytes()
        manifest = self._manifest(path.parent)
        try:
            manifest.verify_bytes(path.name, data)
        except TamperDetectedError as exc:
            manifest.quarantine(path.name, path=path)
            raise CorruptCheckpointError(str(exc)) from exc
        return Checkpoint.from_bytes(data)

    def list(self, run_id: str) -> List[Checkpoint]:
        """All retained checkpoints of a run, oldest first.

        Directory-backed stores skip (but keep) corrupt or tampered
        files here; :meth:`load` on the specific path still reports the
        corruption (and quarantines tampering).
        """
        if self.root is None:
            return list(self._memory.get(run_id, []))
        run_dir = self.root / run_id
        if not run_dir.is_dir():
            return []
        manifest = self._manifest(run_dir)
        out = []
        for path in sorted(run_dir.glob(f"ckpt-*{self.SUFFIX}")):
            try:
                data = path.read_bytes()
                manifest.verify_bytes(path.name, data)
                out.append(Checkpoint.from_bytes(data))
            except (CorruptCheckpointError, TamperDetectedError, OSError):
                continue
        return out

    def latest(self, run_id: str,
               max_cycle: Optional[int] = None) -> Optional[Checkpoint]:
        """The newest valid checkpoint of a run (optionally at or before
        ``max_cycle`` — recovery wants the last one before the fault)."""
        chain = self.list(run_id)
        if max_cycle is not None:
            chain = [c for c in chain if c.cycle <= max_cycle]
        return chain[-1] if chain else None

    def _prune(self, run_dir: Path) -> None:
        paths = sorted(run_dir.glob(f"ckpt-*{self.SUFFIX}"))
        manifest = self._manifest(run_dir)
        for stale in paths[:-self.keep]:
            stale.unlink(missing_ok=True)
            manifest.forget(stale.name)
