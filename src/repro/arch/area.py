"""Chip area model calibrated to the paper's Table 1 (22nm synthesis).

Component areas scale from the published per-unit numbers: logic area
scales linearly with lane count, SRAM with capacity, PHYs with count.  The
space-optimized base conversion unit (Section 4.7) is modeled explicitly:
its multiplier count and buffer capacity are proportional to the *input*
limb bound instead of the output limb count, which is what shrinks it from
CraterLake's 158 mm^2 (at CraterLake's scale) to 14.12 mm^2 here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

# Table 1, per single Cinnamon chip at 22nm, in mm^2.
TABLE1_COMPONENTS = {
    "ntt": 34.08,
    "bconv": 14.12,
    "rotation": 2.48,
    "add": 0.40,
    "mul": 2.55,
    "transpose": 3.56,
    "prng": 5.72,
    "barrett": 1.04,
    "rns_resolve": 1.33,
}
TABLE1_FU_TOTAL = 82.55       # 2x add, 2x mul, 2x prng, 1x remaining
TABLE1_BCU_BUFFERS_MM2 = 11.44
TABLE1_BCU_BUFFERS_MB = 2.85
TABLE1_REGISTER_FILE_MM2 = 80.9
TABLE1_REGISTER_FILE_MB = 56.0
TABLE1_HBM_PHY_MM2 = 38.64 / 4   # per stack
TABLE1_NET_PHY_MM2 = 9.66 / 2    # per PHY
TABLE1_TOTAL = 223.18

# Derived densities.  Small SRAM arrays (BCU buffers) are less dense than
# the big register-file macros, so each gets its own mm^2/MB figure.
SRAM_MM2_PER_MB = TABLE1_REGISTER_FILE_MM2 / TABLE1_REGISTER_FILE_MB
BCU_SRAM_MM2_PER_MB = TABLE1_BCU_BUFFERS_MM2 / TABLE1_BCU_BUFFERS_MB
# Residual between the per-component sum and the published FU total:
# cluster glue/interconnect logic, scaled with lane count like other logic.
_COMPONENT_SUM = (
    TABLE1_COMPONENTS["ntt"] + TABLE1_COMPONENTS["bconv"]
    + TABLE1_COMPONENTS["rotation"] + TABLE1_COMPONENTS["transpose"]
    + TABLE1_COMPONENTS["barrett"] + TABLE1_COMPONENTS["rns_resolve"]
    + 2 * (TABLE1_COMPONENTS["add"] + TABLE1_COMPONENTS["mul"]
           + TABLE1_COMPONENTS["prng"])
)
GLUE_LOGIC_MM2 = TABLE1_FU_TOTAL - _COMPONENT_SUM

# CraterLake's output-buffered base conversion unit, for the Section 4.7
# comparison: per cluster it needs multipliers and double-ported buffers
# proportional to the maximum *output* limb count.
CRATERLAKE_BCU_MULTIPLIERS_PER_CLUSTER = 15_000
CINNAMON_BCU_MULTIPLIERS_PER_CLUSTER = 1_600
CRATERLAKE_BCU_BUFFER_MB_PER_CLUSTER = 3.31
CINNAMON_BCU_BUFFER_MB_PER_CLUSTER = 0.71


@dataclass
class ChipAreaModel:
    """Analytical chip area as a function of the architecture knobs."""

    clusters: int = 4
    lanes_per_cluster: int = 256
    register_file_mb: float = 56.0
    hbm_stacks: int = 4
    network_phys: int = 2
    fu_multiplicity: Dict[str, int] = field(default_factory=lambda: {
        "add": 2, "mul": 2, "prng": 2,
        "ntt": 1, "bconv": 1, "rotation": 1, "transpose": 1,
        "barrett": 1, "rns_resolve": 1,
    })
    bconv_lanes_per_cluster: int = 128
    bconv_buffer_mb: float = TABLE1_BCU_BUFFERS_MB

    # ------------------------------------------------------------------ #

    def _lane_scale(self) -> float:
        """Logic scales with total vector lanes relative to the baseline."""
        return (self.clusters * self.lanes_per_cluster) / (4 * 256)

    def functional_unit_area(self) -> float:
        scale = self._lane_scale()
        total = 0.0
        for name, base in TABLE1_COMPONENTS.items():
            count = self.fu_multiplicity.get(name, 1)
            unit = base * scale
            if name == "bconv":
                # BCU logic scales with its own (halved) lane count.
                unit = base * (self.clusters * self.bconv_lanes_per_cluster) \
                    / (4 * 128)
            total += count * unit
        return total + GLUE_LOGIC_MM2 * scale

    def sram_area(self) -> float:
        return (self.register_file_mb * SRAM_MM2_PER_MB
                + self.bconv_buffer_mb * BCU_SRAM_MM2_PER_MB)

    def phy_area(self) -> float:
        return (self.hbm_stacks * TABLE1_HBM_PHY_MM2
                + self.network_phys * TABLE1_NET_PHY_MM2)

    def total_area(self) -> float:
        return self.functional_unit_area() + self.sram_area() + self.phy_area()

    def breakdown(self) -> Dict[str, float]:
        return {
            "functional_units": self.functional_unit_area(),
            "register_file": self.register_file_mb * SRAM_MM2_PER_MB,
            "bcu_buffers": self.bconv_buffer_mb * BCU_SRAM_MM2_PER_MB,
            "hbm_phys": self.hbm_stacks * TABLE1_HBM_PHY_MM2,
            "network_phys": self.network_phys * TABLE1_NET_PHY_MM2,
        }


#: The baseline Cinnamon chip (must reproduce Table 1's 223.18 mm^2).
CINNAMON_AREA = ChipAreaModel()

#: The monolithic Cinnamon-M chip of Section 6.1 (~719.78 mm^2).
CINNAMON_M_AREA = ChipAreaModel(
    clusters=8,
    register_file_mb=224.0,
    hbm_stacks=8,
    network_phys=0,
    fu_multiplicity={
        "add": 5, "mul": 5, "prng": 2,
        "ntt": 2, "bconv": 1, "rotation": 1, "transpose": 2,
        "barrett": 1, "rns_resolve": 1,
    },
    bconv_lanes_per_cluster=128,
    bconv_buffer_mb=2 * TABLE1_BCU_BUFFERS_MB,
)


def craterlake_bcu_comparison() -> Dict[str, Dict[str, float]]:
    """Section 4.7's BCU resource comparison (per cluster)."""
    return {
        "craterlake": {
            "multipliers": CRATERLAKE_BCU_MULTIPLIERS_PER_CLUSTER,
            "buffer_mb": CRATERLAKE_BCU_BUFFER_MB_PER_CLUSTER,
            "buffer_ports": 2,
        },
        "cinnamon": {
            "multipliers": CINNAMON_BCU_MULTIPLIERS_PER_CLUSTER,
            "buffer_mb": CINNAMON_BCU_BUFFER_MB_PER_CLUSTER,
            "buffer_ports": 1,
        },
    }
