"""Tape-out cost and performance-per-dollar (Section 7.2, Figure 12).

Performance-per-dollar for a benchmark is ``1 / (time * cost)`` normalized
to a reference design.  Costs use Table 3's yield-normalized tape-out
estimates; the yield model in :mod:`repro.arch.yield_model` regenerates the
yield column those estimates rest on.
"""

from __future__ import annotations

from typing import Dict

from .yield_model import ACCELERATOR_DIES, TABLE3_TAPEOUT_COST


def tapeout_cost(design: str) -> float:
    """Yield-normalized tape-out cost in dollars (Table 3)."""
    if design not in TABLE3_TAPEOUT_COST:
        raise KeyError(f"no cost data for design {design!r}")
    return TABLE3_TAPEOUT_COST[design]


def performance_per_dollar(
    times: Dict[str, float],
    costs: Dict[str, float] = None,
    baseline: str = None,
) -> Dict[str, float]:
    """Relative performance-per-dollar across designs.

    ``times`` maps design name to execution time (seconds) on a benchmark;
    ``costs`` defaults to Table 3 tape-out costs.  The result is normalized
    so ``baseline`` (default: the first design) is 1.0.
    """
    if not times:
        raise ValueError("no designs given")
    costs = costs or TABLE3_TAPEOUT_COST
    raw = {}
    for design, seconds in times.items():
        if seconds <= 0:
            raise ValueError(f"non-positive time for {design!r}")
        cost = costs.get(design)
        if cost is None:
            raise KeyError(f"no cost for design {design!r}")
        raw[design] = 1.0 / (seconds * cost)
    if baseline is None:
        baseline = next(iter(times))
    ref = raw[baseline]
    return {design: value / ref for design, value in raw.items()}


def chips_for_design(design: str) -> int:
    return ACCELERATOR_DIES[design].chips_per_system
