"""Chip power model, calibrated to the paper's 190 W per Cinnamon chip.

Section 5 reports a total chip power of 190 W at 1 GHz in 22nm.  We
apportion it with the usual accelerator split — dynamic logic power
proportional to functional-unit area and activity, SRAM power to capacity
and access rate, HBM/network PHY power to bandwidth utilization — and
calibrate the coefficients so the default chip at the paper's ~60%
utilization draws 190 W.  The model then answers the questions the
architecture sweeps ask: how power moves with lane count, register-file
size, and utilization (Figure 16's knobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .area import CINNAMON_AREA, ChipAreaModel

PAPER_CHIP_WATTS = 190.0
_REFERENCE_UTILIZATION = {"compute": 0.6, "memory": 0.6, "network": 0.6}

# Power density / interface-power coefficients (calibrated below).
LOGIC_W_PER_MM2_ACTIVE = 1.4603          # dynamic power density of busy logic
SRAM_W_PER_MB = 0.5679                   # leakage + access energy
HBM_W_PER_GBPS = 0.04868                 # PHY + DRAM I/O per GB/s utilized
LINK_W_PER_GBPS = 0.04056
STATIC_FRACTION = 0.25                 # leakage floor of the logic


@dataclass
class PowerModel:
    """Power of one chip as a function of area knobs and utilization."""

    area: ChipAreaModel = None
    hbm_gbps: float = 2048.0
    link_gbps: float = 512.0

    def __post_init__(self):
        if self.area is None:
            self.area = CINNAMON_AREA

    def breakdown(self, utilization: Dict[str, float] = None) -> Dict[str, float]:
        util = dict(_REFERENCE_UTILIZATION)
        if utilization:
            util.update(utilization)
        logic_area = self.area.functional_unit_area()
        sram_mb = self.area.register_file_mb + self.area.bconv_buffer_mb
        logic = logic_area * LOGIC_W_PER_MM2_ACTIVE * (
            STATIC_FRACTION + (1 - STATIC_FRACTION) * util["compute"]
        )
        sram = sram_mb * SRAM_W_PER_MB
        hbm = self.hbm_gbps * HBM_W_PER_GBPS * util["memory"]
        network = self.link_gbps * LINK_W_PER_GBPS * util["network"]
        return {"logic": logic, "sram": sram, "hbm": hbm, "network": network}

    def total_watts(self, utilization: Dict[str, float] = None) -> float:
        return sum(self.breakdown(utilization).values())


def calibration_error() -> float:
    """Relative error of the default chip vs the paper's 190 W."""
    watts = PowerModel().total_watts()
    return abs(watts - PAPER_CHIP_WATTS) / PAPER_CHIP_WATTS


def machine_watts(num_chips: int, utilization: Dict[str, float] = None) -> float:
    """Whole-machine power (chips only; interposer/host excluded)."""
    return num_chips * PowerModel().total_watts(utilization)
