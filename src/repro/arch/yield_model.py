"""Manufacturing yield and die cost (Section 7.2, Table 3).

Uses the negative-binomial defect model of Stow et al. with the paper's
(optimistic) assumptions: defect density ``D0 = 0.2 / cm^2`` and clustering
parameter ``alpha = 3``:

    yield = (1 + A * D0 / alpha) ** (-alpha)

Dies per 300 mm wafer use the standard wafer-fit approximation; wafer
prices per process node come from the public data the paper cites
(EuroPractice 22nm, MuseSemi 7/14nm equivalents) expressed as $/mm^2 of
wafer area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

DEFECT_DENSITY_PER_CM2 = 0.2
CLUSTERING_ALPHA = 3.0
WAFER_DIAMETER_MM = 300.0

# Wafer price expressed as $/mm^2 of *die* area at full yield, matching
# Table 3's "Wafer Price ($/mm^2)" column.
WAFER_PRICE_PER_MM2 = {
    "7nm": 57500 / 1e3,
    "14nm": 23000 / 1e3,
    "22nm": 10500 / 1e3,
}
# Table 3 reports the price column in $/mm^2 directly; keep the published
# integers accessible for the table regeneration.
TABLE3_PRICE_COLUMN = {"7nm": 57500, "14nm": 23000, "22nm": 10500}


def die_yield(area_mm2: float, d0: float = DEFECT_DENSITY_PER_CM2,
              alpha: float = CLUSTERING_ALPHA) -> float:
    """Negative-binomial yield for one die of ``area_mm2``."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    area_cm2 = area_mm2 / 100.0
    return (1.0 + area_cm2 * d0 / alpha) ** (-alpha)


def dies_per_wafer(area_mm2: float,
                   diameter_mm: float = WAFER_DIAMETER_MM) -> int:
    """Gross dies per round wafer (edge-loss approximation)."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    if math.sqrt(area_mm2) >= diameter_mm:
        return 0
    gross = (math.pi * (diameter_mm / 2) ** 2) / area_mm2 \
        - (math.pi * diameter_mm) / math.sqrt(2 * area_mm2)
    return max(0, int(gross))


@dataclass(frozen=True)
class AcceleratorDie:
    """One accelerator's die description (Table 3 row)."""

    name: str
    area_mm2: float
    process: str
    chips_per_system: int = 1

    @property
    def yield_fraction(self) -> float:
        return die_yield(self.area_mm2)

    @property
    def price_per_mm2(self) -> float:
        return TABLE3_PRICE_COLUMN[self.process] / 1e3

    def yielded_die_cost(self) -> float:
        """$ per *good* die: raw silicon cost divided by yield."""
        raw = self.area_mm2 * self.price_per_mm2
        return raw / self.yield_fraction

    def system_cost(self) -> float:
        return self.yielded_die_cost() * self.chips_per_system


class YieldModel:
    """Convenience wrapper mirroring Table 3's columns."""

    def __init__(self, dies: Dict[str, AcceleratorDie] = None):
        self.dies = dies or dict(ACCELERATOR_DIES)

    def table(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, die in self.dies.items():
            out[name] = {
                "area_mm2": die.area_mm2,
                "process": die.process,
                "yield_pct": 100.0 * die.yield_fraction,
                "price_per_mm2": TABLE3_PRICE_COLUMN[die.process],
                "yielded_die_cost": die.yielded_die_cost(),
            }
        return out


# Table 3's rows.  Tape-out NRE costs in the paper's "Yield Normalized
# Cost" column are dominated by mask-set/NRE estimates; we reproduce them
# as published constants (see repro.arch.cost.tapeout_cost).
ACCELERATOR_DIES: Dict[str, AcceleratorDie] = {
    "ARK": AcceleratorDie("ARK", 418.3, "7nm"),
    "CiFHER": AcceleratorDie("CiFHER", 47.08, "7nm", chips_per_system=16),
    "CraterLake": AcceleratorDie("CraterLake", 472.0, "14nm"),
    "Cinnamon-M": AcceleratorDie("Cinnamon-M", 719.78, "22nm"),
    "Cinnamon": AcceleratorDie("Cinnamon", 223.18, "22nm", chips_per_system=4),
}

# Published "Yield Normalized Cost" column ($), Table 3.
TABLE3_TAPEOUT_COST = {
    "ARK": 50e6,
    "CiFHER": 3.5e6,
    "CraterLake": 25e6,
    "Cinnamon-M": 25e6,
    "Cinnamon": 3.5e6,
}
