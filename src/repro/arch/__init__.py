"""Area, power, yield, and cost models (Sections 5, 7.2).

The paper obtained component areas from RTL synthesis in a commercial 22nm
PDK; this package substitutes an analytical model *calibrated to the
published Table 1 numbers* and exposes the same knobs (lane counts, buffer
sizes, unit multiplicities), so the cost and performance-per-dollar
analyses (Table 3, Figure 12) can be regenerated and perturbed.
"""

from .area import ChipAreaModel, CINNAMON_AREA, CINNAMON_M_AREA, \
    craterlake_bcu_comparison
from .yield_model import YieldModel, ACCELERATOR_DIES, die_yield, dies_per_wafer
from .cost import performance_per_dollar, tapeout_cost
from .power import PowerModel, machine_watts

__all__ = [
    "ChipAreaModel",
    "CINNAMON_AREA",
    "CINNAMON_M_AREA",
    "craterlake_bcu_comparison",
    "YieldModel",
    "ACCELERATOR_DIES",
    "die_yield",
    "dies_per_wafer",
    "performance_per_dollar",
    "tapeout_cost",
    "PowerModel",
    "machine_watts",
]
