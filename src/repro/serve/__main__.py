"""``python -m repro.serve`` runs the load generator."""

import sys

from .loadgen import main

sys.exit(main())
