"""Encrypted-inference serving layer over :mod:`repro.runtime`.

The ROADMAP's "serve heavy traffic" layer: :class:`CinnamonServer` runs
inference requests through a shard pool of cached
:class:`~repro.runtime.CinnamonSession` workers with

* a bounded, prioritized admission queue with explicit backpressure
  (:class:`~repro.serve.queue.QueueSaturatedError`) and graceful drain;
* an adaptive batcher coalescing same-fingerprint/machine requests under
  ``max_batch`` / ``max_wait_s``;
* per-request deadlines, retry with exponential backoff + jitter, and a
  scripted :class:`FaultInjector` (worker crash, latency spike, poisoned
  cache entry, mid-simulation chip crash) the robustness tests drive;
* machine-level fault tolerance: a chip killed mid-simulation triggers a
  degraded-mode recompile onto fewer chips (:mod:`repro.resilience`) and
  a transparent replay — the request still resolves ``OK``;
* a counter/gauge/histogram :class:`MetricsRegistry` with Prometheus
  text exposition and JSON snapshots, plus ``serve`` entries in the
  runtime trace schema;
* a load generator (``python -m repro.serve.loadgen``) replaying the
  paper's workload mix in open-loop (Poisson) or closed-loop mode.

Quick start::

    from repro.serve import CinnamonServer, InferenceRequest

    with CinnamonServer(num_workers=4, default_machine="cinnamon_4") as srv:
        handle = srv.submit(InferenceRequest(program, params))
        print(handle.result().latency.total_s)
"""

from .batcher import AdaptiveBatcher, Batch
from .faults import (
    Fault,
    FaultInjector,
    InjectedFault,
    PoisonedCacheError,
    WorkerCrashError,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .queue import AdmissionQueue, QueueClosedError, QueueSaturatedError
from .request import (
    InferenceRequest,
    LatencyBreakdown,
    Priority,
    RequestHandle,
    RequestResult,
    RequestStatus,
)
from .server import CinnamonServer, ServerClosedError, serve_requests


def __getattr__(name):
    """Lazy loadgen exports: keep ``python -m repro.serve.loadgen`` free
    of the double-import RuntimeWarning runpy emits when the submodule
    is already bound at package import time."""
    if name in ("LoadGenerator", "LoadReport"):
        from . import loadgen

        value = getattr(loadgen, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")


__all__ = [
    "CinnamonServer",
    "serve_requests",
    "InferenceRequest",
    "RequestResult",
    "RequestHandle",
    "RequestStatus",
    "Priority",
    "LatencyBreakdown",
    "AdmissionQueue",
    "QueueSaturatedError",
    "QueueClosedError",
    "ServerClosedError",
    "AdaptiveBatcher",
    "Batch",
    "FaultInjector",
    "Fault",
    "InjectedFault",
    "WorkerCrashError",
    "PoisonedCacheError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LoadGenerator",
    "LoadReport",
]
