"""Back-compat shim: the metrics registry moved to :mod:`repro.obs`.

The serving layer introduced :class:`MetricsRegistry`; once the runtime,
cache, tuning, and recovery layers wanted to report into the same scrape
it was hoisted to :mod:`repro.obs.metrics` as the process-wide home.
Every public name is re-exported here *by identity* — code holding
``repro.serve.metrics.Histogram`` and code holding
``repro.obs.metrics.Histogram`` see the same class, so isinstance checks
and registries interoperate across both import paths.
"""

from ..obs.metrics import (  # noqa: F401
    CYCLE_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    LabelSet,
    MetricsRegistry,
    RESERVOIR_SIZE,
    default_registry,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "CYCLE_BUCKETS",
    "RESERVOIR_SIZE",
    "LabelSet",
    "default_registry",
]
