"""Pluggable fault injection for the serving layer.

The robustness tests (and any chaos experiment) script failures against a
live server instead of monkeypatching internals: a :class:`FaultInjector`
is armed with a budget of faults and consulted by every shard right
before it executes a batch.  Four fault kinds:

* ``crash``   — the shard dies mid-dispatch (:class:`WorkerCrashError`);
  the server restarts it with a fresh session (cold in-memory cache, the
  disk layer survives — exactly a process restart) and retries the batch;
* ``latency`` — a stall of ``latency_s`` seconds before execution (a
  GC pause, a slow NIC) that deadline enforcement must absorb;
* ``poison``  — the batch's cache entry is replaced with a
  :class:`PoisonedArtifact` whose first use raises
  :class:`PoisonedCacheError`; recovery is invalidate-and-recompile.
* ``chip_crash`` — a *machine* fault: :meth:`FaultInjector.on_dispatch`
  returns a :class:`~repro.resilience.FaultSchedule` that kills ``chip``
  at simulated ``cycle``, the shard threads it into the simulation, and
  the server recovers by recompiling for the degrade ladder's next rung
  (see :mod:`repro.resilience`).

Each fault fires ``count`` times, optionally only for requests whose
label contains ``match``; a drained injector is inert, so a recovered
server runs clean afterwards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..resilience.faults import FaultSchedule


class InjectedFault(RuntimeError):
    """Base class of all injected failures."""


class WorkerCrashError(InjectedFault):
    """A shard 'process' died while holding a batch."""


class PoisonedCacheError(InjectedFault):
    """A cached compile artifact was corrupt when dereferenced."""


class PoisonedArtifact:
    """Stand-in for a corrupt cached :class:`CompiledProgram`.

    Attribute *writes* succeed (the session stamps ``cache_key`` on
    every hit) but any read of a compile artifact's real surface raises,
    modelling a truncated/garbage pickle that deserialized anyway.
    """

    def __getattr__(self, name):
        raise PoisonedCacheError(
            f"poisoned cache artifact dereferenced (attribute {name!r})")


@dataclass
class Fault:
    """One scripted failure with a firing budget."""

    kind: str                  # "crash" | "latency" | "poison" | "chip_crash"
    count: int = 1
    match: str = ""            # substring of a request label; "" = any
    latency_s: float = 0.05
    chip: int = 0              # chip_crash: which die dies ...
    cycle: int = 1000          # ... and at which simulated cycle


@dataclass
class FaultInjector:
    """Scripted fault plan, consumed as the server dispatches batches."""

    faults: List[Fault] = field(default_factory=list)

    def __post_init__(self):
        self._lock = threading.Lock()
        self.injected = {"crash": 0, "latency": 0, "poison": 0,
                         "chip_crash": 0}

    # ------------------------- fluent builders ------------------------ #

    def crash(self, count: int = 1, match: str = "") -> "FaultInjector":
        self.faults.append(Fault("crash", count=count, match=match))
        return self

    def latency(self, seconds: float, count: int = 1,
                match: str = "") -> "FaultInjector":
        self.faults.append(
            Fault("latency", count=count, match=match, latency_s=seconds))
        return self

    def poison(self, count: int = 1, match: str = "") -> "FaultInjector":
        self.faults.append(Fault("poison", count=count, match=match))
        return self

    def chip_crash(self, chip: int = 0, cycle: int = 1000, count: int = 1,
                   match: str = "") -> "FaultInjector":
        """Kill ``chip`` at simulated ``cycle`` during the next matching
        batch; the server recovers by degrading to fewer chips."""
        self.faults.append(Fault("chip_crash", count=count, match=match,
                                 chip=chip, cycle=cycle))
        return self

    # ------------------------------------------------------------------ #

    def _take(self, batch) -> Optional[Fault]:
        labels = [req.label for req in batch.requests]
        with self._lock:
            for fault in self.faults:
                if fault.count <= 0:
                    continue
                if fault.match and not any(
                        fault.match in label for label in labels):
                    continue
                fault.count -= 1
                self.injected[fault.kind] += 1
                return fault
        return None

    def on_dispatch(self, shard_id: int, batch,
                    session) -> Optional[FaultSchedule]:
        """Called by a shard before each execution attempt of ``batch``.

        May sleep (latency), corrupt the shard's cache entry for the
        batch (poison), raise :class:`WorkerCrashError` (crash), or
        return a :class:`~repro.resilience.FaultSchedule` the shard must
        thread into the simulation (chip_crash).  Returns ``None`` for
        everything but chip_crash.
        """
        fault = self._take(batch)
        if fault is None:
            return None
        if fault.kind == "latency":
            time.sleep(fault.latency_s)
        elif fault.kind == "poison":
            session._cache.put(batch.fingerprint, PoisonedArtifact())
        elif fault.kind == "chip_crash":
            return FaultSchedule().chip_crash(chip=fault.chip,
                                              cycle=fault.cycle)
        elif fault.kind == "crash":
            raise WorkerCrashError(
                f"injected crash of shard {shard_id} while dispatching "
                f"{len(batch)} request(s)")
        return None

    def remaining(self) -> int:
        with self._lock:
            return sum(max(0, f.count) for f in self.faults)


#: Inert default: consulted on every dispatch, never fires.
NO_FAULTS = FaultInjector()
