"""The encrypted-inference server: shard pool + dispatcher + retries.

Data path of one request::

    submit() --fingerprint--> AdmissionQueue --dispatcher--> AdaptiveBatcher
        --batch--> shard (hash(fingerprint) % num_workers)
        --CinnamonSession.run_batch--> RequestResult --> RequestHandle

Design notes:

* **Shards.** Each of ``num_workers`` shards is one single-thread
  executor owning one :class:`CinnamonSession` — the in-process model of
  one serving replica.  Batches route by fingerprint hash, so repeats of
  a program always land on the shard that already holds its artifact
  (cache affinity); intra-batch parallelism comes from ``run_batch``'s
  own pool.
* **Backpressure.** ``submit`` never blocks: a saturated admission queue
  raises :class:`QueueSaturatedError` at the call site and the rejection
  is counted and traced.  ``shutdown(drain=True)`` stops admission but
  finishes everything already accepted.
* **Robustness.** Each batch execution attempt passes through the fault
  injector.  A crashed shard is restarted with a fresh session (memory
  cache lost, disk cache kept) and the batch retried under exponential
  backoff with jitter; a poisoned cache entry is invalidated and
  recompiled; requests whose deadline lapses anywhere along the path
  resolve to ``TIMEOUT`` instead of occupying a shard.
* **Observability.** Every hop updates the
  :class:`~repro.serve.metrics.MetricsRegistry` and every resolution
  appends a ``serve`` entry to the session-shared
  :class:`~repro.runtime.trace.TraceRecorder` schema.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.tracing import tracer
from ..resilience.faults import MachineFaultError, WatchdogTimeout
from ..runtime.cache import DISK_HIT, MEMORY_HIT
from ..runtime.fingerprint import fingerprint
from ..runtime.session import CinnamonSession, CompileJob, \
    resolve_request_options
from ..runtime.trace import TraceRecorder
from ..sim.config import degraded_machine, resolve_machine
from .batcher import AdaptiveBatcher, Batch
from .faults import FaultInjector, NO_FAULTS, PoisonedArtifact, \
    PoisonedCacheError, WorkerCrashError
from .metrics import MetricsRegistry
from .queue import AdmissionQueue, Empty, QueueClosedError, \
    QueueSaturatedError
from .request import InferenceRequest, LatencyBreakdown, RequestHandle, \
    RequestResult, RequestStatus, cost_rollup

#: Buckets for the batch-size histogram (requests per dispatched batch).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

#: Dispatcher poll period while completely idle.
_IDLE_POLL_S = 0.05


class ServerClosedError(RuntimeError):
    """``submit`` after ``shutdown``/``drain`` began."""


class _Shard:
    """One serving replica: a single-thread executor plus its session."""

    def __init__(self, shard_id: int, session: CinnamonSession):
        self.id = shard_id
        self.session = session
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"cinnamon-shard-{shard_id}")


class CinnamonServer:
    """Serve encrypted-inference requests over a pool of session shards.

    Parameters mirror the knobs of a real inference frontend:
    ``queue_depth`` bounds admission (``0`` = unbounded), ``max_batch`` /
    ``max_wait_s`` tune the adaptive batcher, ``max_retries`` /
    ``retry_backoff_s`` / ``retry_jitter`` shape the retry policy, and
    ``request_timeout_s`` is the default deadline for requests that do
    not carry one.  ``session_factory(shard_id)`` customizes shard
    construction (tests inject small caches; by default shards share one
    on-disk ``cache_dir`` so a restarted shard re-warms from disk).
    ``tuned=True`` (or an explicit ``tuning_db``) applies persisted
    :mod:`repro.tune` configurations to matching requests at admission.
    """

    def __init__(self, num_workers: int = 2, queue_depth: int = 64,
                 max_batch: int = 8, max_wait_s: float = 0.005,
                 max_retries: int = 2, retry_backoff_s: float = 0.05,
                 retry_jitter: float = 0.5,
                 request_timeout_s: Optional[float] = None,
                 default_machine=None, faults: FaultInjector = None,
                 cache_dir=None, capacity: Optional[int] = None,
                 session_factory: Optional[Callable[[int], CinnamonSession]]
                 = None, metrics: Optional[MetricsRegistry] = None,
                 seed: int = 0, max_recoveries: int = 2,
                 watchdog_s: Optional[float] = None,
                 tuned: bool = False, tuning_db=None,
                 slos: Sequence = (), flight_dir=None,
                 live_status_path=None,
                 slo_window_scale: float = 1.0,
                 slo_min_events: int = 10,
                 slo_cooldown_s: float = 60.0):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self.request_timeout_s = request_timeout_s
        self.default_machine = default_machine
        #: Shared shard cache directory (None = memory-only shards);
        #: exposed so chaos tooling can aim tamper attacks at the disk
        #: layer (repro.trust).
        self.cache_dir = cache_dir
        self.faults = faults or NO_FAULTS
        #: Degrade-ladder descents allowed per batch after chip failures
        #: (these do NOT consume regular retries: losing a die is a
        #: machine event, not a transient).
        self.max_recoveries = max_recoveries
        #: Per-simulation wall-clock budget; a hung run resolves as a
        #: watchdog timeout instead of wedging a shard forever.
        self.watchdog_s = watchdog_s
        self._session_factory = session_factory or (
            lambda shard_id: CinnamonSession(cache_dir=cache_dir,
                                             capacity=capacity,
                                             watchdog_s=watchdog_s))
        #: With ``tuned=True`` each admitted request consults the
        #: persisted tuning DB (``repro.tune``) and, on a hit for this
        #: (program, params, machine), swaps in the tuned compiler
        #: options *before* fingerprinting — so shard affinity and cache
        #: keys align with the tuned artifact.  Only compiler axes apply;
        #: the request's machine is still what gets simulated.
        self._tuning_db = tuning_db
        if tuned and self._tuning_db is None:
            from ..tune.db import TuningDB, default_db_path

            self._tuning_db = TuningDB(default_db_path(cache_dir))
        self._shards = [_Shard(i, self._session_factory(i))
                        for i in range(num_workers)]
        self._queue = AdmissionQueue(maxsize=queue_depth)
        self._batcher = AdaptiveBatcher(max_batch=max_batch,
                                        max_wait_s=max_wait_s)
        self._recorder = TraceRecorder()
        self._rng = random.Random(seed)
        self._handles: Dict[int, RequestHandle] = {}
        self._inflight = 0
        self._pending_cond = threading.Condition()
        self._started = False
        self._stopped = False
        self._dispatcher: Optional[threading.Thread] = None

        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self._requests_total = {
            status: m.counter("serve_requests_total",
                              "Requests by terminal status.",
                              labels={"status": status.value})
            for status in RequestStatus
        }
        self._retries_total = m.counter(
            "serve_retries_total", "Batch execution retries.")
        self._restarts_total = m.counter(
            "serve_worker_restarts_total",
            "Shard restarts after an (injected) crash.")
        self._poisoned_total = m.counter(
            "serve_cache_poisoned_total",
            "Poisoned cache artifacts detected and invalidated.")
        self._chip_failures_total = m.counter(
            "serve_chip_failures_total",
            "Machine-level chip/link failures surfaced by simulations.")
        self._recoveries_total = m.counter(
            "serve_recoveries_total",
            "Successful degraded-mode recoveries after a chip failure.")
        self._watchdog_total = m.counter(
            "serve_watchdog_timeouts_total",
            "Simulations cancelled by the per-run watchdog deadline.")
        self._batches_total = m.counter(
            "serve_batches_total", "Batches dispatched to shards.")
        self._tuned_total = m.counter(
            "serve_tuned_requests_total",
            "Requests whose options came from the tuning DB.")
        self._queue_depth = m.gauge(
            "serve_queue_depth", "Requests waiting for admission dispatch.")
        self._inflight_gauge = m.gauge(
            "serve_inflight_requests", "Requests dispatched, not resolved.")
        m.gauge("serve_shards", "Session shards in the pool.").set(num_workers)
        self._queue_wait_h = m.histogram(
            "serve_queue_wait_seconds",
            "Admission + batching wait before execution starts.")
        self._execute_h = m.histogram(
            "serve_execute_seconds", "Compile+simulate time inside a shard.")
        self._latency_h = m.histogram(
            "serve_request_latency_seconds",
            "End-to-end latency, submit to resolution.")
        self._batch_size_h = m.histogram(
            "serve_batch_size", "Requests per dispatched batch.",
            buckets=BATCH_SIZE_BUCKETS)

        # Live telemetry (repro.obs.live): a background tick thread
        # evaluates SLO burn rates against this registry, rings the
        # flight recorder, and rewrites the status document.
        self.live = None
        if slos or flight_dir is not None or live_status_path is not None:
            from ..obs.live import LivePipeline

            self.live = LivePipeline(
                slos=slos, flight_dir=flight_dir, process="server",
                recorder=self._recorder, registry=self.metrics,
                window_scale=slo_window_scale,
                cooldown_s=slo_cooldown_s, min_events=slo_min_events,
                status_path=live_status_path,
                snapshot_fn=self.metrics_snapshot)

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self) -> "CinnamonServer":
        if self._started:
            return self
        self._started = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="cinnamon-dispatcher",
            daemon=True)
        self._dispatcher.start()
        if self.live is not None:
            self.live.start()
        return self

    def __enter__(self) -> "CinnamonServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and wait until all accepted work resolves.

        Returns ``False`` if ``timeout`` expired with work pending.
        """
        self._queue.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._pending_cond:
            while self._outstanding() > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._pending_cond.wait(remaining
                                        if remaining is not None else 0.1)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the server; with ``drain`` finish accepted work first,
        otherwise resolve still-queued requests as ``REJECTED``."""
        if self._stopped:
            return
        self._queue.close()
        if drain:
            self.drain(timeout=timeout)
        else:
            while True:
                try:
                    request = self._queue.get(timeout=0)
                except Empty:
                    break
                self._resolve_rejected(request, "server shut down")
        self._stopped = True
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10)
        for shard in self._shards:
            shard.executor.shutdown(wait=drain)
        if self.live is not None:
            self.live.stop(final_tick=True)

    # ------------------------------------------------------------------ #
    # Admission

    def submit(self, request: InferenceRequest) -> RequestHandle:
        """Admit one request; raises :class:`QueueSaturatedError` under
        backpressure and :class:`ServerClosedError` after shutdown."""
        if not self._started:
            self.start()
        if request.machine is None and request.options is None \
                and self.default_machine is not None:
            request.machine = self.default_machine
        if request.deadline_s is None:
            request.deadline_s = self.request_timeout_s
        options = resolve_request_options(request.machine, request.options)
        request.machine_name = resolve_machine(
            request.machine if request.machine is not None
            else (options.machine or options.num_chips)).name
        if self._tuning_db is not None:
            tuned_options = self._tuning_db.tuned_options(
                request.program, request.params, request.machine_name,
                options)
            if tuned_options is not None:
                # Swap before fingerprinting so cache keys and shard
                # affinity follow the tuned artifact.  machine=None keeps
                # resolve_request_options from clobbering the tuned
                # num_chips/registers_per_chip downstream.
                options = tuned_options
                request.options = tuned_options
                request.machine = None
                request.tuned = True
                self._tuned_total.inc()
        request.key = fingerprint(request.program, request.params, options)
        request.submitted_at = time.monotonic()
        # Observability root: one trace per request, opened at admission
        # and closed at resolution (repro.obs; no-op unless enabled).
        tr = tracer()
        request.span = tr.begin(
            f"serve:{request.label}", kind="serve", parent=None,
            attrs={"request_id": request.request_id,
                   "machine": request.machine_name,
                   "fingerprint": request.key})
        request.queue_span = tr.begin("queue", kind="queue",
                                      parent=request.span)
        handle = RequestHandle(request)
        with self._pending_cond:
            self._handles[request.request_id] = handle
        try:
            self._queue.put(request)
        except QueueSaturatedError:
            self._resolve_rejected(request, "admission queue saturated")
            raise
        except QueueClosedError as exc:
            self._resolve_rejected(request, "server shutting down")
            raise ServerClosedError(str(exc)) from exc
        self._queue_depth.set(self._queue.depth())
        return handle

    def submit_many(self, requests: Sequence[InferenceRequest]
                    ) -> List[RequestHandle]:
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------ #
    # Dispatcher

    def _dispatch_loop(self) -> None:
        while True:
            now = time.monotonic()
            wait = self._batcher.next_deadline(now)
            if wait is None:
                wait = _IDLE_POLL_S
            drained = False
            try:
                request = self._queue.get(timeout=wait)
            except Empty:
                drained = self._queue.closed and self._queue.depth() == 0
            else:
                self._admit_to_batcher(request)
                # Opportunistically pull everything already waiting so a
                # burst coalesces in one pass.
                while True:
                    try:
                        request = self._queue.get(timeout=0)
                    except Empty:
                        break
                    self._admit_to_batcher(request)
            self._queue_depth.set(self._queue.depth())
            for batch in self._batcher.ready(time.monotonic(),
                                             force=drained):
                self._dispatch(batch)
            if drained and self._batcher.pending() == 0:
                return

    def _admit_to_batcher(self, request: InferenceRequest) -> None:
        now = time.monotonic()
        if request.expired(now):
            self._resolve_timeout(request, now, stage="queued")
            return
        full = self._batcher.add(request, now)
        if full is not None:
            self._dispatch(full)

    def _dispatch(self, batch: Batch) -> None:
        shard = self._shards[int(batch.fingerprint, 16) % self.num_workers]
        self._batches_total.inc()
        self._batch_size_h.observe(len(batch))
        with self._pending_cond:
            self._inflight += len(batch)
        self._inflight_gauge.set(self._inflight)
        shard.executor.submit(self._execute_batch, shard, batch)

    # ------------------------------------------------------------------ #
    # Execution

    def _execute_batch(self, shard: _Shard, batch: Batch) -> None:
        try:
            self._execute_batch_inner(shard, batch)
        except BaseException:  # pragma: no cover - defensive: never lose
            for request in batch.requests:  # a request to a bug here
                self._resolve_failed(request, time.monotonic(), attempts=0,
                                     batch_size=len(batch),
                                     shard=shard.id,
                                     error="internal dispatch error")
            raise

    def _execute_batch_inner(self, shard: _Shard, batch: Batch) -> None:
        pending = list(batch.requests)
        last_error: Optional[Exception] = None
        machine_override = None       # degraded machine after a chip loss
        recoveries = 0
        recovery_entry: Optional[dict] = None
        attempt = 0
        while attempt <= self.max_retries:
            attempt += 1
            now = time.monotonic()
            live = []
            for request in pending:
                if request.expired(now):
                    self._resolve_timeout(request, now, stage="dispatched",
                                          shard=shard.id,
                                          batch_size=len(batch))
                else:
                    live.append(request)
            pending = live
            if not pending:
                return
            exec_start = time.monotonic()
            # One "execute" span per request per attempt: it rides the
            # CompileJob onto the session worker pool, where the compile
            # and simulate child spans attach to it (repro.obs).
            tr = tracer()
            exec_spans = [
                tr.begin("execute", kind="execute", parent=r.span,
                         attrs={"shard": shard.id, "attempt": attempt,
                                "batch_size": len(batch)})
                for r in pending
            ]
            try:
                schedule = self.faults.on_dispatch(shard.id, batch,
                                                   shard.session)
                jobs = [CompileJob(program=r.program, params=r.params,
                                   machine=machine_override
                                   if machine_override is not None
                                   else r.machine,
                                   options=r.options,
                                   simulate=r.simulate, tag=r.tag,
                                   name=r.label, fault_schedule=schedule,
                                   watchdog_s=self.watchdog_s,
                                   span=span)
                        for r, span in zip(pending, exec_spans)]
                results = shard.session.run_batch(
                    jobs, max_workers=min(4, len(jobs)))
                for job_result in results:
                    if isinstance(job_result.compiled, PoisonedArtifact):
                        raise PoisonedCacheError(
                            f"poisoned artifact for {job_result.job!r}")
            except MachineFaultError as exc:
                # A die (or link) died mid-simulation.  This is a machine
                # event, not a transient: recompile the batch for the
                # degrade ladder's next rung and replay — without
                # consuming a regular retry.  The injector's budget was
                # spent on the faulted attempt, so the replay runs clean.
                last_error = exc
                self._chip_failures_total.inc()
                if recoveries < self.max_recoveries:
                    try:
                        degraded = degraded_machine(
                            exc.machine or machine_override
                            or pending[0].machine_name)
                    except ValueError:
                        pass      # out of rungs: fall through to retries
                    else:
                        recoveries += 1
                        self._recoveries_total.inc()
                        detection_s = time.monotonic() - exec_start
                        recovery_entry = self._recorder.record_recovery(
                            job=batch.requests[0].label,
                            fault=(exc.fault.kind if exc.fault
                                   else "chip_crash"),
                            chip=exc.chip, cycle=exc.cycle,
                            machine_from=exc.machine or "",
                            machine_to=degraded.name,
                            detection_s=detection_s)
                        machine_override = degraded
                        attempt -= 1
                        continue
            except WatchdogTimeout as exc:
                last_error = exc
                self._watchdog_total.inc()
            except WorkerCrashError as exc:
                last_error = exc
                self._restarts_total.inc()
                self._restart_shard(shard)
            except PoisonedCacheError as exc:
                last_error = exc
                self._poisoned_total.inc()
                shard.session.invalidate(batch.fingerprint)
            except Exception as exc:
                last_error = exc
            else:
                done = time.monotonic()
                if recovery_entry is not None:
                    # Stamp how long the successful replay took onto the
                    # recovery trace entry (held by reference).
                    recovery_entry["replay_s"] = done - exec_start
                for request, job_result in zip(pending, results):
                    if request.expired(done):
                        # Deadline lapsed mid-execution (e.g. a latency
                        # spike): the client already gave up on it.
                        self._resolve_timeout(request, done,
                                              stage="dispatched",
                                              shard=shard.id,
                                              batch_size=len(batch))
                    else:
                        self._resolve_ok(request, job_result,
                                         exec_start=exec_start, done=done,
                                         attempts=attempt, shard=shard.id,
                                         batch_size=len(batch))
                return
            finally:
                # Close this attempt's execute spans on every exit path
                # (success, retryable failure, recovery descent).
                for span in exec_spans:
                    span.finish()
            if attempt <= self.max_retries:
                self._retries_total.inc()
                backoff = (self.retry_backoff_s * (2 ** (attempt - 1))
                           * (1.0 + self.retry_jitter * self._rng.random()))
                time.sleep(backoff)
        now = time.monotonic()
        for request in pending:
            self._resolve_failed(
                request, now, attempts=self.max_retries + 1,
                shard=shard.id, batch_size=len(batch),
                error=f"{type(last_error).__name__}: {last_error}")

    def _restart_shard(self, shard: _Shard) -> None:
        """Replace a crashed shard's session — the in-memory cache dies
        with the 'process'; a shared disk cache re-warms it."""
        shard.session = self._session_factory(shard.id)

    # ------------------------------------------------------------------ #
    # Resolution

    def _bill_tenant(self, request: InferenceRequest,
                     result: RequestResult) -> None:
        """Per-tenant cost attribution (schema 8) — the same families
        the cluster router bills, so ``obs top`` reads either."""
        m = self.metrics
        tenant = request.tenant
        m.counter("cluster_tenant_requests_total",
                  "Requests by tenant and terminal status.",
                  labels={"tenant": tenant,
                          "status": result.status.value}).inc()
        cost = result.cost or {}
        if not cost:
            return
        m.counter("cluster_tenant_sim_cycles_total",
                  "Simulated accelerator cycles billed to the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("sim_cycles", 0) or 0)
        m.counter("cluster_tenant_bootstraps_total",
                  "Bootstrap operations billed to the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("bootstraps", 0) or 0)
        m.counter("cluster_tenant_bytes_total",
                  "HBM + network bytes moved for the tenant.",
                  labels={"tenant": tenant}).inc(
                      cost.get("bytes", 0) or 0)
        m.counter("cluster_tenant_compile_seconds_total",
                  "Compile wall seconds billed (cache misses only).",
                  labels={"tenant": tenant}).inc(
                      cost.get("compile_s", 0.0) or 0.0)

    def _finish(self, request: InferenceRequest, result: RequestResult,
                dispatched: bool) -> None:
        self._requests_total[result.status].inc()
        self._latency_h.observe(result.latency.total_s)
        self._bill_tenant(request, result)
        # Close whatever request spans are still open (a timeout can
        # resolve a request while its queue/batch span is live), then
        # journal the outcome under the root span so the serve row joins
        # the compile/simulate rows on trace_id.
        tr = tracer()
        for span in (request.queue_span, request.batch_span, request.span):
            if span is not None:
                span.finish()
        if request.span is not None:
            request.span.set_attr("status", result.status.value)
            request.span.set_attr("shard", result.shard)
        with tr.use_span(request.span):
            self._recorder.record_serve(
                job=request.label, status=result.status.value,
                machine=request.machine_name or "", shard=result.shard,
                attempts=result.attempts, batch_size=result.batch_size,
                cache=result.cache, seconds=result.latency.total_s,
                queue_s=result.latency.queue_s,
                batch_s=result.latency.batch_s,
                execute_s=result.latency.execute_s,
                tenant=request.tenant, cost=result.cost)
        with self._pending_cond:
            handle = self._handles.pop(request.request_id, None)
            if dispatched:
                self._inflight -= 1
            self._pending_cond.notify_all()
        self._inflight_gauge.set(self._inflight)
        if handle is not None:
            handle.resolve(result)

    def _elapsed(self, request: InferenceRequest, now: float) -> float:
        return now - (request.submitted_at or now)

    def _resolve_ok(self, request, job_result, *, exec_start: float,
                    done: float, attempts: int, shard: int,
                    batch_size: int) -> None:
        latency = LatencyBreakdown(
            queue_s=exec_start - (request.submitted_at or exec_start),
            batch_s=(exec_start - request.batched_at
                     if request.batched_at is not None else 0.0),
            execute_s=done - exec_start,
            total_s=self._elapsed(request, done))
        self._queue_wait_h.observe(latency.queue_s)
        self._execute_h.observe(latency.execute_s)
        sim = job_result.result
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.OK, latency=latency, attempts=attempts,
            shard=shard, batch_size=batch_size, cache=job_result.cache,
            cycles=sim.cycles if sim is not None else None, sim=sim,
            compiled=job_result.compiled,
            cost=cost_rollup(request.program, job_result.cache,
                             job_result.compiled, sim))
        self._finish(request, result, dispatched=True)

    def _resolve_timeout(self, request, now: float, *, stage: str,
                         shard: Optional[int] = None,
                         batch_size: int = 0) -> None:
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.TIMEOUT,
            latency=LatencyBreakdown(total_s=self._elapsed(request, now)),
            shard=shard, batch_size=batch_size,
            error=f"deadline of {request.deadline_s}s exceeded "
                  f"while {stage}")
        self._finish(request, result, dispatched=stage == "dispatched")

    def _resolve_failed(self, request, now: float, *, attempts: int,
                        shard: int, batch_size: int, error: str) -> None:
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.FAILED,
            latency=LatencyBreakdown(total_s=self._elapsed(request, now)),
            attempts=attempts, shard=shard, batch_size=batch_size,
            error=error)
        self._finish(request, result, dispatched=True)

    def _resolve_rejected(self, request, reason: str) -> None:
        result = RequestResult(
            request_id=request.request_id, name=request.label,
            status=RequestStatus.REJECTED,
            latency=LatencyBreakdown(
                total_s=self._elapsed(request, time.monotonic())),
            error=reason)
        self._finish(request, result, dispatched=False)

    # ------------------------------------------------------------------ #
    # Introspection

    def _outstanding(self) -> int:
        # Every admitted-but-unresolved request holds a handle, whatever
        # stage (queue, batcher, shard) it is at — no drain race windows.
        return len(self._handles)

    @property
    def queue_depth(self) -> int:
        return self._queue.depth()

    def cache_stats(self) -> dict:
        """Aggregated compile-cache counters across all shards."""
        totals: Dict[str, int] = {}
        for shard in self._shards:
            for field, value in shard.session.cache_stats.as_dict().items():
                totals[field] = totals.get(field, 0) + value
        return totals

    def _refresh_cache_metrics(self) -> None:
        totals = self.cache_stats()
        hits = totals.get("memory_hits", 0) + totals.get("disk_hits", 0)
        lookups = hits + totals.get("misses", 0)
        self.metrics.gauge(
            "serve_compile_cache_hits", "Cache hits across shards.").set(hits)
        self.metrics.gauge(
            "serve_compile_cache_lookups",
            "Cache lookups across shards.").set(lookups)
        self.metrics.gauge(
            "serve_compile_cache_hit_rate",
            "memory+disk hits / lookups.").set(
            hits / lookups if lookups else 0.0)

    def metrics_snapshot(self) -> dict:
        """JSON-ready snapshot of every metric series (the CI artifact)."""
        self._refresh_cache_metrics()
        return self.metrics.snapshot()

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the registry."""
        self._refresh_cache_metrics()
        return self.metrics.render_prometheus()

    def trace(self) -> dict:
        """Merged trace document across the whole server: serve and
        recovery entries from the server recorder *plus* the compile and
        simulate entries of every shard session, with aggregate cache
        stats (the :mod:`repro.runtime.trace` schema).  Rows recorded
        under :mod:`repro.obs` tracing carry ``trace_id``, so one
        request's serve/compile/simulate rows are joinable here."""
        document = self._recorder.document(self.cache_stats())
        for shard in self._shards:
            document["jobs"].extend(shard.session.trace()["jobs"])
        return document

    def export_trace(self, path):
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.trace(), indent=2))
        return path


# ---------------------------------------------------------------------- #

def serve_requests(requests: Sequence[InferenceRequest],
                   num_workers: int = 2, queue_depth: int = 0,
                   trace_out=None, **server_kwargs) -> List[RequestResult]:
    """One-call facade: serve ``requests`` to completion, results in
    submission order.  ``queue_depth=0`` (unbounded) by default so a
    batch submission is never rejected; pass a bound to exercise
    backpressure.  ``trace_out`` writes the merged trace journal (serve
    + per-shard compile/simulate rows) before the transient server is
    torn down — with :mod:`repro.obs` tracing enabled, that journal is
    what ``python -m repro.obs`` analyzes."""
    server = CinnamonServer(num_workers=num_workers,
                            queue_depth=queue_depth, **server_kwargs)
    with server:
        handles = []
        for request in requests:
            try:
                handles.append(server.submit(request))
            except QueueSaturatedError:
                handles.append(None)
        server.drain()
        results = []
        for request, handle in zip(requests, handles):
            if handle is None:
                results.append(RequestResult(
                    request_id=request.request_id, name=request.label,
                    status=RequestStatus.REJECTED,
                    error="admission queue saturated"))
            else:
                results.append(handle.result(timeout=600))
        if trace_out is not None:
            server.export_trace(trace_out)
    return results
