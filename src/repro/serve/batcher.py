"""Adaptive request coalescing.

Requests whose compile fingerprint and target machine match are folded
into one batch so the shard compiles once and serves the rest from the
content-addressed cache (and the simulator memo).  Two knobs bound the
latency cost of waiting for company:

* ``max_batch`` — a bucket that reaches this size flushes immediately;
* ``max_wait_s`` — a bucket older than this flushes regardless of size,
  so a lone request never waits more than one batching window.

The batcher itself is passive bookkeeping; the server's dispatcher pumps
``add``/``ready`` from its scheduling loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .request import InferenceRequest

BatchKey = Tuple[str, str, bool]  # (fingerprint, machine name, simulate?)


@dataclass
class Batch:
    """One coalesced unit of work bound for a single shard."""

    key: BatchKey
    requests: List[InferenceRequest] = field(default_factory=list)
    opened_at: float = 0.0          # monotonic time of first request

    @property
    def fingerprint(self) -> str:
        return self.key[0]

    @property
    def machine_name(self) -> str:
        return self.key[1]

    def __len__(self) -> int:
        return len(self.requests)


class AdaptiveBatcher:
    """Groups admitted requests into flush-ready batches."""

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.005):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._open: Dict[BatchKey, Batch] = {}

    # ------------------------------------------------------------------ #

    def add(self, request: InferenceRequest, now: float) -> Optional[Batch]:
        """File ``request``; returns a batch iff it just became full."""
        key: BatchKey = (request.key, request.machine_name or "",
                         bool(request.simulate))
        bucket = self._open.get(key)
        if bucket is None:
            bucket = self._open[key] = Batch(key=key, opened_at=now)
        bucket.requests.append(request)
        # Observability: the request leaves the admission queue here and
        # starts waiting for company — stamp the transition and flip the
        # open "queue" span over to a "batch" span (repro.obs).
        request.batched_at = now
        if request.queue_span is not None:
            request.queue_span.finish()
        if request.span is not None:
            from ..obs.tracing import tracer

            request.batch_span = tracer().begin(
                "batch", kind="batch", parent=request.span,
                attrs={"fingerprint": request.key})
        if len(bucket) >= self.max_batch:
            del self._open[key]
            return bucket
        return None

    def ready(self, now: float, force: bool = False) -> List[Batch]:
        """Buckets due for dispatch: older than ``max_wait_s``, or all of
        them when ``force`` (drain/shutdown)."""
        due = [key for key, bucket in self._open.items()
               if force or now - bucket.opened_at >= self.max_wait_s]
        return [self._open.pop(key) for key in due]

    def next_deadline(self, now: float) -> Optional[float]:
        """Seconds until the oldest open bucket must flush (None if
        nothing is pending) — the dispatcher's poll timeout."""
        if not self._open:
            return None
        oldest = min(b.opened_at for b in self._open.values())
        return max(0.0, self.max_wait_s - (now - oldest))

    def pending(self) -> int:
        return sum(len(b) for b in self._open.values())

    def __len__(self) -> int:
        return self.pending()
