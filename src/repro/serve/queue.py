"""Bounded, prioritized admission queue with explicit backpressure.

The front door of :class:`~repro.serve.CinnamonServer`.  Unlike
``queue.PriorityQueue``, saturation is an *immediate, explicit* rejection
(:class:`QueueSaturatedError`) rather than blocking the client — the
serving contract is "shed load visibly, never hang" — and closing the
queue lets producers drain gracefully: no new work is admitted but
everything already queued is still handed out.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional, Tuple

from .request import InferenceRequest


class QueueSaturatedError(RuntimeError):
    """Raised by ``put`` when the queue is at capacity (backpressure)."""

    def __init__(self, depth: int, maxsize: int):
        super().__init__(
            f"admission queue saturated ({depth}/{maxsize}); request "
            f"rejected — retry with backoff or raise queue_depth")
        self.depth = depth
        self.maxsize = maxsize


class QueueClosedError(RuntimeError):
    """Raised by ``put`` after ``close()`` (server shutting down)."""


class Empty(Exception):
    """Raised by ``get`` on timeout or when a closed queue runs dry."""


class AdmissionQueue:
    """Thread-safe bounded priority queue of inference requests.

    Ordering is (priority, admission sequence): within a priority class
    the queue is FIFO, so equal-priority requests cannot starve each
    other.  ``maxsize <= 0`` means unbounded (the loadgen's closed loop
    uses this).
    """

    def __init__(self, maxsize: int = 0):
        self.maxsize = maxsize
        self._heap: List[Tuple[int, int, InferenceRequest]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------ #

    def put(self, request: InferenceRequest) -> None:
        """Admit ``request`` or raise (never blocks)."""
        with self._lock:
            if self._closed:
                raise QueueClosedError("admission queue is closed")
            if self.maxsize > 0 and len(self._heap) >= self.maxsize:
                raise QueueSaturatedError(len(self._heap), self.maxsize)
            heapq.heappush(
                self._heap,
                (int(request.priority), next(self._seq), request))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> InferenceRequest:
        """Pop the highest-priority request, waiting up to ``timeout``.

        Raises :class:`Empty` on timeout, or immediately once the queue
        is both closed and drained.
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    raise Empty
                if not self._not_empty.wait(timeout):
                    raise Empty
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Stop admitting; queued requests remain retrievable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    def __len__(self) -> int:
        return self.depth()
