"""Load generator for :class:`~repro.serve.CinnamonServer`.

Two arrival models:

* **open loop** (``--mode open``): Poisson arrivals at ``--rate`` req/s,
  submitted on schedule regardless of completions — the honest way to
  measure a service under offered load (no coordinated omission); a
  saturated queue shows up as explicit rejections, not hidden stalls.
* **closed loop** (``--mode closed``): ``--concurrency`` clients, each
  submitting its next request the moment the previous one resolves —
  the throughput-ceiling probe.

The request stream samples the four-workload mix of
:func:`repro.workloads.serving_mix` (bootstrap / ResNet-20 block / HELR
step / BERT layer), optionally reweighted via ``--mix``.  ``--nn mixed``
adds the three whole models the :mod:`repro.nn` frontend lowers (HELR,
reduced ResNet-20, BERT encoder block) as extra classes; ``--nn only``
replays pure-nn traffic — both compose with ``--cluster``.  The run
prints
a throughput/latency report and can dump the full metrics snapshot
(``--metrics-out``) and the request-level trace (``--trace-out``).

Usage::

    python -m repro.serve.loadgen --requests 200 --workers 4 \\
        --machine cinnamon_4 --scale small --mode open --rate 100

``--cluster N`` swaps the in-process :class:`CinnamonServer` for a
:class:`~repro.cluster.ClusterRouter` fronting ``N`` worker *processes*
(multi-process scale-out; see :mod:`repro.cluster`); the report, metrics
snapshot, and trace outputs work identically.  ``--chaos-kill-worker K``
SIGKILLs a live worker ``K`` times mid-run to exercise the router's
zero-loss failover; ``--chaos-chip-crash`` arms simulated die deaths
(in-process via the fault injector, cluster via the first worker's
degrade-ladder recovery).

Trust chaos (:mod:`repro.trust`) injects *attacks* mid-run and asserts
the hardening layer absorbs them with zero lost legitimate requests:

* ``--chaos-tamper-cache N`` bit-flips every on-disk cache artifact N
  times — each flip must degrade to a verified miss + quarantine
  (``trust_tamper_detected_total``), never a crash or a poisoned load;
* ``--chaos-stale-key K`` (cluster) submits K requests pinned to a
  *revoked* key version — each must be rejected with a typed
  :class:`~repro.trust.errors.StaleKeyError`;
* ``--chaos-replay K`` (cluster) replays one freshness envelope K times
  — each replay must be rejected with a typed
  :class:`~repro.trust.errors.ReplayError`.

Attack submissions are accounted separately from the legitimate stream
(``attacks`` in the report); ``--fail-on-errors`` also fails the run if
any attack *leaked* (was accepted instead of rejected).

Live telemetry (:mod:`repro.obs.live`): ``--slo SPEC`` (repeatable)
declares burn-rate objectives for the run — fired alerts are journaled
as ``kind:"alert"`` rows and summarized in the report; ``--flight-dir``
arms the crash flight recorder (post-mortem bundles on worker death /
SLO page / trust rejection); ``--live-status FILE`` streams the status
document ``python -m repro.obs top FILE`` renders; ``--live-report
FILE`` captures the final status document after the run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..workloads.serving import MixEntry, serving_mix
from .faults import FaultInjector
from .metrics import MetricsRegistry
from .queue import QueueSaturatedError
from .request import InferenceRequest, Priority, RequestResult, RequestStatus
from .server import CinnamonServer

#: Wait bound for any single in-flight request during a loadgen run.
RESULT_TIMEOUT_S = 600.0


@dataclass
class LoadReport:
    """What one loadgen run measured."""

    mode: str
    machine: str
    scale: str
    offered: int                     # requests the generator tried to send
    duration_s: float
    counts: Dict[str, int] = field(default_factory=dict)
    throughput_rps: float = 0.0      # completed-OK per wall second
    latency: Dict[str, float] = field(default_factory=dict)
    queue_wait: Dict[str, float] = field(default_factory=dict)
    batch: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    per_class: Dict[str, int] = field(default_factory=dict)
    chaos: Dict[str, int] = field(default_factory=dict)
    #: Live-telemetry outcome (--slo): per-SLO burn/budget rows plus the
    #: alerts that fired during the run.
    slo: List[dict] = field(default_factory=list)
    alerts: List[dict] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return (self.counts.get("failed", 0)
                + self.counts.get("timeout", 0)
                + self.counts.get("rejected", 0))

    def as_dict(self) -> dict:
        return {
            "mode": self.mode, "machine": self.machine, "scale": self.scale,
            "offered": self.offered, "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps, "counts": self.counts,
            "latency_s": self.latency, "queue_wait_s": self.queue_wait,
            "batch": self.batch, "cache": self.cache,
            "per_class": self.per_class, "chaos": self.chaos,
            "slo": self.slo, "alerts": self.alerts,
        }

    def render(self) -> str:
        lines = [
            f"loadgen: {self.offered} requests ({self.mode} loop) on "
            f"{self.machine}, scale={self.scale}",
            f"  duration      {self.duration_s:8.2f} s",
            f"  throughput    {self.throughput_rps:8.1f} req/s (ok only)",
            "  outcomes      " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())),
            # Empty histograms report None quantiles — render as 0.
            f"  latency p50   {self.latency.get('p50') or 0:8.4f} s   "
            f"p95 {self.latency.get('p95') or 0:8.4f} s   "
            f"p99 {self.latency.get('p99') or 0:8.4f} s",
            f"  queue    p50  {self.queue_wait.get('p50') or 0:8.4f} s   "
            f"p95 {self.queue_wait.get('p95') or 0:8.4f} s",
            f"  batch size    mean {self.batch.get('mean') or 0:.2f}  "
            f"max {self.batch.get('max') or 0:.0f}  "
            f"({self.batch.get('count') or 0:.0f} batches)",
            f"  cache         hit rate {self.cache.get('hit_rate', 0):.1%} "
            f"({self.cache.get('hits', 0):.0f}/"
            f"{self.cache.get('lookups', 0):.0f} lookups)",
            "  per class     " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.per_class.items())),
        ]
        if self.chaos:
            lines.append("  chaos         " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.chaos.items())))
        for entry in self.slo:
            lines.append(
                f"  slo           {entry.get('slo', '?')}: "
                f"burn {entry.get('burn_rate', 0.0):.2f}x  "
                f"budget {entry.get('budget_remaining', 1.0):.1%}  "
                f"bad {entry.get('bad_fraction', 0.0):.1%} "
                f"({entry.get('events', 0)} events)")
        if self.alerts:
            lines.append(f"  alerts        {len(self.alerts)} fired: "
                         + "  ".join(sorted({
                             f"{a.get('slo', '?')}/{a.get('severity', '?')}"
                             for a in self.alerts})))
        return "\n".join(lines)


class LoadGenerator:
    """Replays a workload mix against a server."""

    def __init__(self, server: CinnamonServer, mix: Dict[str, MixEntry],
                 seed: int = 0, deadline_s: Optional[float] = None,
                 tenants: int = 1):
        self.server = server
        self.mix = mix
        self.deadline_s = deadline_s
        self.tenants = max(1, tenants)
        self._rng = random.Random(seed)
        self._names = list(mix)
        self._weights = [mix[name].weight for name in self._names]
        self._programs = {name: mix[name].build() for name in self._names}
        self._sent_per_class: Dict[str, int] = {n: 0 for n in self._names}
        self._sent_total = 0

    # ------------------------------------------------------------------ #

    def _next_request(self, machine) -> InferenceRequest:
        name = self._rng.choices(self._names, weights=self._weights)[0]
        self._sent_per_class[name] += 1
        self._sent_total += 1
        entry = self.mix[name]
        tenant = (f"t{self._sent_total % self.tenants}"
                  if self.tenants > 1 else "default")
        return InferenceRequest(
            program=self._programs[name], params=entry.params,
            machine=machine, deadline_s=self.deadline_s,
            priority=Priority.NORMAL, tenant=tenant,
            name=f"{name}-{self._sent_per_class[name]}")

    def run_open_loop(self, num_requests: int, rate_rps: float,
                      machine) -> List[RequestResult]:
        """Poisson arrivals at ``rate_rps``; returns one result per
        offered request (rejections included)."""
        results: List[Optional[RequestResult]] = [None] * num_requests
        handles = []
        start = time.monotonic()
        next_arrival = start
        for i in range(num_requests):
            next_arrival += self._rng.expovariate(rate_rps)
            delay = next_arrival - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            request = self._next_request(machine)
            try:
                handles.append((i, self.server.submit(request)))
            except QueueSaturatedError:
                results[i] = RequestResult(
                    request_id=request.request_id, name=request.label,
                    status=RequestStatus.REJECTED,
                    error="admission queue saturated")
        for i, handle in handles:
            results[i] = handle.result(timeout=RESULT_TIMEOUT_S)
        return [r for r in results if r is not None]

    def run_closed_loop(self, num_requests: int, concurrency: int,
                        machine) -> List[RequestResult]:
        """``concurrency`` synchronous clients sharing a request budget."""
        results: List[RequestResult] = []
        lock = threading.Lock()
        budget = iter(range(num_requests))

        def client():
            while True:
                with lock:
                    if next(budget, None) is None:
                        return
                    request = self._next_request(machine)
                try:
                    handle = self.server.submit(request)
                except QueueSaturatedError:
                    outcome = RequestResult(
                        request_id=request.request_id, name=request.label,
                        status=RequestStatus.REJECTED,
                        error="admission queue saturated")
                else:
                    outcome = handle.result(timeout=RESULT_TIMEOUT_S)
                with lock:
                    results.append(outcome)

        clients = [threading.Thread(target=client, name=f"client-{c}")
                   for c in range(concurrency)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        return results


# ---------------------------------------------------------------------- #

def _histogram_summary(metrics: MetricsRegistry, name: str) -> dict:
    snap = metrics.snapshot().get(name)
    if not snap or not snap["series"]:
        return {}
    return dict(snap["series"][0]["value"])


def _counter_value(metrics: MetricsRegistry, name: str) -> int:
    snap = metrics.snapshot().get(name)
    if not snap or not snap["series"]:
        return 0
    return int(sum(series["value"] for series in snap["series"]))


def _snapshot_counter(snapshot: dict, name: str) -> int:
    """Sum a counter's series out of an already-merged snapshot dict."""
    entry = snapshot.get(name)
    if not entry or not entry.get("series"):
        return 0
    return int(sum(series["value"] for series in entry["series"]))


def tamper_cache_dir(cache_dir) -> int:
    """Bit-flip one byte of every artifact pickle under ``cache_dir`` —
    the exact attack the signed manifest exists to catch.  Returns the
    number of files flipped."""
    flipped = 0
    for path in sorted(Path(cache_dir).glob("*.pkl")):
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            continue
        if not data:
            continue
        data[len(data) // 2] ^= 0x01
        try:
            path.write_bytes(bytes(data))
        except OSError:
            continue
        flipped += 1
    return flipped


def build_report(server: CinnamonServer, results: Sequence[RequestResult],
                 duration_s: float, *, mode: str, machine: str,
                 scale: str, offered: int,
                 per_class: Dict[str, int]) -> LoadReport:
    counts: Dict[str, int] = {}
    for result in results:
        counts[result.status.value] = counts.get(result.status.value, 0) + 1
    ok = counts.get("ok", 0)
    cache_totals = server.cache_stats()
    hits = cache_totals.get("memory_hits", 0) + cache_totals.get(
        "disk_hits", 0)
    lookups = hits + cache_totals.get("misses", 0)
    latency = _histogram_summary(server.metrics,
                                 "serve_request_latency_seconds")
    return LoadReport(
        mode=mode, machine=machine, scale=scale, offered=offered,
        duration_s=duration_s,
        counts=counts,
        throughput_rps=ok / duration_s if duration_s > 0 else 0.0,
        latency={k: latency.get(k) or 0.0
                 for k in ("p50", "p95", "p99", "mean", "max")},
        queue_wait=_histogram_summary(server.metrics,
                                      "serve_queue_wait_seconds"),
        batch=_histogram_summary(server.metrics, "serve_batch_size"),
        cache={"hits": hits, "lookups": lookups,
               "hit_rate": hits / lookups if lookups else 0.0},
        per_class=dict(per_class),
        chaos={
            "chip_failures": _counter_value(
                server.metrics, "serve_chip_failures_total"),
            "recoveries": _counter_value(
                server.metrics, "serve_recoveries_total"),
            "watchdog_timeouts": _counter_value(
                server.metrics, "serve_watchdog_timeouts_total"),
            "worker_restarts": _counter_value(
                server.metrics, "serve_worker_restarts_total"),
        },
    )


def parse_mix_weights(text: str) -> Dict[str, float]:
    """``"bootstrap=2,resnet-block=0"`` -> weight overrides."""
    weights = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        name, _, value = part.partition("=")
        weights[name.strip()] = float(value) if value else 1.0
    return weights


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Replay an encrypted-inference workload mix against "
                    "a CinnamonServer and report throughput/latency.")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--mode", choices=("open", "closed"),
                        default="closed")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="open-loop arrival rate, req/s (Poisson)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client count")
    parser.add_argument("--machine", default="cinnamon_4")
    parser.add_argument("--workers", type=int, default=4,
                        help="server session shards")
    parser.add_argument("--cluster", type=int, default=0, metavar="N",
                        help="serve through a ClusterRouter with N worker "
                             "processes instead of the in-process server")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait", type=float, default=0.005,
                        help="batching window, seconds")
    parser.add_argument("--queue-depth", type=int, default=0,
                        help="admission bound; 0 = unbounded")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small")
    parser.add_argument("--mix", default="",
                        help="weight overrides, e.g. 'bootstrap=2,"
                             "bert-layer=0.5'")
    parser.add_argument("--nn", choices=("off", "mixed", "only"),
                        default="off",
                        help="'mixed' adds the three lowered repro.nn "
                             "models (HELR / ResNet-20 / BERT encoder) to "
                             "the kernel mix; 'only' replays pure-nn "
                             "traffic")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline, seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chaos-chip-crash", type=int, default=0,
                        metavar="N",
                        help="kill a chip mid-simulation in N batches; "
                             "the server must recover via degraded-mode "
                             "recompilation with zero lost requests")
    parser.add_argument("--chaos-chip", type=int, default=None,
                        help="which die dies (default: last chip of "
                             "--machine)")
    parser.add_argument("--chaos-cycle", type=int, default=1000,
                        help="simulated cycle at which the chip dies")
    parser.add_argument("--chaos-kill-worker", type=int, default=0,
                        metavar="K",
                        help="cluster mode: SIGKILL a live worker K times "
                             "mid-run (failover must lose zero requests)")
    parser.add_argument("--chaos-kill-delay", type=float, default=1.0,
                        help="seconds between run start and each kill "
                             "(also spaces tamper/attack injections)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk compile cache directory "
                             "(cluster mode defaults to a private "
                             "temporary one)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="per-shard (or per-worker) in-memory LRU "
                             "bound; 1 forces disk reloads, which is what "
                             "--chaos-tamper-cache needs to bite")
    parser.add_argument("--chaos-tamper-cache", type=int, default=0,
                        metavar="N",
                        help="bit-flip every on-disk cache artifact N "
                             "times mid-run; the signed manifest must "
                             "degrade each to miss + quarantine")
    parser.add_argument("--chaos-stale-key", type=int, default=0,
                        metavar="K",
                        help="cluster mode: submit K requests pinned to "
                             "a revoked key version (typed rejection "
                             "expected)")
    parser.add_argument("--chaos-replay", type=int, default=0,
                        metavar="K",
                        help="cluster mode: replay one freshness "
                             "envelope K times (typed rejection expected)")
    parser.add_argument("--watchdog", type=float, default=None,
                        help="per-simulation wall-clock budget, seconds")
    parser.add_argument("--metrics-out", default=None,
                        help="write the metrics JSON snapshot here")
    parser.add_argument("--trace-out", default=None,
                        help="write the request-level trace JSON here")
    parser.add_argument("--obs", action="store_true",
                        help="enable repro.obs tracing for the run "
                             "(journal rows gain trace ids)")
    parser.add_argument("--obs-trace-out", default=None, metavar="FILE",
                        help="write the merged Chrome/Perfetto timeline "
                             "here (implies --obs)")
    parser.add_argument("--fail-on-errors", action="store_true",
                        help="exit 1 if any request was not served OK")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="SPEC",
                        help="declare an SLO for the run (repeatable): "
                             "'latency:<threshold_s>:<objective_pct>"
                             "[:<name>]', 'queue_wait:...', or "
                             "'availability:<objective_pct>[:<name>]'; "
                             "burn-rate alerts are journaled and "
                             "reported")
    parser.add_argument("--slo-window-scale", type=float,
                        default=1.0 / 60.0,
                        help="compress the SRE burn-rate windows by this "
                             "factor so seconds-long runs can fire "
                             "hour-scale rules (default 1/60)")
    parser.add_argument("--slo-min-events", type=int, default=10,
                        help="events required in the long window before "
                             "an SLO rule may fire")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="arm the flight recorder: post-mortem "
                             "bundles land here on worker death / SLO "
                             "page / trust rejection")
    parser.add_argument("--live-status", default=None, metavar="FILE",
                        help="continuously (re)write the live status "
                             "document here (python -m repro.obs top "
                             "FILE renders it)")
    parser.add_argument("--live-report", default=None, metavar="FILE",
                        help="write the final status document (tenants/"
                             "SLOs/alerts/flight bundles) here after "
                             "the run")
    parser.add_argument("--telemetry-interval", type=float, default=0.25,
                        help="cluster mode: worker metric-delta push "
                             "period, seconds (0 disables streaming; "
                             "the stats poll remains)")
    parser.add_argument("--tenants", type=int, default=1, metavar="N",
                        help="spread requests round-robin over N "
                             "billing tenants (t0..tN-1) to exercise "
                             "per-tenant cost attribution")
    args = parser.parse_args(argv)

    live_enabled = bool(args.slo or args.flight_dir or args.live_status
                        or args.live_report)

    if args.obs or args.obs_trace_out:
        from .. import obs

        obs.enable()
    mix_weights = parse_mix_weights(args.mix) or None
    if args.nn == "only":
        from ..workloads.serving import nn_mix

        mix = nn_mix(args.scale, weights=mix_weights)
    else:
        mix = serving_mix(args.scale, weights=mix_weights,
                          include_nn=args.nn == "mixed")
    keyvault = None
    if args.cluster > 0:
        from ..cluster import ClusterRouter

        if args.chaos_stale_key > 0:
            from ..trust.keyvault import KeyVault

            keyvault = KeyVault()
            keyvault.issue("default")
        server = ClusterRouter(num_workers=args.cluster,
                               queue_depth=args.queue_depth,
                               default_machine=args.machine,
                               cache_dir=args.cache_dir,
                               capacity=args.capacity,
                               keyvault=keyvault,
                               chaos_chip_crash=args.chaos_chip_crash,
                               chaos_cycle=args.chaos_cycle,
                               slos=args.slo,
                               flight_dir=args.flight_dir,
                               live_status_path=args.live_status
                               or args.live_report,
                               telemetry_interval_s=args.telemetry_interval
                               if live_enabled else 0.0,
                               slo_window_scale=args.slo_window_scale,
                               slo_min_events=args.slo_min_events)
    else:
        for flag, value in (("--chaos-kill-worker", args.chaos_kill_worker),
                            ("--chaos-stale-key", args.chaos_stale_key),
                            ("--chaos-replay", args.chaos_replay)):
            if value > 0:
                parser.error(f"{flag} requires --cluster N")
        faults = None
        if args.chaos_chip_crash > 0:
            from ..sim.config import resolve_machine

            chip = args.chaos_chip
            if chip is None:
                chip = resolve_machine(args.machine).num_chips - 1
            faults = FaultInjector().chip_crash(
                chip=chip, cycle=args.chaos_cycle,
                count=args.chaos_chip_crash)
        server = CinnamonServer(
            num_workers=args.workers, queue_depth=args.queue_depth,
            max_batch=args.max_batch, max_wait_s=args.max_wait,
            default_machine=args.machine, seed=args.seed, faults=faults,
            cache_dir=args.cache_dir, capacity=args.capacity,
            watchdog_s=args.watchdog,
            slos=args.slo, flight_dir=args.flight_dir,
            live_status_path=args.live_status or args.live_report,
            slo_window_scale=args.slo_window_scale,
            slo_min_events=args.slo_min_events)
    if args.chaos_tamper_cache > 0 \
            and getattr(server, "cache_dir", None) is None:
        parser.error("--chaos-tamper-cache needs a server with an "
                     "on-disk cache")
    generator = LoadGenerator(server, mix, seed=args.seed,
                              deadline_s=args.deadline,
                              tenants=args.tenants)

    with server:
        if args.cluster > 0:
            server.wait_ready(timeout=60)
        stop_chaos = threading.Event()
        chaos_threads: List[threading.Thread] = []
        attacks: Dict[str, int] = {}
        attacks_lock = threading.Lock()

        def _count(key: str, n: int = 1) -> None:
            with attacks_lock:
                attacks[key] = attacks.get(key, 0) + n

        def _attack_request(tag: str) -> InferenceRequest:
            # Built outside the generator so attack traffic never skews
            # the legitimate stream's per-class/offered accounting.
            name = next(iter(mix))
            entry = mix[name]
            return InferenceRequest(
                program=generator._programs[name], params=entry.params,
                machine=args.machine, priority=Priority.LOW,
                name=f"attack-{tag}")

        if args.chaos_kill_worker > 0:
            def _kill_loop():
                for _ in range(args.chaos_kill_worker):
                    if stop_chaos.wait(args.chaos_kill_delay):
                        return
                    victim = server.kill_worker()
                    if victim:
                        print(f"  chaos         SIGKILL -> {victim}",
                              file=sys.stderr)

            chaos_threads.append(threading.Thread(
                target=_kill_loop, name="chaos-kill", daemon=True))

        if args.chaos_tamper_cache > 0:
            def _tamper_loop():
                for _ in range(args.chaos_tamper_cache):
                    if stop_chaos.wait(args.chaos_kill_delay):
                        return
                    flipped = tamper_cache_dir(server.cache_dir)
                    _count("tamper_flips", flipped)
                    print(f"  chaos         bit-flipped {flipped} "
                          f"cached artifact(s)", file=sys.stderr)

            chaos_threads.append(threading.Thread(
                target=_tamper_loop, name="chaos-tamper", daemon=True))

        if args.chaos_stale_key > 0:
            def _stale_key_loop():
                from ..trust.errors import KeyVaultError

                if stop_chaos.wait(args.chaos_kill_delay):
                    return
                # Rotate to v2, revoke v1, then hammer with v1-pinned
                # requests: every one must draw a typed rejection.
                keyvault.rotate("default")
                keyvault.revoke("default", 1)
                for i in range(args.chaos_stale_key):
                    request = _attack_request(f"stale-key-{i}")
                    request.key_version = 1
                    _count("stale_key_sent")
                    try:
                        server.submit(request)
                    except KeyVaultError:
                        _count("stale_key_rejected")
                    else:
                        _count("stale_key_leaked")
                    if stop_chaos.wait(0.02):
                        return

            chaos_threads.append(threading.Thread(
                target=_stale_key_loop, name="chaos-stale-key",
                daemon=True))

        if args.chaos_replay > 0:
            def _replay_loop():
                from ..trust.errors import ReplayError
                from ..trust.freshness import EnvelopeMinter

                if stop_chaos.wait(args.chaos_kill_delay):
                    return
                envelope = EnvelopeMinter(sender="loadgen-attacker").mint()
                probe = _attack_request("replay-probe")
                probe.envelope = envelope
                probe_handle = None
                try:
                    probe_handle = server.submit(probe)
                    _count("replay_probe_sent")
                except Exception:
                    _count("replay_probe_failed")
                for i in range(args.chaos_replay):
                    replayed = _attack_request(f"replay-{i}")
                    replayed.envelope = envelope
                    _count("replay_sent")
                    try:
                        server.submit(replayed)
                    except ReplayError:
                        _count("replay_rejected")
                    else:
                        _count("replay_leaked")
                    if stop_chaos.wait(0.02):
                        return
                if probe_handle is not None:
                    try:
                        probe_handle.result(timeout=RESULT_TIMEOUT_S)
                    except Exception:
                        pass

            chaos_threads.append(threading.Thread(
                target=_replay_loop, name="chaos-replay", daemon=True))

        for thread in chaos_threads:
            thread.start()
        start = time.monotonic()
        if args.mode == "open":
            results = generator.run_open_loop(args.requests, args.rate,
                                              args.machine)
        else:
            results = generator.run_closed_loop(args.requests,
                                                args.concurrency,
                                                args.machine)
        server.drain()
        duration = time.monotonic() - start
        stop_chaos.set()
        for thread in chaos_threads:
            thread.join(timeout=5)
        report = build_report(
            server, results, duration, mode=args.mode,
            machine=args.machine, scale=args.scale,
            offered=args.requests, per_class=generator._sent_per_class)
        if args.cluster > 0:
            report.chaos = {
                "worker_deaths": _counter_value(
                    server.metrics, "cluster_worker_deaths_total"),
                "requeued": _counter_value(
                    server.metrics, "cluster_requeued_total"),
                "retries": _counter_value(
                    server.metrics, "serve_retries_total"),
            }
            # Trust counters live partly worker-side (tamper detections
            # happen where the disk load happens): read them from the
            # *merged* snapshot, not the router-local registry.
            merged = server.metrics_snapshot()
            for key, metric in (
                    ("tamper_detected", "trust_tamper_detected_total"),
                    ("replay_rejected", "trust_replay_rejected_total"),
                    ("stale_key_rejections",
                     "trust_stale_key_rejections_total"),
                    ("trust_rejections", "cluster_trust_rejections_total"),
                    ("recoveries", "runtime_recoveries_total")):
                value = _snapshot_counter(merged, metric)
                if value:
                    report.chaos[key] = value
        elif args.chaos_tamper_cache > 0:
            report.chaos["tamper_detected"] = _counter_value(
                server.metrics, "trust_tamper_detected_total")
        if attacks:
            report.chaos.update(attacks)
        live = getattr(server, "live", None)
        if live is not None:
            # One last evaluation over the drained run, then capture the
            # SLO table + fired alerts into the report.
            live.tick()
            report.slo = live.engine.status()
            report.alerts = live.alerts
        print(report.render())
        if args.live_report and live is not None:
            with open(args.live_report, "w") as handle:
                json.dump(live.status_document(), handle, indent=2)
            print(f"  live report   {args.live_report}")
        if args.metrics_out:
            snapshot = server.metrics_snapshot()
            snapshot["loadgen"] = report.as_dict()
            with open(args.metrics_out, "w") as handle:
                json.dump(snapshot, handle, indent=2)
            print(f"  metrics JSON  {args.metrics_out}")
        if args.trace_out:
            server.export_trace(args.trace_out)
            print(f"  trace JSON    {args.trace_out}")
        if args.obs_trace_out:
            from ..obs import export_chrome_trace

            events = export_chrome_trace(args.obs_trace_out)
            print(f"  chrome trace  {args.obs_trace_out} "
                  f"({events} events)")

    if args.fail_on_errors and report.failed:
        print(f"loadgen: FAIL — {report.failed} request(s) not served OK",
              file=sys.stderr)
        return 1
    if args.fail_on_errors:
        leaked = sum(v for k, v in report.chaos.items()
                     if str(k).endswith("_leaked"))
        if leaked:
            print(f"loadgen: FAIL — {leaked} attack(s) leaked past the "
                  f"trust layer", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
