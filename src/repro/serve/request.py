"""Request/response types of the serving layer.

An :class:`InferenceRequest` is everything a client hands the server: the
DSL program, its parameters, the machine to lay it out for, plus service
metadata (priority, deadline).  The server answers with a
:class:`RequestResult` carrying the outcome and a full latency breakdown;
clients wait on the :class:`RequestHandle` returned by ``submit``.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..core.compiler import CompilerOptions
from ..sim.simulator import SimulationResult

_REQUEST_IDS = itertools.count(1)


class Priority(enum.IntEnum):
    """Admission priority: lower value dequeues first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


class RequestStatus(str, enum.Enum):
    """Terminal state of one request."""

    OK = "ok"
    REJECTED = "rejected"    # admission queue saturated (backpressure)
    TIMEOUT = "timeout"      # deadline expired before execution finished
    FAILED = "failed"        # retries exhausted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class InferenceRequest:
    """One encrypted-inference job as submitted by a client.

    ``deadline_s`` is relative to submission: a request still waiting (or
    dispatched but unfinished) past it resolves to ``TIMEOUT``.  ``name``
    labels the request in traces and metrics; ``tag`` distinguishes
    otherwise-identical simulations.
    """

    program: object                   # CinnamonProgram
    params: object
    machine: object = None
    options: Optional[CompilerOptions] = None
    priority: Priority = Priority.NORMAL
    deadline_s: Optional[float] = None
    simulate: bool = True
    tag: str = ""
    name: Optional[str] = None
    tenant: str = "default"           # quota/fair-share accounting unit
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    # repro.trust: the client's freshness claim (nonce + timestamp + seq,
    # checked by the router's ReplayGuard when set) and the evaluation-key
    # version the request is pinned to (None = whatever is active).
    envelope: object = None           # trust.freshness.FreshnessEnvelope
    key_version: Optional[int] = None

    # Filled in at admission by the server:
    key: Optional[str] = None         # compile fingerprint
    machine_name: Optional[str] = None
    submitted_at: Optional[float] = None  # monotonic
    batched_at: Optional[float] = None    # monotonic; set by the batcher
    tuned: bool = False               # options swapped from the tuning DB
    # repro.obs spans carried across the thread hops of the data path
    # (admission thread -> dispatcher -> shard executor):
    span: object = None               # root "serve" span of this request
    queue_span: object = None         # open while waiting for dispatch
    batch_span: object = None         # open while coalescing in a bucket

    @property
    def label(self) -> str:
        return self.name or getattr(self.program, "name", f"req-{self.request_id}")

    def expired(self, now: float) -> bool:
        return (self.deadline_s is not None
                and self.submitted_at is not None
                and now - self.submitted_at > self.deadline_s)


@dataclass
class LatencyBreakdown:
    """Where one request's wall time went (seconds)."""

    queue_s: float = 0.0        # admission queue + batcher wait
    batch_s: float = 0.0        # batcher coalescing portion of queue_s
    execute_s: float = 0.0      # compile + simulate inside the shard
    total_s: float = 0.0        # submit -> resolution

    def as_dict(self) -> dict:
        return {"queue_s": self.queue_s, "batch_s": self.batch_s,
                "execute_s": self.execute_s, "total_s": self.total_s}


@dataclass
class RequestResult:
    """Outcome of one request."""

    request_id: int
    name: str
    status: RequestStatus
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    attempts: int = 0               # execution attempts (1 = no retries)
    shard: Optional[int] = None
    batch_size: int = 0
    cache: Optional[str] = None     # miss | memory | disk
    cycles: Optional[int] = None
    sim: Optional[SimulationResult] = None
    compiled: object = None
    error: Optional[str] = None
    #: Per-request cost rollup for tenant attribution (schema 8):
    #: ``{"sim_cycles", "bootstraps", "bytes", "compile_s"}``.
    cost: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "name": self.name,
            "status": self.status.value,
            "latency": self.latency.as_dict(),
            "attempts": self.attempts,
            "shard": self.shard,
            "batch_size": self.batch_size,
            "cache": self.cache,
            "cycles": self.cycles,
            "error": self.error,
            "cost": self.cost,
        }


def cost_rollup(program, cache: Optional[str], compiled, sim) -> dict:
    """Per-request cost attribution (schema 8): simulated cycles,
    bootstrap count, HBM+network bytes moved, and compile wall — the
    latter only on cache misses, so a hit is not billed for the compile
    some earlier request already paid for.  Shared by the cluster worker
    and the single-process server so both paths bill identically."""
    bootstraps = sum(1 for op in getattr(program, "ops", None) or ()
                     if getattr(op, "opcode", None) == "bootstrap")
    stats = getattr(compiled, "compile_stats", None)
    compile_s = (float(getattr(stats, "total_seconds", 0.0) or 0.0)
                 if cache == "miss" else 0.0)
    return {
        "sim_cycles": int(sim.cycles) if sim is not None else 0,
        "bootstraps": bootstraps,
        "bytes": (int(sim.hbm_bytes + sim.network_bytes)
                  if sim is not None else 0),
        "compile_s": compile_s,
    }


class RequestHandle:
    """Client-side future for one submitted request."""

    def __init__(self, request: InferenceRequest):
        self.request = request
        self._done = threading.Event()
        self._result: Optional[RequestResult] = None

    def resolve(self, result: RequestResult) -> None:
        self._result = result
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> RequestResult:
        """Block until the request resolves; raises ``TimeoutError`` if it
        does not within ``timeout`` seconds."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.label!r} not resolved "
                f"within {timeout}s")
        return self._result
