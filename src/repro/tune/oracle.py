"""The simulator-backed cost function of the autotuner.

One :class:`SimulationOracle` owns a workload (program + params + base
options) and a :class:`~repro.runtime.CinnamonSession`.  Evaluating a
candidate compiles it through the session (content-addressed, so config
re-visits and re-tunes hit the cache) and cycle-simulates the result on
the candidate's machine — fanned out through ``run_batch``'s worker pool.

Fidelity: ``fidelity == 1.0`` simulates to completion.  Lower fidelities
cap the simulated cycle frontier at ``fidelity x reference_cycles`` (the
default config's full run); a candidate that finishes under the cap is
exact anyway, while a truncated one is extrapolated from its
retired-instruction fraction:

    est_cycles = simulated_cycles * total_instructions / retired

which is exactly the signal successive halving needs — configs clearly
slower than the incumbent are eliminated after simulating a prefix.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.compiler import CompilerOptions
from ..runtime.session import CinnamonSession, CompileJob
from .space import Candidate, MachineVariant
from .strategies import Trial

#: Floor of any truncated-simulation cap, in simulated cycles; below this
#: the extrapolation has not seen a full pipeline fill.
MIN_TRUNCATED_CYCLES = 2000


class SimulationOracle:
    """compile + cycle-simulate as a (cached, parallel) cost function."""

    def __init__(self, session: CinnamonSession, program, params,
                 base_options: Optional[CompilerOptions] = None,
                 job_prefix: str = "tune",
                 max_workers: Optional[int] = None):
        self.session = session
        self.program = program
        self.params = params
        self.base_options = base_options or CompilerOptions()
        self.job_prefix = job_prefix
        self.max_workers = max_workers
        #: Full-run cycle count of the reference (default) config; set by
        #: the first exact evaluation and used to scale fidelity caps.
        self.reference_cycles: Optional[int] = None
        self.evaluations = 0

    # ------------------------------------------------------------------ #

    def evaluate_many(self, candidates: Sequence[Candidate],
                      fidelity: float = 1.0, rung: int = 0) -> List[Trial]:
        """Evaluate candidates concurrently at one fidelity level."""
        if not 0 < fidelity <= 1:
            raise ValueError(f"fidelity must be in (0, 1], got {fidelity}")
        max_cycles = None
        if fidelity < 1.0 and self.reference_cycles:
            max_cycles = max(MIN_TRUNCATED_CYCLES,
                             int(fidelity * self.reference_cycles))
        jobs = []
        for cand in candidates:
            machine = cand.machine.resolve()
            jobs.append(CompileJob(
                program=self.program,
                params=self.params,
                options=cand.options(self.base_options),
                sim_machine=machine,
                tag="" if max_cycles is None else f"rung{rung}",
                name=f"{self.job_prefix}:{self.program.name}:r{rung}",
                max_cycles=max_cycles,
            ))
        started = time.perf_counter()
        results = self.session.run_batch(jobs, max_workers=self.max_workers)
        elapsed = time.perf_counter() - started
        trials = []
        for cand, job_result in zip(candidates, results):
            # Only the ISA and the statistics matter from here on; the
            # limb IR is the bulk of the artifact's memory, release it.
            job_result.compiled.summarize_comm(release=True)
            result = job_result.result
            total = job_result.compiled.instruction_count
            if result.truncated:
                retired = max(1, result.instructions)
                cycles = result.cycles * (total / retired)
                exact = False
            else:
                cycles = float(result.cycles)
                exact = True
            self.evaluations += 1
            trials.append(Trial(
                candidate=cand,
                cycles=cycles,
                exact=exact,
                rung=rung,
                fidelity=fidelity,
                cache=job_result.cache,
                seconds=elapsed / max(1, len(candidates)),
                measured={
                    "instructions": result.instructions,
                    "machine": result.machine,
                    "simulated_cycles": result.cycles,
                },
            ))
        return trials

    def evaluate_reference(self, candidate: Candidate) -> Trial:
        """Full-fidelity run of the default config; sets the fidelity
        scale every truncated rung is capped against."""
        trial = self.evaluate_many([candidate], fidelity=1.0, rung=0)[0]
        self.reference_cycles = int(trial.cycles)
        return trial
