"""Search strategies over a :class:`~repro.tune.space.SearchSpace`.

Three strategies share one protocol — ``run(space, oracle, budget)`` —
where ``oracle`` is a cost function exposing::

    oracle.evaluate_many(candidates, fidelity=1.0, rung=0) -> List[Trial]

``budget`` counts *candidates admitted to the search* (the CLI's
``--budget``): exhaustive grid and random search evaluate each admitted
candidate once at full fidelity, while successive halving starts every
admitted candidate on a cheap truncated simulation and only promotes the
top ``1/eta`` fraction per rung to progressively fuller runs — the
classic multi-fidelity bandit, with the compile cache making re-visited
configs nearly free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from .space import Candidate, SearchSpace


@dataclass
class Trial:
    """One candidate evaluation (possibly at reduced fidelity)."""

    candidate: Candidate
    cycles: float                 # estimated total simulated cycles
    exact: bool                   # True when the simulation ran to completion
    rung: int = 0                 # fidelity rung that produced this number
    fidelity: float = 1.0
    pruned: bool = False          # dropped by halving before the top rung
    cache: str = ""               # where the compile came from
    seconds: float = 0.0          # wall time of this evaluation
    measured: dict = field(default_factory=dict)  # extra oracle metrics

    def as_dict(self) -> dict:
        return {
            "config": self.candidate.as_dict(),
            "cycles": self.cycles,
            "exact": self.exact,
            "rung": self.rung,
            "fidelity": self.fidelity,
            "pruned": self.pruned,
            "cache": self.cache,
            "seconds": self.seconds,
        }


class Strategy:
    """Base class: deterministic given ``seed``."""

    name = "strategy"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _rng(self) -> random.Random:
        return random.Random(self.seed)

    def run(self, space: SearchSpace, oracle, budget: int) -> List[Trial]:
        raise NotImplementedError


class GridSearch(Strategy):
    """Exhaustive enumeration at full fidelity (small spaces)."""

    name = "grid"

    def run(self, space: SearchSpace, oracle, budget: int) -> List[Trial]:
        candidates = space.enumerate()
        if budget and budget < len(candidates):
            candidates = candidates[:budget]
        return oracle.evaluate_many(candidates, fidelity=1.0, rung=0)


class RandomSearch(Strategy):
    """Seeded uniform sampling at full fidelity."""

    name = "random"

    def run(self, space: SearchSpace, oracle, budget: int) -> List[Trial]:
        candidates = space.sample(budget, self._rng())
        return oracle.evaluate_many(candidates, fidelity=1.0, rung=0)


class SuccessiveHalving(Strategy):
    """Multi-fidelity halving: truncated sims first, survivors promoted.

    With ``n`` admitted candidates and elimination factor ``eta``, rung
    ``r`` keeps ``ceil(n / eta**r)`` candidates and runs them at fidelity
    ``eta**(r - R + 1)`` of the reference simulation length (the final
    rung ``R - 1`` always runs at fidelity 1.0, i.e. to completion), so
    losers are eliminated after simulating only a prefix of their
    schedule.  Deterministic: sampling is seeded and promotion ties break
    on the candidate's canonical key.
    """

    name = "halving"

    def __init__(self, seed: int = 0, eta: int = 2,
                 min_fidelity: float = 0.125):
        super().__init__(seed)
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if not 0 < min_fidelity <= 1:
            raise ValueError(f"min_fidelity must be in (0, 1], got "
                             f"{min_fidelity}")
        self.eta = eta
        self.min_fidelity = min_fidelity

    def plan(self, n: int) -> List[dict]:
        """The rung schedule for ``n`` starting candidates.

        Returns ``[{"rung", "keep", "fidelity"}, ...]`` — exposed
        separately so the promotion math is unit-testable without a
        simulator in the loop.
        """
        if n < 1:
            return []
        rungs = max(1, int(math.floor(math.log(n, self.eta))) + 1)
        out = []
        for r in range(rungs):
            keep = max(1, math.ceil(n / self.eta ** r))
            fidelity = max(self.min_fidelity,
                           float(self.eta) ** (r - rungs + 1))
            out.append({"rung": r, "keep": keep, "fidelity": fidelity})
        out[-1]["fidelity"] = 1.0
        return out

    def run(self, space: SearchSpace, oracle, budget: int) -> List[Trial]:
        survivors = space.sample(budget, self._rng())
        schedule = self.plan(len(survivors))
        all_trials: List[Trial] = []
        for stage in schedule:
            if len(survivors) > stage["keep"]:
                survivors = survivors[:stage["keep"]]
            trials = oracle.evaluate_many(
                survivors, fidelity=stage["fidelity"], rung=stage["rung"])
            ranked = sorted(trials,
                            key=lambda t: (t.cycles, t.candidate.key()))
            next_keep = (schedule[stage["rung"] + 1]["keep"]
                         if stage["rung"] + 1 < len(schedule) else 1)
            for i, trial in enumerate(ranked):
                last = stage["rung"] == len(schedule) - 1
                trial.pruned = (not last) and i >= next_keep
            all_trials.extend(ranked)
            survivors = [t.candidate for t in ranked if not t.pruned]
        return all_trials


STRATEGIES = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    SuccessiveHalving.name: SuccessiveHalving,
}


def make_strategy(name: str, seed: int = 0,
                  eta: Optional[int] = None) -> Strategy:
    """Instantiate a strategy by CLI name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; valid choices: "
            + ", ".join(sorted(STRATEGIES))) from None
    if cls is SuccessiveHalving and eta is not None:
        return cls(seed=seed, eta=eta)
    return cls(seed=seed)
