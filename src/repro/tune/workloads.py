"""Named tunable workloads.

The CLI's ``--workload`` names resolve here.  Each entry builds a
``(program, params, base_options)`` triple at one of two scales:

* ``"paper"`` — the architectural scale the paper evaluates (the real
  BOOTSTRAP_13 plan, N = 64K-equivalent parameters).  A single compile
  takes tens of seconds; tuning budgets amortize through the compile
  cache.
* ``"small"`` — structurally identical miniatures (the serving layer's
  CI mix) that compile in well under a second, for smoke runs, tests,
  and the tuning CI gate.

The builders intentionally mirror :func:`repro.workloads.serving
.serving_mix` and :func:`repro.experiments.common.compile_bootstrap`, so
a DB entry tuned here matches the fingerprint those paths compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.compiler import CompilerOptions
from ..core.dsl.program import CinnamonProgram
from ..core.ir.bootstrap_graph import BOOTSTRAP_13
from ..fhe.params import ArchParams
from ..workloads.bootstrap import bootstrap_program
from ..workloads.kernels import (
    activation_kernel,
    bootstrap_kernel,
    matmul_kernel,
)
from ..workloads.serving import SMALL_BOOTSTRAP_PLAN

SCALES = ("small", "paper")


@dataclass(frozen=True)
class TunableWorkload:
    """One named tuning target at one scale."""

    name: str
    scale: str
    build: Callable[[], Tuple[CinnamonProgram, object, CompilerOptions]]

    def materialize(self) -> Tuple[CinnamonProgram, object, CompilerOptions]:
        """``(program, params, base_options)`` for the oracle."""
        return self.build()


def _paper_bootstrap():
    # Matches experiments.common.compile_bootstrap: same program shape,
    # same params, same plan -> same tuning key as fig16's --tuned mode.
    params = ArchParams(max_level=BOOTSTRAP_13.top_level)
    program = bootstrap_program(BOOTSTRAP_13, num_streams=1)
    return program, params, CompilerOptions(bootstrap_plan=BOOTSTRAP_13)


def _small_bootstrap():
    params = ArchParams(max_level=SMALL_BOOTSTRAP_PLAN.top_level)
    program = bootstrap_kernel(SMALL_BOOTSTRAP_PLAN, entry_level=2)
    return program, params, CompilerOptions()


def _matmul(name: str, diagonals: int, level: int, params: ArchParams):
    return (matmul_kernel(name, diagonals, level), params,
            CompilerOptions())


def _activation(name: str, degree: int, level: int, params: ArchParams):
    return (activation_kernel(name, degree, level), params,
            CompilerOptions())


def _nn(name: str, scale: str):
    # Mirrors repro.workloads.serving.nn_mix: whole lowered models as
    # tuning targets.  The paper-scale deep models pass BOOTSTRAP_13
    # explicitly so the oracle's options fingerprint matches the plan
    # the lowering scheduled against.
    from ..workloads.serving import nn_mix

    entry = nn_mix(scale)[name]
    plan = BOOTSTRAP_13 if scale == "paper" and name != "nn-helr" else None
    options = CompilerOptions(bootstrap_plan=plan) if plan \
        else CompilerOptions()
    return entry.build(), entry.params, options


_BUILDERS: Dict[Tuple[str, str], Callable] = {
    ("bootstrap", "paper"): _paper_bootstrap,
    ("bootstrap", "small"): _small_bootstrap,
    ("resnet-block", "paper"):
        lambda: _matmul("conv", 27, 12, ArchParams()),
    ("resnet-block", "small"):
        lambda: _matmul("conv", 6, 6, ArchParams(max_level=16)),
    ("helr-step", "paper"):
        lambda: _activation("sigmoid", 7, 8, ArchParams()),
    ("helr-step", "small"):
        lambda: _activation("sigmoid", 3, 6, ArchParams(max_level=16)),
    ("bert-layer", "paper"):
        lambda: _matmul("qkv", 48, 12, ArchParams()),
    ("bert-layer", "small"):
        lambda: _matmul("qkv", 8, 6, ArchParams(max_level=16)),
    ("nn-helr", "paper"): lambda: _nn("nn-helr", "paper"),
    ("nn-helr", "small"): lambda: _nn("nn-helr", "small"),
    ("nn-resnet20", "paper"): lambda: _nn("nn-resnet20", "paper"),
    ("nn-resnet20", "small"): lambda: _nn("nn-resnet20", "small"),
    ("nn-bert-encoder", "paper"): lambda: _nn("nn-bert-encoder", "paper"),
    ("nn-bert-encoder", "small"): lambda: _nn("nn-bert-encoder", "small"),
}

WORKLOAD_NAMES = tuple(sorted({name for name, _ in _BUILDERS}))


def get_workload(name: str, scale: str = "small") -> TunableWorkload:
    """Resolve a named workload at a scale; raises with the valid names."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; valid choices: "
                         + ", ".join(repr(s) for s in SCALES))
    try:
        build = _BUILDERS[(name, scale)]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; valid choices: "
            + ", ".join(repr(n) for n in WORKLOAD_NAMES)) from None
    return TunableWorkload(name=name, scale=scale, build=build)
