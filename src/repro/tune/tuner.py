"""The tuning orchestrator: space x strategy x oracle -> best config.

:class:`Tuner` wires the pieces together: it builds (or accepts) a
search space, always measures the stock-default configuration at full
fidelity (so the reported best can never be worse than the default —
the default is itself a candidate), runs the chosen strategy through the
session's cached compile + simulate oracle, persists the winner to the
:class:`~repro.tune.db.TuningDB`, and appends a ``kind: "tune"`` entry
(schema 4) to the session trace.

The module-level :func:`apply_tuning` is the integration hook behind
``repro.compile(..., tune=...)`` and ``CinnamonServer(tuned=True)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.compiler import CompilerOptions
from ..runtime.session import CinnamonSession
from .db import TuningDB, default_db_path, tuning_key
from .oracle import SimulationOracle
from .space import Candidate, MachineVariant, SearchSpace, \
    default_candidate, default_space
from .strategies import Strategy, Trial, make_strategy
from .workloads import TunableWorkload, get_workload

#: Candidate budgets of the two facade modes.
QUICK_BUDGET = 8
FULL_BUDGET = 32


@dataclass
class TuningReport:
    """Everything one tuning run produced."""

    workload: str
    machine: str                 # machine label (resolved name)
    goal: str
    strategy: str
    budget: int
    default_cycles: float
    best_cycles: float
    best: Candidate
    default: Candidate
    trials: List[Trial] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    db_path: Optional[str] = None
    db_key: Optional[str] = None

    @property
    def speedup(self) -> float:
        """Default cycles over best cycles (>= 1.0 by construction)."""
        return self.default_cycles / max(1.0, self.best_cycles)

    @property
    def candidates_tried(self) -> int:
        return len({t.candidate.key() for t in self.trials})

    @property
    def pruned(self) -> int:
        return sum(1 for t in self.trials if t.pruned)

    @property
    def rungs(self) -> int:
        return len({t.rung for t in self.trials})

    def ranking(self) -> List[Trial]:
        """Best measurement per distinct candidate, fastest first.

        Exact (full-fidelity) measurements outrank extrapolations of the
        same candidate; ties break on the canonical candidate key so the
        leaderboard is deterministic.
        """
        best_by_key = {}
        for trial in self.trials:
            key = trial.candidate.key()
            incumbent = best_by_key.get(key)
            if incumbent is None or (trial.exact, -trial.cycles) > \
                    (incumbent.exact, -incumbent.cycles):
                best_by_key[key] = trial
        return sorted(best_by_key.values(),
                      key=lambda t: (not t.exact, t.cycles,
                                     t.candidate.key()))

    def leaderboard(self, limit: int = 10) -> str:
        """A printable ranking table."""
        lines = [
            f"Tuning leaderboard — {self.workload} on {self.machine} "
            f"({self.strategy}, budget {self.budget}, goal {self.goal})",
            f"{'rank':>4}  {'cycles':>12}  {'vs default':>10}  "
            f"{'rung':>4}  config",
        ]
        default_key = self.default.key()
        for rank, trial in enumerate(self.ranking()[:limit], start=1):
            marker = " *default*" if trial.candidate.key() == default_key \
                else ""
            cycles = (f"{trial.cycles:>12.0f}" if trial.exact
                      else f"~{trial.cycles:>11.0f}")
            lines.append(
                f"{rank:>4}  {cycles}  "
                f"{self.default_cycles / max(1.0, trial.cycles):>9.2f}x  "
                f"{trial.rung:>4}  {trial.candidate.describe()}{marker}")
        lines.append(
            f"best: {self.best_cycles:.0f} cycles "
            f"({self.speedup:.2f}x vs default {self.default_cycles:.0f}); "
            f"{self.candidates_tried} candidates, {self.pruned} pruned, "
            f"compile cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses, {self.seconds:.1f}s")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "machine": self.machine,
            "goal": self.goal,
            "strategy": self.strategy,
            "budget": self.budget,
            "default_cycles": self.default_cycles,
            "best_cycles": self.best_cycles,
            "speedup": self.speedup,
            "best_config": self.best.as_dict(),
            "default_config": self.default.as_dict(),
            "candidates_tried": self.candidates_tried,
            "pruned": self.pruned,
            "rungs": self.rungs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "seconds": self.seconds,
            "db_path": self.db_path,
            "db_key": self.db_key,
            "trials": [t.as_dict() for t in self.trials],
        }


class Tuner:
    """Simulator-guided autotuning of compiler & machine configuration."""

    def __init__(self, session: Optional[CinnamonSession] = None,
                 cache_dir=None, db: Optional[TuningDB] = None,
                 seed: int = 0, max_workers: Optional[int] = None):
        self.session = session or CinnamonSession(cache_dir=cache_dir,
                                                  capacity=4)
        # `db or ...` would discard an *empty* TuningDB (len() == 0 makes
        # it falsy) and silently retarget the default path.
        self.db = db if db is not None else TuningDB(
            default_db_path(cache_dir))
        self.seed = seed
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #

    def tune(self, workload="bootstrap", machine="cinnamon_4", *,
             scale: str = "small", strategy: str = "halving",
             budget: int = 16, goal: str = "cycles",
             space: Optional[SearchSpace] = None,
             tune_machine: bool = False, eta: Optional[int] = None,
             persist: bool = True) -> TuningReport:
        """Tune a named workload (see :mod:`repro.tune.workloads`)."""
        if isinstance(workload, TunableWorkload):
            target = workload
        else:
            target = get_workload(workload, scale)
        program, params, base_options = target.materialize()
        return self.tune_program(
            program, params, machine, base_options=base_options,
            workload_name=target.name, strategy=strategy, budget=budget,
            goal=goal, space=space, tune_machine=tune_machine, eta=eta,
            persist=persist)

    def tune_program(self, program, params, machine, *,
                     base_options: Optional[CompilerOptions] = None,
                     workload_name: Optional[str] = None,
                     strategy: str = "halving", budget: int = 16,
                     goal: str = "cycles",
                     space: Optional[SearchSpace] = None,
                     tune_machine: bool = False,
                     eta: Optional[int] = None,
                     persist: bool = True) -> TuningReport:
        """Tune an arbitrary program against the simulator."""
        if goal != "cycles":
            raise ValueError(f"unknown goal {goal!r}; only 'cycles' is "
                             "supported")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        variant = MachineVariant.of(machine)
        label = variant.label
        workload_name = workload_name or program.name
        space = space or default_space(variant, params=params,
                                       tune_machine=tune_machine)
        strategy_obj: Strategy = make_strategy(strategy, seed=self.seed,
                                               eta=eta)
        oracle = SimulationOracle(self.session, program, params,
                                  base_options=base_options,
                                  job_prefix=f"tune-{workload_name}",
                                  max_workers=self.max_workers)

        stats0 = self.session.cache_stats.as_dict()
        started = time.perf_counter()
        # The incumbent: the stock config at full fidelity.  This both
        # anchors the fidelity scale for truncated rungs and guarantees
        # best <= default (the default is always in the pool).
        baseline = default_candidate(variant, base_options, params)
        default_trial = oracle.evaluate_reference(baseline)
        trials = [default_trial]
        trials += strategy_obj.run(space, oracle, budget)
        elapsed = time.perf_counter() - started
        stats1 = self.session.cache_stats.as_dict()

        exact = [t for t in trials if t.exact]
        best_trial = min(exact, key=lambda t: (t.cycles,
                                               t.candidate.key()))
        report = TuningReport(
            workload=workload_name,
            machine=label,
            goal=goal,
            strategy=strategy_obj.name,
            budget=budget,
            default_cycles=default_trial.cycles,
            best_cycles=best_trial.cycles,
            best=best_trial.candidate,
            default=baseline,
            trials=trials,
            cache_hits=(stats1["memory_hits"] + stats1["disk_hits"]
                        - stats0["memory_hits"] - stats0["disk_hits"]),
            cache_misses=stats1["misses"] - stats0["misses"],
            seconds=elapsed,
        )

        key = tuning_key(program, params, label, goal)
        report.db_key = key
        if persist:
            self.db.put(key, {
                "workload": workload_name,
                "machine": label,
                "goal": goal,
                "assignment": best_trial.candidate.as_dict(),
                "cycles": best_trial.cycles,
                "default_cycles": default_trial.cycles,
                "strategy": strategy_obj.name,
                "budget": budget,
            })
            report.db_path = str(self.db.path)

        self.session.record_tune(
            job=f"tune-{workload_name}",
            workload=workload_name,
            machine=label,
            strategy=strategy_obj.name,
            goal=goal,
            budget=budget,
            candidates=report.candidates_tried,
            pruned=report.pruned,
            rungs=report.rungs,
            default_cycles=int(default_trial.cycles),
            best_cycles=int(best_trial.cycles),
            best_config=best_trial.candidate.as_dict(),
            cache_hits=report.cache_hits,
            seconds=elapsed,
            trials=[t.as_dict() for t in trials],
        )
        return report


# ---------------------------------------------------------------------- #
# Facade integration: repro.compile(tune=...) / CinnamonServer(tuned=True)

def apply_tuning(program, params, machine, options, mode, *,
                 session: Optional[CinnamonSession] = None,
                 db: Optional[TuningDB] = None,
                 goal: str = "cycles") -> Optional[CompilerOptions]:
    """Resolve the tuned options for a compile request.

    ``mode`` is ``repro.compile``'s ``tune=`` argument: ``"db"`` (or
    ``True``) only applies an existing DB entry; ``"quick"`` and
    ``"full"`` run an on-the-spot successive-halving tune (budget
    8 / 32) when the DB has no entry yet.  Returns ``None`` when nothing
    applies (no entry, ``mode`` falsy), so callers fall through to their
    stock options.
    """
    if not mode:
        return None
    if mode is True:
        mode = "db"
    if mode not in ("db", "quick", "full"):
        raise ValueError(
            f"unknown tune mode {mode!r}; valid choices: 'quick', 'full', "
            "'db' (or True)")
    db = db if db is not None else TuningDB(default_db_path())
    variant = MachineVariant.of(
        machine if machine is not None
        else (options.machine or options.num_chips if options is not None
              else 4))
    label = variant.label
    tuned = db.tuned_options(program, params, label, options, goal)
    if tuned is not None or mode == "db":
        return tuned
    tuner = Tuner(session=session, db=db)
    budget = QUICK_BUDGET if mode == "quick" else FULL_BUDGET
    report = tuner.tune_program(program, params, variant,
                                base_options=options, budget=budget,
                                strategy="halving", goal=goal)
    return report.best.options(options)
