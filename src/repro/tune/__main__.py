"""Command-line autotuner.

    python -m repro.tune --workload bootstrap --machine cinnamon_4 \\
        --budget 8 --strategy halving

Tunes the named workload on the target machine, prints a leaderboard,
and persists the winner to the tuning DB under the cache directory —
a second invocation reuses the on-disk compile cache (watch the
``compile cache ... hits`` line) and only re-simulates what it must.

``--trace`` exports the session's merged JSON trace (including the
``kind: "tune"`` entry, schema 4); ``--report`` writes the structured
:class:`~repro.tune.tuner.TuningReport` for CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .db import TuningDB, default_db_path
from .strategies import STRATEGIES
from .tuner import Tuner
from .workloads import SCALES, WORKLOAD_NAMES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Search the (CompilerOptions x MachineConfig) space "
                    "with the cycle simulator as the cost oracle.")
    parser.add_argument("--workload", default="bootstrap",
                        choices=WORKLOAD_NAMES,
                        help="named workload to tune (default: bootstrap)")
    parser.add_argument("--machine", default="cinnamon_4",
                        help="target machine spec, e.g. cinnamon_4 "
                             "(default: cinnamon_4)")
    parser.add_argument("--scale", default="small", choices=SCALES,
                        help="workload scale: 'small' compiles in "
                             "milliseconds, 'paper' is the architectural "
                             "scale (default: small)")
    parser.add_argument("--strategy", default="halving",
                        choices=sorted(STRATEGIES),
                        help="search strategy (default: halving)")
    parser.add_argument("--budget", type=int, default=16,
                        help="candidates admitted to the search "
                             "(default: 16)")
    parser.add_argument("--goal", default="cycles", choices=("cycles",),
                        help="optimization goal (default: cycles)")
    parser.add_argument("--eta", type=int, default=None,
                        help="halving elimination factor (default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="search RNG seed (default: 0)")
    parser.add_argument("--tune-machine", action="store_true",
                        help="also sweep Figure 16's resource-scaled "
                             "machine variants (capacity planning)")
    parser.add_argument("--cache-dir", default=".cinnamon-cache",
                        help="compile cache + tuning DB directory "
                             "(default: .cinnamon-cache)")
    parser.add_argument("--top", type=int, default=10,
                        help="leaderboard rows to print (default: 10)")
    parser.add_argument("--trace", metavar="PATH",
                        help="export the merged session trace JSON here")
    parser.add_argument("--report", metavar="PATH",
                        help="write the structured tuning report JSON here")
    args = parser.parse_args(argv)

    tuner = Tuner(cache_dir=args.cache_dir, seed=args.seed)
    report = tuner.tune(
        args.workload, args.machine, scale=args.scale,
        strategy=args.strategy, budget=args.budget, goal=args.goal,
        tune_machine=args.tune_machine, eta=args.eta)

    print(report.leaderboard(limit=args.top))
    print(f"tuning DB: {report.db_path} (key {report.db_key[:16]}...)")
    print(f"compile cache: {report.cache_hits} hits / "
          f"{report.cache_misses} misses under {args.cache_dir}")

    if args.trace:
        path = tuner.session.export_trace(args.trace)
        print(f"trace: {path}")
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"report: {path}")

    if report.best_cycles > report.default_cycles:
        # Cannot happen (the default is in the pool), but gate anyway.
        print("error: best candidate is slower than the default config",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
