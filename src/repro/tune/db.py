"""The persisted tuning database.

One versioned JSON file (by default ``tuning.json`` under the compile
cache directory) mapping *tuning keys* to best-known configurations.  A
key fingerprints everything that makes a tuned config transferable: the
program's structural signature, the parameter set, the target machine
label, and the optimization goal — so a config tuned for the paper-scale
bootstrap on Cinnamon-4 is never applied to a different program, scale,
or machine.

Entries survive processes (``repro.compile(tune=...)`` and
``CinnamonServer(tuned=True)`` pick them up as defaults) and the whole
file self-invalidates when :data:`TUNING_DB_SCHEMA` is bumped, exactly
like the compile cache's pickle schema.

Concurrent *writers* are safe too: :meth:`TuningDB.save` runs under an
advisory ``flock`` (a ``tuning.json.lock`` sibling file), re-reads the
entries another process may have persisted meanwhile, and merges them
per-key keeping the faster incumbent before atomically replacing the
file — so two cluster workers tuning disjoint (or even the same)
targets never clobber each other's results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from ..runtime.fingerprint import params_signature, program_signature
from ..runtime.locking import FileLock
from .space import Candidate

#: Bump whenever the entry layout or the key derivation changes; entries
#: written under another version are discarded on load.
TUNING_DB_SCHEMA = 1

#: Default location, relative to a cache directory.
DB_FILENAME = "tuning.json"


def tuning_key(program, params, machine_label: str,
               goal: str = "cycles") -> str:
    """Content key of one (program, params, machine, goal) tuning target."""
    payload = {
        "schema": TUNING_DB_SCHEMA,
        "program": program_signature(program),
        "params": params_signature(params),
        "machine": machine_label,
        "goal": goal,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TuningDB:
    """Thread-safe, atomically-persisted map of tuning keys to configs."""

    def __init__(self, path, schema_version: Optional[int] = None):
        self.path = Path(path)
        self.schema_version = (TUNING_DB_SCHEMA if schema_version is None
                               else schema_version)
        self._lock = threading.Lock()
        self._file_lock = FileLock(
            self.path.with_name(self.path.name + ".lock"))
        self._entries: Dict[str, dict] = {}
        self.invalidated = 0
        self._load()

    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        disk = self._read_disk()
        if disk is not None:
            self._entries = disk

    def _read_disk(self) -> Optional[Dict[str, dict]]:
        """Entries currently persisted, or ``None`` if absent/invalid."""
        if not self.path.exists():
            return None
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError):
            self.invalidated += 1
            return None
        if not isinstance(doc, dict) \
                or doc.get("schema") != self.schema_version:
            # Schema bump: every persisted config is stale by definition.
            self.invalidated += 1
            return None
        entries = doc.get("entries", {})
        if not isinstance(entries, dict):
            return None
        return {str(k): dict(v) for k, v in entries.items()
                if isinstance(v, dict)}

    @staticmethod
    def _better(a: dict, b: dict) -> dict:
        """Of two records for one key, the one with fewer cycles wins."""
        if b.get("cycles", float("inf")) < a.get("cycles", float("inf")):
            return b
        return a

    def save(self) -> Path:
        """Persist the current entries; returns the path.

        Safe against concurrent writer *processes*: the read-merge-write
        cycle runs under a cross-process ``flock``, re-reading what other
        writers persisted since our load and keeping, per key, whichever
        record has the faster (fewer-cycles) config.  The final write is
        temp + ``os.replace`` so readers never see a torn file.
        """
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._file_lock:
                disk = self._read_disk() or {}
                for key, record in disk.items():
                    mine = self._entries.get(key)
                    self._entries[key] = (record if mine is None
                                          else self._better(mine, record))
                doc = {
                    "schema": self.schema_version,
                    "updated_unix": time.time(),
                    "entries": self._entries,
                }
                fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                           suffix=".tmp")
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(doc, handle, indent=2, sort_keys=True)
                    os.replace(tmp, self.path)
                except Exception:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        return self.path

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __bool__(self) -> bool:
        # An empty DB is still a DB: without this, ``db or default`` would
        # silently swap a freshly-created (len 0) DB for the default one.
        return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
            return dict(entry) if entry is not None else None

    def put(self, key: str, record: dict, persist: bool = True) -> dict:
        """Store ``record`` under ``key`` (only if it improves on what is
        already there) and persist.  Returns the entry now in force."""
        with self._lock:
            incumbent = self._entries.get(key)
            if incumbent is not None and \
                    incumbent.get("cycles", float("inf")) <= \
                    record.get("cycles", float("inf")):
                return dict(incumbent)
            record = dict(record)
            record.setdefault("created_unix", time.time())
            self._entries[key] = record
        if persist:
            self.save()
        return dict(record)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # Lookup conveniences used by the repro.compile / serve integrations.

    def best_candidate(self, program, params, machine_label: str,
                       goal: str = "cycles") -> Optional[Candidate]:
        """The tuned :class:`Candidate` for this target, if one is known."""
        entry = self.get(tuning_key(program, params, machine_label, goal))
        if entry is None:
            return None
        try:
            return Candidate.from_dict(entry["assignment"])
        except (KeyError, TypeError, ValueError):
            return None

    def tuned_options(self, program, params, machine_label: str,
                      base_options=None, goal: str = "cycles"):
        """``base_options`` overridden by the stored best config, or
        ``None`` when no entry exists for this target."""
        candidate = self.best_candidate(program, params, machine_label, goal)
        if candidate is None:
            return None
        return candidate.options(base_options)


def default_db_path(cache_dir=None) -> Path:
    """Where the tuning DB lives for a given cache directory.

    ``cache_dir=None`` falls back to ``$CINNAMON_CACHE_DIR`` or the
    conventional ``.cinnamon-cache`` next to the working directory — the
    same convention the runtime's on-disk compile cache documents.
    """
    if cache_dir is None:
        cache_dir = os.environ.get("CINNAMON_CACHE_DIR", ".cinnamon-cache")
    return Path(cache_dir) / DB_FILENAME
