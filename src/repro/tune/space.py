"""The typed configuration search space of the autotuner.

A :class:`SearchSpace` is an ordered set of :class:`Axis` objects (one
per tunable knob) plus validity constraints; enumerating it yields
:class:`Candidate` assignments that translate into
:class:`~repro.core.compiler.CompilerOptions` overrides and a simulation
machine.  The default space (:func:`default_space`) covers the knobs the
paper sweeps by hand: the keyswitch policy and batching switch of
Section 7.3, ``num_digits`` (the scheme's dnum), ``chips_per_stream``
(program-level parallelism), the register-file allocation budget, and —
optionally — Figure 16's resource-scaled machine variants.

Everything in an assignment is JSON-serializable so candidates round-trip
through the :class:`~repro.tune.db.TuningDB` unchanged; the machine axis
uses :class:`MachineVariant` (a named base machine plus an optional
``resource x factor`` scaling) rather than raw ``MachineConfig`` objects
for exactly that reason.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.compiler import CompilerOptions
from ..core.ir.passes import (
    KEYSWITCH_POLICIES,
    KS_SEQUENTIAL,
    normalize_keyswitch_policy,
)
from ..sim.config import MachineConfig, machine_with, resolve_machine


@dataclass(frozen=True)
class MachineVariant:
    """One point on the machine axis, serializable by name.

    ``base`` is any *named* spec :func:`repro.sim.config.resolve_machine`
    understands; ``resource``/``factor`` optionally scale one chip
    resource via :func:`repro.sim.config.machine_with` (Figure 16's
    sweep axes).  The variant resolves lazily so a DB entry written on
    one process reconstructs the exact machine in another.
    """

    base: str
    resource: Optional[str] = None
    factor: float = 1.0

    @classmethod
    def of(cls, machine, resource: Optional[str] = None,
           factor: float = 1.0) -> "MachineVariant":
        """Variant for any machine spec (named config, name, or count)."""
        if isinstance(machine, MachineVariant):
            base = machine.base
        elif isinstance(machine, MachineConfig):
            base = machine.name
        else:
            base = str(resolve_machine(machine).name)
        return cls(base=base, resource=resource, factor=factor)

    def resolve(self) -> MachineConfig:
        resolved = resolve_machine(self.base)
        if self.resource is None or self.factor == 1.0:
            return resolved
        return machine_with(resolved, self.resource, self.factor)

    @property
    def label(self) -> str:
        """Stable human-readable identity (also the DB machine key)."""
        return self.resolve().name

    def as_dict(self) -> dict:
        out = {"base": self.base}
        if self.resource is not None and self.factor != 1.0:
            out["resource"] = self.resource
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MachineVariant":
        return cls(base=data["base"], resource=data.get("resource"),
                   factor=float(data.get("factor", 1.0)))


@dataclass(frozen=True)
class Axis:
    """One tunable dimension: a name and its finite value set."""

    name: str
    values: Tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


#: Assignment axes that map straight onto ``CompilerOptions`` fields.
_OPTION_AXES = ("keyswitch_policy", "enable_batching", "num_digits",
                "chips_per_stream", "registers_per_chip")


@dataclass(frozen=True)
class Candidate:
    """One full assignment of every axis, hashable and JSON-stable."""

    items: Tuple[Tuple[str, object], ...]

    @classmethod
    def of(cls, **assignment) -> "Candidate":
        return cls(tuple(sorted(assignment.items())))

    @property
    def config(self) -> Dict[str, object]:
        return dict(self.items)

    @property
    def machine(self) -> MachineVariant:
        variant = self.config.get("machine")
        if variant is None:
            raise KeyError("candidate has no machine axis")
        return variant

    def key(self) -> str:
        """Canonical JSON identity (dedup + deterministic tie-breaks)."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def options(self, base: Optional[CompilerOptions] = None
                ) -> CompilerOptions:
        """``base`` options re-targeted at this candidate.

        The machine axis contributes its chip count only (the compiler
        needs the layout); ``registers_per_chip`` stays the axis value so
        the register budget can be tuned *below* the physical file.  The
        simulation machine itself comes from :meth:`MachineVariant.resolve`.
        """
        base = base or CompilerOptions()
        overrides = {name: value for name, value in self.items
                     if name in _OPTION_AXES}
        machine = self.config.get("machine")
        if machine is not None:
            overrides["num_chips"] = machine.resolve().num_chips
        return replace(base, machine=None, **overrides)

    def as_dict(self) -> dict:
        """JSON form (machine variant flattened to its dict)."""
        out = {}
        for name, value in self.items:
            out[name] = (value.as_dict()
                         if isinstance(value, MachineVariant) else value)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Candidate":
        assignment = dict(data)
        if isinstance(assignment.get("machine"), dict):
            assignment["machine"] = MachineVariant.from_dict(
                assignment["machine"])
        return cls.of(**assignment)

    def describe(self) -> str:
        """Compact one-line summary for leaderboards."""
        parts = []
        for name, value in self.items:
            if isinstance(value, MachineVariant):
                parts.append(f"machine={value.label}")
            else:
                parts.append(f"{name}={value}")
        return " ".join(parts)


Constraint = Callable[[Dict[str, object]], bool]


class SearchSpace:
    """Axes plus validity constraints, enumerable and sampleable."""

    def __init__(self, axes: Sequence[Axis],
                 constraints: Sequence[Constraint] = ()):
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        self.axes: List[Axis] = list(axes)
        self.constraints: List[Constraint] = list(constraints)

    @property
    def size(self) -> int:
        """Cartesian-product size, before constraint pruning."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def is_valid(self, assignment: Dict[str, object]) -> bool:
        return all(check(assignment) for check in self.constraints)

    def enumerate(self) -> List[Candidate]:
        """Every constraint-satisfying candidate, deterministic order."""
        out = []
        names = [axis.name for axis in self.axes]
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            assignment = dict(zip(names, combo))
            if self.is_valid(assignment):
                out.append(Candidate.of(**assignment))
        return out

    def sample(self, n: int, rng: random.Random) -> List[Candidate]:
        """``n`` distinct valid candidates (all of them if fewer exist)."""
        candidates = self.enumerate()
        if n >= len(candidates):
            return candidates
        return rng.sample(candidates, n)


def _divisors(n: int) -> Tuple[int, ...]:
    return tuple(d for d in range(1, n + 1) if n % d == 0)


def default_space(machine, *, params=None, tune_machine: bool = False,
                  extra_constraints: Sequence[Constraint] = ()
                  ) -> SearchSpace:
    """The standard (CompilerOptions x machine) space for one target.

    ``machine`` is the deployment target (any resolvable spec).  With
    ``tune_machine=True`` the machine axis additionally sweeps Figure
    16's halved/doubled resource variants — capacity-planning mode.
    ``params`` (when given) contributes the parameter set's own digit
    count to the ``num_digits`` axis.  ``extra_constraints`` append
    per-workload validity rules.
    """
    variant = MachineVariant.of(machine)
    resolved = variant.resolve()
    num_chips = resolved.num_chips
    physical_registers = resolved.chip.registers

    if num_chips == 1:
        # Parallel keyswitch dataflows are meaningless on one chip.
        policies: Tuple[str, ...] = (KS_SEQUENTIAL,)
    else:
        policies = tuple(KEYSWITCH_POLICIES)

    digits = {2, 3, 4}
    if params is not None and getattr(params, "num_digits", None):
        digits.add(int(params.num_digits))
    register_values = sorted({max(64, physical_registers // 2),
                              max(64, (physical_registers * 3) // 4),
                              physical_registers})

    machines: List[MachineVariant] = [variant]
    if tune_machine:
        from ..sim.config import MACHINE_RESOURCES

        for resource in MACHINE_RESOURCES:
            for factor in (0.5, 2.0):
                machines.append(MachineVariant.of(variant, resource, factor))

    axes = [
        Axis("keyswitch_policy", policies),
        Axis("enable_batching", (True, False)),
        Axis("num_digits", tuple(sorted(digits))),
        Axis("chips_per_stream", _divisors(num_chips)),
        Axis("registers_per_chip", tuple(register_values)),
        Axis("machine", tuple(machines)),
    ]

    def _canonical_sequential(assignment: Dict[str, object]) -> bool:
        # Batching is a no-op under the sequential policy; keep only the
        # canonical spelling so the space holds no duplicate configs.
        if assignment.get("keyswitch_policy") == KS_SEQUENTIAL:
            return assignment.get("enable_batching", True) is True
        return True

    def _registers_fit(assignment: Dict[str, object]) -> bool:
        # A scaled-down register file cannot host the full budget.
        m = assignment.get("machine")
        regs = assignment.get("registers_per_chip")
        if m is None or regs is None:
            return True
        return regs <= m.resolve().chip.registers

    constraints = [_canonical_sequential, _registers_fit,
                   *extra_constraints]
    return SearchSpace(axes, constraints)


def default_candidate(machine, options: Optional[CompilerOptions] = None,
                      params=None) -> Candidate:
    """The stock-configuration candidate for ``machine``.

    Captures what :class:`CompilerOptions` would do untouched — the
    baseline every strategy must beat (or match) and the config the
    leaderboard reports speedups against.
    """
    options = options or CompilerOptions()
    variant = MachineVariant.of(machine)
    resolved = variant.resolve()
    num_digits = options.num_digits
    if num_digits is None:
        num_digits = getattr(params, "num_digits", None) or 3
    chips_per_stream = options.chips_per_stream or resolved.num_chips
    return Candidate.of(
        keyswitch_policy=normalize_keyswitch_policy(
            options.keyswitch_policy),
        enable_batching=bool(options.enable_batching),
        num_digits=int(num_digits),
        chips_per_stream=int(chips_per_stream),
        registers_per_chip=int(min(options.registers_per_chip,
                                   resolved.chip.registers)),
        machine=variant,
    )
