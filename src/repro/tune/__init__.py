"""``repro.tune`` — simulator-guided autotuning of compiler & machine
configuration.

The paper sweeps Cinnamon's configuration knobs by hand (keyswitch
policy, batching, digit count, stream layout, machine resources); this
subsystem searches that space automatically, using the cycle-accurate
simulator as the cost oracle, the content-addressed compile cache to
make config re-visits nearly free, and the session worker pool to fan
evaluations out.

Pieces:

* :mod:`~repro.tune.space` — the typed :class:`SearchSpace` /
  :class:`Candidate` model with per-workload validity constraints;
* :mod:`~repro.tune.strategies` — exhaustive grid, seeded random search,
  and multi-fidelity :class:`SuccessiveHalving` (truncated simulations
  first, survivors promoted to full runs);
* :mod:`~repro.tune.oracle` — the cached compile + simulate cost
  function;
* :mod:`~repro.tune.db` — the persisted, versioned :class:`TuningDB`
  (tuned configs survive processes and ship as defaults);
* :mod:`~repro.tune.tuner` — the :class:`Tuner` orchestrator and the
  :func:`apply_tuning` hook behind ``repro.compile(tune=...)`` and
  ``CinnamonServer(tuned=True)``;
* ``python -m repro.tune`` — the CLI (tune a named workload, print a
  leaderboard, persist the winner).

Typical use::

    from repro.tune import Tuner

    report = Tuner(cache_dir=".cinnamon-cache").tune(
        "bootstrap", "cinnamon_4", budget=8, strategy="halving")
    print(report.leaderboard())
"""

from .db import TUNING_DB_SCHEMA, TuningDB, default_db_path, tuning_key
from .oracle import SimulationOracle
from .space import (
    Axis,
    Candidate,
    MachineVariant,
    SearchSpace,
    default_candidate,
    default_space,
)
from .strategies import (
    STRATEGIES,
    GridSearch,
    RandomSearch,
    Strategy,
    SuccessiveHalving,
    Trial,
    make_strategy,
)
from .tuner import FULL_BUDGET, QUICK_BUDGET, Tuner, TuningReport, \
    apply_tuning
from .workloads import (
    SCALES,
    WORKLOAD_NAMES,
    TunableWorkload,
    get_workload,
)

__all__ = [
    "Axis",
    "Candidate",
    "MachineVariant",
    "SearchSpace",
    "default_candidate",
    "default_space",
    "Strategy",
    "GridSearch",
    "RandomSearch",
    "SuccessiveHalving",
    "STRATEGIES",
    "make_strategy",
    "Trial",
    "SimulationOracle",
    "TuningDB",
    "TUNING_DB_SCHEMA",
    "tuning_key",
    "default_db_path",
    "Tuner",
    "TuningReport",
    "apply_tuning",
    "QUICK_BUDGET",
    "FULL_BUDGET",
    "TunableWorkload",
    "get_workload",
    "WORKLOAD_NAMES",
    "SCALES",
]
