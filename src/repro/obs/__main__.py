"""``python -m repro.obs`` — analyze a trace journal from the file alone.

Examples::

    # Per-trace critical paths + FU/link utilization
    python -m repro.obs journal.json

    # One request only (trace-id prefixes work)
    python -m repro.obs journal.json --trace-id 3fa94b2c

    # CI health gate: exit 1 unless every row is trace-stamped and every
    # successful serve trace has compile + simulate children
    python -m repro.obs journal.json --check

    # Prometheus textfile synthesized from the journal rows
    python -m repro.obs journal.json --prom-out metrics.prom
"""

from __future__ import annotations

import argparse
import sys

from .analyze import check, load_journal, registry_from_journal, render_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Critical-path and utilization analysis of a "
                    "repro trace journal (schema >= 5).")
    parser.add_argument("journal", help="trace journal JSON "
                        "(CinnamonServer.export_trace / session.export_trace)")
    parser.add_argument("--trace-id", default=None,
                        help="report a single trace (prefix match)")
    parser.add_argument("--check", action="store_true",
                        help="verify cross-layer invariants; exit 1 on "
                             "any problem")
    parser.add_argument("--prom-out", default=None, metavar="FILE",
                        help="write a Prometheus textfile synthesized "
                             "from the journal")
    args = parser.parse_args(argv)

    document = load_journal(args.journal)

    if args.check:
        problems = check(document)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        traces = sum(1 for _ in set(
            row.get("trace_id") for row in document.get("jobs", ())
            if row.get("trace_id")))
        print(f"OK: {len(document.get('jobs', []))} rows, "
              f"{traces} traces, all invariants hold")
        return 0

    print(render_report(document, trace_id=args.trace_id))

    if args.prom_out:
        registry = registry_from_journal(document)
        with open(args.prom_out, "w") as handle:
            handle.write(registry.render_prometheus())
        print(f"wrote {args.prom_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
